"""A DBLife-style paper portal: continuous crowdsourced feedback, compared strategies.

The scenario from the paper's introduction: a Web portal ingests papers and
must keep a "database papers" view fresh while users keep submitting labels.
This example replays the same update/read trace against the naive and Hazy
eager strategies on the main-memory architecture, and reports how much work
(tuples reclassified, simulated seconds) each strategy did — the qualitative
content of the paper's Figure 4(A).

Run with::

    python examples/paper_portal.py
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view
from repro.bench.reporting import format_table
from repro.workloads import dblife_like, update_trace


def run_strategy(dataset, trace, strategy: str) -> dict[str, object]:
    view = build_maintained_view(
        dataset,
        architecture="mainmemory",
        strategy=strategy,
        approach="eager",
        warm_examples=trace.warm_examples(),
    )
    store = view.store
    start = store.cost_snapshot()
    view.absorb_many(trace.timed_examples())
    simulated = store.cost_snapshot() - start
    stats = view.maintainer.stats
    return {
        "strategy": strategy,
        "updates": len(trace.timed_examples()),
        "tuples_reclassified": stats.tuples_reclassified,
        "reorganizations": stats.reorganizations,
        "avg_band_size": round(stats.average_band_size(), 1),
        "simulated_seconds": round(simulated, 4),
        "updates_per_sim_second": round(len(trace.timed_examples()) / simulated, 1),
    }


def main() -> None:
    dataset = dblife_like(scale=0.6, seed=7)
    print(
        f"portal corpus: {dataset.entity_count()} papers, "
        f"avg {dataset.average_nonzeros():.1f} terms per paper"
    )
    trace = update_trace(dataset, warmup=700, timed=300, seed=3)
    print(f"warm-up examples: {trace.warmup}, timed user-feedback updates: {len(trace.timed_examples())}")

    rows = [run_strategy(dataset, trace, strategy) for strategy in ("naive", "hazy")]
    print()
    print(format_table(rows, title="Eager update maintenance: naive vs Hazy (main-memory)"))

    naive, hazy = rows
    factor = naive["simulated_seconds"] / max(hazy["simulated_seconds"], 1e-9)
    print()
    print(f"Hazy does {naive['tuples_reclassified'] / max(1, hazy['tuples_reclassified']):.1f}x "
          f"less reclassification work and is {factor:.1f}x faster in simulated time.")


if __name__ == "__main__":
    main()
