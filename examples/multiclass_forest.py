"""Multiclass classification views over a Forest-like data set (Appendix C.3).

Builds a one-versus-all multiclass view (one binary Hazy-maintained view per
class) over a dense synthetic data set shaped like Forest Covertype, feeds it
a stream of labeled examples, and reports per-class sizes, prediction quality,
and how much maintenance work the Hazy strategy saved compared to naive
rescans — the qualitative content of Figure 12(B).

Run with::

    python examples/multiclass_forest.py
"""

from __future__ import annotations

from repro.core.maintainers import HazyEagerMaintainer, NaiveEagerMaintainer
from repro.core.multiclass_view import MulticlassClassificationView
from repro.core.stores import InMemoryEntityStore
from repro.bench.reporting import format_table
from repro.workloads import forest_like


def build_view(labels, strategy: str) -> MulticlassClassificationView:
    maintainer_factory = (
        (lambda store: HazyEagerMaintainer(store))
        if strategy == "hazy"
        else (lambda store: NaiveEagerMaintainer(store))
    )
    return MulticlassClassificationView(
        labels=labels,
        store_factory=lambda: InMemoryEntityStore(feature_norm_q=2.0),
        maintainer_factory=maintainer_factory,
    )


def main() -> None:
    dataset = forest_like(scale=0.4, seed=5)
    labels = sorted(set(dataset.multiclass_labels.values()))
    entities = dataset.entities
    print(f"forest-like data set: {len(entities)} entities, {len(labels)} classes")

    views = {strategy: build_view(labels, strategy) for strategy in ("hazy", "naive")}
    for view in views.values():
        view.bulk_load(entities)

    # Stream labeled examples (the first 40% of the entities, in order).
    training = entities[: int(0.4 * len(entities))]
    for strategy, view in views.items():
        for entity_id, features in training:
            view.absorb_example(entity_id, features, dataset.multiclass_labels[entity_id])

    hazy = views["hazy"]
    rows = []
    for label in labels:
        members = hazy.members(label)
        rows.append({"class": label, "members": len(members)})
    print()
    print(format_table(rows, title="Per-class membership under the Hazy multiclass view"))

    holdout = entities[int(0.4 * len(entities)) :]
    correct = sum(
        1
        for entity_id, _ in holdout
        if hazy.predict(entity_id) == dataset.multiclass_labels[entity_id]
    )
    print()
    print(f"holdout multiclass accuracy: {correct}/{len(holdout)} = {correct / len(holdout):.2%}")

    hazy_cost = views["hazy"].total_simulated_update_seconds()
    naive_cost = views["naive"].total_simulated_update_seconds()
    print(
        f"maintenance cost (simulated seconds): hazy={hazy_cost:.4f}, naive={naive_cost:.4f} "
        f"-> {naive_cost / max(hazy_cost, 1e-9):.1f}x saving"
    )


if __name__ == "__main__":
    main()
