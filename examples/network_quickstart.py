"""Network quickstart: the wire front door, end to end.

Launches ``repro-serve`` (the SQL-over-socket server) as a *separate
process*, seeds it from an ``--init`` SQL script, then talks to it over real
TCP sockets:

* :func:`repro.net.connect` gives a network connection with the exact same
  DB-API surface as an in-process :func:`repro.connect` — ``execute``,
  ``executemany``, cursors, ``scalar()``;
* a :class:`repro.net.ConnectionPool` shares a few sockets between many
  threads with health-checked checkout;
* each wire connection is its own server-side session: a client that INSERTs
  feedback immediately reads its own writes;
* server-side SQL errors arrive as the *same* exception classes — catching
  ``SQLSyntaxError`` with its ``position``/``token`` diagnostics works
  identically over the network;
* ``system.connections`` shows the live wire roster, and SIGTERM shuts the
  server down cleanly.

Run with::

    python examples/network_quickstart.py
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

from repro.exceptions import SQLSyntaxError
from repro.net import ConnectionPool, connect
from repro.workloads import SparseCorpusGenerator

INIT_SQL = """
CREATE TABLE papers (id integer PRIMARY KEY, title text);
CREATE TABLE paper_area (label text PRIMARY KEY);
CREATE TABLE example_papers (id integer PRIMARY KEY, label text);
INSERT INTO paper_area (label) VALUES ('database'), ('other');
CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
    ENTITIES FROM Papers KEY id
    LABELS FROM Paper_Area LABEL label
    EXAMPLES FROM Example_Papers KEY id LABEL label
    FEATURE FUNCTION tf_bag_of_words
    USING SVM;
"""


def launch_server(init_path: Path) -> tuple[subprocess.Popen, str, int]:
    """Start ``repro-serve`` on an ephemeral port and parse its banner."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.net", "--port", "0", "--init", str(init_path)],
        stdout=subprocess.PIPE,
        text=True,
    )
    banner = process.stdout.readline().strip()
    # "repro-serve listening on 127.0.0.1:PORT"
    host, _, port = banner.rpartition(" ")[2].rpartition(":")
    print(banner)
    return process, host, int(port)


def main() -> None:
    corpus = SparseCorpusGenerator(
        vocabulary_size=500, nonzeros_per_document=12, positive_fraction=0.35, seed=42
    ).generate_list(200)

    init_path = Path(tempfile.mkdtemp(prefix="repro-net-")) / "init.sql"
    init_path.write_text(INIT_SQL)
    process, host, port = launch_server(init_path)
    try:
        # 1. One connection loads the corpus — executemany is a single
        #    parse/plan on the server, N bindings over one frame.
        with connect(host, port) as loader:
            loaded = loader.executemany(
                "INSERT INTO papers (id, title) VALUES (?, ?)",
                [(doc.entity_id, doc.text) for doc in corpus],
            )
            loader.executemany(
                "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                [
                    (doc.entity_id, "database" if doc.label == 1 else "other")
                    for doc in corpus[:40]
                ],
            )
            print(f"loaded {loaded.rowcount} papers over the wire")

        # 2. Two pooled clients working concurrently over shared sockets.
        with ConnectionPool(host, port, size=2) as pool:

            def reader() -> None:
                with pool.connection() as client:
                    for doc in corpus[::7]:
                        client.execute(
                            "SELECT class FROM Labeled_Papers WHERE id = ?",
                            (doc.entity_id,),
                        ).scalar()

            def writer() -> None:
                with pool.connection() as client:
                    for doc in corpus[40:60]:
                        client.execute(
                            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                            (doc.entity_id, "database" if doc.label == 1 else "other"),
                        )
                        # Read-your-writes across the network: this SELECT
                        # sees the INSERT this session just made.
                        client.execute(
                            "SELECT class FROM Labeled_Papers WHERE id = ?",
                            (doc.entity_id,),
                        ).scalar()

            threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            print(f"pool stats after the burst: {pool.stats()}")

            # 3. Structured errors cross the wire as themselves.
            with pool.connection() as client:
                try:
                    client.execute("SELEC class FROM Labeled_Papers")
                except SQLSyntaxError as error:
                    print(
                        f"server-side syntax error, rebuilt client-side: "
                        f"{error} (position={error.position}, token={error.token!r})"
                    )

                # 4. The server's own dashboard, through the same wire.
                count = client.execute(
                    "SELECT COUNT(*) FROM Labeled_Papers WHERE class = 'database'"
                ).scalar()
                print(f"papers labeled 'database': {count}")
                roster = client.execute(
                    "SELECT connection, state, statements_total FROM system.connections"
                ).fetchall()
                print(f"live wire connections: {len(roster)}")
    finally:
        # 5. Clean shutdown: SIGTERM drains handlers and closes the engine.
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
    print("repro-serve exited cleanly")


if __name__ == "__main__":
    main()
