"""Serving quickstart: the full serving lifecycle in SQL alone.

Builds the same Papers view as ``examples/quickstart.py``, then drives the
serving subsystem entirely through the declarative surface:

* ``SERVE VIEW ... WITH (...)`` shards the entity space across worker threads
  and starts the request batcher + background maintenance pipeline;
* concurrent clients are just extra :func:`repro.connect` connections — each
  one gets its own monotonic read-your-writes session, and its ``SELECT`` /
  ``INSERT`` statements route through the server automatically;
* ``CHECKPOINT VIEW ... TO`` takes a consistent snapshot while reads keep
  flowing, and after a "crash" a fresh process warm-starts the view with
  ``RESTORE VIEW ... FROM`` — no refeaturization, bit-identical answers;
* ``STOP SERVING`` hands the view back to the direct maintainer, consistent.

Run with::

    python examples/serving_quickstart.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import repro
from repro.workloads import SparseCorpusGenerator

VIEW_DDL = """
    CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
    ENTITIES FROM Papers KEY id
    LABELS FROM Paper_Area LABEL label
    EXAMPLES FROM Example_Papers KEY id LABEL label
    FEATURE FUNCTION tf_bag_of_words
    USING SVM
"""


def build_base_tables(conn, corpus) -> None:
    conn.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    conn.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    conn.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    conn.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    conn.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )


def main() -> None:
    corpus = SparseCorpusGenerator(
        vocabulary_size=500, nonzeros_per_document=12, positive_fraction=0.35, seed=42
    ).generate_list(400)

    # 1. The application's tables and the classification view (Example 2.1).
    conn = repro.connect()
    build_base_tables(conn, corpus)
    conn.execute(VIEW_DDL)
    conn.executemany(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        [
            (doc.entity_id, "database" if doc.label == 1 else "other")
            for doc in corpus[:60]
        ],
    )

    # 2. Start serving — declaratively.  The adaptive batcher tunes its own
    #    coalescing window from the observed arrival rate.
    info = conn.execute(
        "SERVE VIEW Labeled_Papers WITH (shards = 4, adaptive_batching = true)"
    ).fetchone()
    print(f"serving {info['view']} over {info['shards']} shards")

    # 3. Concurrent clients: each one is just another connection.  Readers
    #    hammer point SELECTs (coalesced by the batcher); a writer streams
    #    feedback as INSERTs and immediately re-reads its own writes.
    def reader(offset: int) -> None:
        with repro.connect(engine=conn.engine) as client:
            for step in range(200):
                doc = corpus[(offset + step * 13) % len(corpus)]
                client.execute(
                    "SELECT class FROM Labeled_Papers WHERE id = ?", (doc.entity_id,)
                ).scalar()

    def writer() -> None:
        with repro.connect(engine=conn.engine) as client:
            for doc in corpus[60:120]:
                client.execute(
                    "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                    (doc.entity_id, "database" if doc.label == 1 else "other"),
                )
                # Read-your-writes: this SELECT reflects the INSERT just queued.
                client.execute(
                    "SELECT class FROM Labeled_Papers WHERE id = ?", (doc.entity_id,)
                ).scalar()

    threads = [threading.Thread(target=reader, args=(i * 37,)) for i in range(4)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    server = conn.engine.view("Labeled_Papers").server
    stats = server.stats()
    print(f"epoch after maintenance: {stats['epoch']}")
    print(f"read batching: {stats['batcher']}")

    # The same numbers, through the SQL front door: the system.* virtual
    # tables expose the whole metrics registry and the serving dashboard.
    dashboard = conn.execute("SELECT * FROM system.served_views").fetchone()
    print(
        "system.served_views: "
        f"{dashboard['view']} epoch={dashboard['epoch']} "
        f"avg_batch={dashboard['batcher_avg_batch']:.2f} "
        f"cache_hits={dashboard['cache_hits_total']}"
    )
    metric_rows = conn.execute(
        "SELECT name, value FROM system.metrics ORDER BY name"
    ).fetchall()
    interesting = (
        "sql.statements_total",
        "serve.Labeled_Papers.batcher.requests_total",
        "serve.Labeled_Papers.epochs_published_total",
        "db.cost.simulated_seconds_total",
    )
    print(f"system.metrics ({len(metric_rows)} samples), a few of them:")
    for row in metric_rows:
        if row["name"] in interesting:
            print(f"  {row['name']} = {row['value']:.6g}")

    # 4. Scatter/gather reads and the cost model's view of them.
    count = conn.execute(
        "SELECT COUNT(*) FROM Labeled_Papers WHERE class = 'database'"
    ).scalar()
    print(f"papers labeled 'database': {count}")
    top = conn.execute(
        "SELECT id, margin FROM Labeled_Papers ORDER BY margin DESC LIMIT 3"
    ).fetchall()
    print(f"top-3 most-database papers: {[(row['id'], round(row['margin'], 3)) for row in top]}")
    plan = conn.execute("EXPLAIN SELECT id FROM Labeled_Papers WHERE class = 'database'").fetchall()
    access = plan[-1]
    print(f"plan: {access['node'].strip()}, ~{access['estimated_seconds']:.2e} simulated seconds")

    # 5. Checkpoint while serving (reads keep flowing), then "crash".
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="hazy-ckpt-")) / "labeled_papers"
    info = conn.execute(f"CHECKPOINT VIEW Labeled_Papers TO '{checkpoint_dir}'").fetchone()
    print(f"checkpoint: epoch {info['epoch']}, {info['entities']} entities, {info['bytes']} bytes")
    answers_before = conn.execute("SELECT id, class FROM Labeled_Papers ORDER BY id").fetchall()
    conn.close()  # quiesces the served view — the "kill"

    # 6. A fresh process: recreate the durable base tables, RESTORE the view.
    #    The connection context manager quiesces everything on exit.
    with repro.connect() as conn2:
        build_base_tables(conn2, corpus)
        conn2.executemany(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            [
                (doc.entity_id, "database" if doc.label == 1 else "other")
                for doc in corpus[:120]
            ],
        )
        restored = conn2.execute(
            f"RESTORE VIEW Labeled_Papers FROM '{checkpoint_dir}'"
        ).fetchone()
        print(f"restored: serving again from epoch {restored['epoch']}")
        answers_after = conn2.execute(
            "SELECT id, class FROM Labeled_Papers ORDER BY id"
        ).fetchall()
        print(f"bit-identical answers after restore: {answers_after == answers_before}")

        # 7. Hand the view back; SQL keeps working on the direct maintainer.
        conn2.execute("STOP SERVING Labeled_Papers")
        total = conn2.execute("SELECT COUNT(*) FROM Labeled_Papers").scalar()
        print(f"stopped serving; direct view still answers over {total} papers")


if __name__ == "__main__":
    main()
