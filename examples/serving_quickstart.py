"""Serving quickstart: put a classification view behind a concurrent server.

Builds the same Papers view as ``examples/quickstart.py``, then hands it to
the serving subsystem: ``engine.serve()`` shards the entity space across
worker threads, coalesces concurrent reads through the request batcher, and
maintains the view from a background pipeline — ordinary SQL ``INSERT``
statements now *enqueue* maintenance work instead of retraining inline, and
client sessions get monotonic read-your-writes semantics.

Run with::

    python examples/serving_quickstart.py
"""

from __future__ import annotations

import threading

from repro import Database, HazyEngine
from repro.workloads import SparseCorpusGenerator


def main() -> None:
    # 1. The application's tables and the classification view (Example 2.1).
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    corpus = SparseCorpusGenerator(
        vocabulary_size=500, nonzeros_per_document=12, positive_fraction=0.35, seed=42
    ).generate_list(400)
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )
    engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
    db.execute(
        """
        CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
        ENTITIES FROM Papers KEY id
        LABELS FROM Paper_Area LABEL label
        EXAMPLES FROM Example_Papers KEY id LABEL label
        FEATURE FUNCTION tf_bag_of_words
        USING SVM
        """
    )
    for doc in corpus[:60]:
        db.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (doc.entity_id, "database" if doc.label == 1 else "other"),
        )

    # 2. Start serving: 4 shards, batched reads, background maintenance.
    server = engine.serve("Labeled_Papers", num_shards=4)
    print(f"serving {server.shards.count()} entities over {len(server.shards)} shards")

    # 3. Concurrent clients: readers hammer label_of while a writer streams
    #    feedback through the SQL trigger -> queue -> batched-apply pipeline.
    def reader(offset: int) -> None:
        session = server.session()
        for step in range(200):
            doc = corpus[(offset + step * 13) % len(corpus)]
            session.label_of(doc.entity_id)

    def writer() -> None:
        session = server.session()
        for doc in corpus[60:120]:
            session.insert_example(
                doc.entity_id, "database" if doc.label == 1 else "other"
            )
            # Read-your-writes: this read reflects the example just queued.
            session.label_of(doc.entity_id)

    threads = [threading.Thread(target=reader, args=(i * 37,)) for i in range(4)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    server.flush()

    # 4. Reads while serving: batched single reads, scatter/gather queries.
    stats = server.stats()
    print(f"epoch after maintenance: {stats['epoch']}")
    print(f"read batching: {stats['batcher']}")
    print(f"result cache: {stats['cache']}")
    print(f"maintenance: {stats['maintenance']}")
    database_papers, epoch = server.all_members_tagged(1)
    print(f"papers labeled 'database' at epoch {epoch}: {len(database_papers)}")
    print(f"top-3 most-database papers: {server.top_k(3, label=1)}")
    print(
        "ad-hoc classify (unstored row):",
        server.classify({"id": -1, "title": "transaction processing in database systems"}),
    )

    # 5. SQL still works while serving (SELECTs go through the server).
    count = db.execute("SELECT COUNT(*) FROM Labeled_Papers WHERE class = 'database'").scalar()
    print(f"SQL count of database papers: {count}")

    # 6. Hand the view back; the direct maintainer is resynced and consistent.
    server.close()
    correct = sum(1 for doc in corpus if engine.view("Labeled_Papers").label_of(doc.entity_id) == doc.label)
    print(f"agreement with ground truth after close: {correct}/{len(corpus)}")


if __name__ == "__main__":
    main()
