"""Quickstart: the whole system through one connection and plain SQL.

This walks through the paper's Example 2.1 — a ``Papers`` table, a label
vocabulary, a training-example table, and a ``CREATE CLASSIFICATION VIEW``
statement — using :func:`repro.connect`, the declarative front door.  Training
examples arrive as ordinary SQL ``INSERT`` statements and the view is queried
with ordinary ``SELECT`` statements; Hazy keeps the view's contents up to date
behind the scenes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.db.costmodel import CostModel
from repro.workloads import SparseCorpusGenerator


def main() -> None:
    # 1. One connection: database + engine behind a cursor-style API.  The
    # main-memory cost model is the paper's Hazy-MM architecture; it is also
    # what makes per-match index probes cheap relative to rescanning below.
    # The connection is a context manager: leaving the block quiesces any
    # served views and closes the engine.
    with repro.connect(cost_model=CostModel.main_memory()) as conn:
        run_demo(conn)


def run_demo(conn: repro.Connection) -> None:
    conn.execute(
        "CREATE TABLE papers (id integer PRIMARY KEY, title text, year integer)"
    )
    conn.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    conn.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    conn.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")

    # Populate the Papers table with a small synthetic corpus (a stand-in for
    # papers crawled from the Web, as in DBLife).
    corpus = SparseCorpusGenerator(
        vocabulary_size=500, nonzeros_per_document=12, positive_fraction=0.35, seed=42
    ).generate_list(300)
    conn.executemany(
        "INSERT INTO papers (id, title, year) VALUES (?, ?, ?)",
        [(doc.entity_id, doc.text, 1990 + doc.entity_id % 21) for doc in corpus],
    )

    # 2. Declare the classification view — pure DDL, no objects to wire up.
    conn.execute(
        """
        CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
        ENTITIES FROM Papers KEY id
        LABELS FROM Paper_Area LABEL label
        EXAMPLES FROM Example_Papers KEY id LABEL label
        FEATURE FUNCTION tf_bag_of_words
        USING SVM
        """
    )
    total = conn.execute("SELECT COUNT(*) FROM Labeled_Papers").scalar()
    print(f"view created over {total} papers")

    # 3. User feedback arrives as ordinary INSERTs into the example table.
    conn.executemany(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        [
            (doc.entity_id, "database" if doc.label == 1 else "other")
            for doc in corpus[:120]
        ],
    )

    # 4. Query the view with plain SQL.
    database_papers = conn.execute(
        "SELECT COUNT(*) FROM Labeled_Papers WHERE class = 'database'"
    ).scalar()
    print(f"papers currently labeled 'database': {database_papers}")

    # Single Entity read ("is paper 7 a database paper?").
    label = conn.execute("SELECT class FROM Labeled_Papers WHERE id = 7").scalar()
    print(f"paper 7 is labeled: {label}")

    # EXPLAIN shows the plan the executor will walk before running it.
    plan = conn.execute("EXPLAIN SELECT class FROM Labeled_Papers WHERE id = 7").fetchall()
    access = plan[-1]
    print(
        f"plan: {access['node'].strip()}, "
        f"~{access['estimated_seconds']:.2e} simulated seconds"
    )

    # A secondary B+-tree index turns selective non-key predicates into index
    # probes; the planner re-costs cached plans the moment the index exists.
    conn.execute("CREATE INDEX idx_paper_year ON papers (year)")
    recent_sql = "SELECT id FROM papers WHERE year >= 2009"
    plan = conn.execute(f"EXPLAIN {recent_sql}").fetchall()
    recent = conn.execute(recent_sql).rowcount
    print(f"indexed plan: {plan[-1]['node'].strip()} ({recent} recent papers)")

    # 5. Measure the classifier against the generator's ground truth.
    correct = sum(
        1
        for doc in corpus
        if conn.execute(
            "SELECT class FROM Labeled_Papers WHERE id = ?", (doc.entity_id,)
        ).scalar()
        == ("database" if doc.label == 1 else "not_database")
    )
    print(f"agreement with ground truth: {correct}/{len(corpus)}")


if __name__ == "__main__":
    main()
