"""Quickstart: declare and query a classification view through SQL.

This walks through the paper's Example 2.1: a ``Papers`` table, a label
vocabulary, a training-example table, and a ``CREATE CLASSIFICATION VIEW``
statement.  Training examples are then inserted with ordinary SQL ``INSERT``
statements and the view is queried with ordinary ``SELECT`` statements — Hazy
keeps the view's contents up to date behind the scenes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, HazyEngine
from repro.workloads import SparseCorpusGenerator


def main() -> None:
    # 1. An ordinary relational database with the application's tables.
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")

    # Populate the Papers table with a small synthetic corpus (a stand-in for
    # papers crawled from the Web, as in DBLife).
    corpus = SparseCorpusGenerator(
        vocabulary_size=500, nonzeros_per_document=12, positive_fraction=0.35, seed=42
    ).generate_list(300)
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )

    # 2. Attach the Hazy engine and declare the classification view.
    engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
    db.execute(
        """
        CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
        ENTITIES FROM Papers KEY id
        LABELS FROM Paper_Area LABEL label
        EXAMPLES FROM Example_Papers KEY id LABEL label
        FEATURE FUNCTION tf_bag_of_words
        USING SVM
        """
    )
    view = engine.view("Labeled_Papers")
    print(f"view created over {db.execute('SELECT COUNT(*) FROM Labeled_Papers').scalar()} papers")

    # 3. User feedback arrives as ordinary INSERTs into the example table.
    for doc in corpus[:120]:
        label = "database" if doc.label == 1 else "other"
        db.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)", (doc.entity_id, label)
        )
    print(f"absorbed {view.maintainer.stats.updates} training examples")
    print(f"reorganizations so far: {view.maintainer.stats.reorganizations}")

    # 4. Query the view with plain SQL.
    database_papers = db.execute(
        "SELECT COUNT(*) FROM Labeled_Papers WHERE class = 'database'"
    ).scalar()
    print(f"papers currently labeled 'database': {database_papers}")

    # Single Entity read ("is paper 7 a database paper?").
    row = db.execute("SELECT class FROM Labeled_Papers WHERE id = 7").rows[0]
    print(f"paper 7 is labeled: {row['class']}")

    # 5. Measure the classifier against the generator's ground truth.
    correct = sum(1 for doc in corpus if view.label_of(doc.entity_id) == doc.label)
    print(f"agreement with ground truth: {correct}/{len(corpus)}")


if __name__ == "__main__":
    main()
