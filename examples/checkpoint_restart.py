"""Checkpoint & warm-restart quickstart: checkpoint -> kill -> warm serve.

Builds the Papers classification view, serves it, and writes a checkpoint
while reads keep flowing.  Then the "process dies": every in-memory object is
thrown away.  A second engine — the restarted process — reloads the base
tables, and ``engine.serve(name, restore_from=...)`` brings the view back by
importing the snapshot instead of re-featurizing and re-classifying every
entity; rows inserted while the server was down are picked up by the replay.

Run with::

    python examples/checkpoint_restart.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import Database, HazyEngine
from repro.workloads import SparseCorpusGenerator

DDL = """
CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
ENTITIES FROM Papers KEY id
LABELS FROM Paper_Area LABEL label
EXAMPLES FROM Example_Papers KEY id LABEL label
FEATURE FUNCTION tf_bag_of_words
USING SVM
"""


def load_base_tables(corpus) -> Database:
    """The application's durable state: entity and example tables."""
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )
    db.executemany(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        [
            (doc.entity_id, "database" if doc.label == 1 else "other")
            for doc in corpus[:80]
        ],
    )
    return db


def main() -> None:
    corpus = SparseCorpusGenerator(
        vocabulary_size=600, nonzeros_per_document=12, positive_fraction=0.35, seed=42
    ).generate_list(600)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="hazy-ckpt-")) / "labeled_papers"

    # ---- first life: cold start, serve, checkpoint -------------------------------
    db = load_base_tables(corpus)
    engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
    db.execute(DDL)
    view = engine.view("Labeled_Papers")
    server = engine.serve("Labeled_Papers", num_shards=4)
    server.flush()
    # Cold start pays twice: featurize/classify into the view's maintainer,
    # then bulk-load every shard.
    cold_cost = view.maintainer.store.stats.simulated_seconds + server.simulated_seconds()
    balance_before = Counter(server.contents().values())
    probe = corpus[3].entity_id
    label_before = server.label_of(probe)

    info = server.checkpoint(checkpoint_dir)
    print(
        f"checkpointed {info['entities']} entities at epoch {info['epoch']} "
        f"({info['bytes'] / 1024:.0f} KiB) while readers stayed live"
    )
    server.close()

    # ---- the process "dies"; rows keep arriving in the durable tables ------------
    del server, engine, view, db
    db = load_base_tables(corpus)
    late_arrivals = SparseCorpusGenerator(
        vocabulary_size=600, nonzeros_per_document=12, positive_fraction=0.35, seed=7
    ).generate_list(25)
    for doc in late_arrivals:
        db.execute(
            "INSERT INTO papers (id, title) VALUES (?, ?)",
            (doc.entity_id + 1_000_000, doc.text),
        )

    # ---- second life: warm restart from the snapshot -----------------------------
    engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
    server = engine.serve("Labeled_Papers", restore_from=checkpoint_dir)
    warm_cost = server.simulated_seconds()
    print(
        f"warm restart served {server.shards.count()} entities "
        f"(snapshot + {len(late_arrivals)} replayed late arrivals)"
    )
    balance_after = Counter(server.contents().values())
    print(f"probe entity label: before={label_before}  after={server.label_of(probe)}")
    print(f"class balance: before={dict(balance_before)}  after={dict(balance_after)}")
    print(
        f"simulated start-up seconds: cold={cold_cost:.6f}  warm={warm_cost:.6f}  "
        f"({cold_cost / max(warm_cost, 1e-12):.1f}x cheaper)"
    )
    server.close()


if __name__ == "__main__":
    main()
