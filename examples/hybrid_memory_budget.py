"""The hybrid architecture: serve reads from a tiny memory budget (paper §3.5.2).

The Citeseer data set with feature vectors is 1.3 GB in the paper, yet its
ε-map is only 5.4 MB — so a hybrid deployment can answer almost every Single
Entity read without touching disk while holding ~1% of the entities in a
buffer.  This example builds the on-disk and hybrid architectures over the
same (scaled) Citeseer-like corpus and compares their memory footprint and
read behaviour.

Run with::

    python examples/hybrid_memory_budget.py
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view
from repro.bench.reporting import format_bytes, format_table
from repro.workloads import citeseer_like, read_trace, update_trace


def main() -> None:
    dataset = citeseer_like(scale=0.5, seed=11)
    trace = update_trace(dataset, warmup=600, timed=0, seed=1)
    reads = read_trace(dataset, 3000, seed=2)
    print(f"corpus: {dataset.entity_count()} documents, "
          f"approx data size {format_bytes(dataset.approximate_size_bytes())}")

    rows = []
    for architecture in ("ondisk", "hybrid", "mainmemory"):
        view = build_maintained_view(
            dataset,
            architecture=architecture,
            strategy="hazy",
            approach="eager",
            buffer_fraction=0.01,
            warm_examples=trace.warm_examples(),
        )
        store = view.store
        start = store.cost_snapshot()
        for entity_id in reads:
            view.maintainer.read_single(entity_id)
        simulated = store.cost_snapshot() - start
        usage = store.memory_usage()
        rows.append(
            {
                "architecture": architecture,
                "ram_total": format_bytes(usage["total"]),
                "eps_map": format_bytes(usage.get("eps_map", 0)),
                "buffer": format_bytes(usage.get("buffer", 0)),
                "reads": len(reads),
                "reads_per_sim_second": round(len(reads) / max(simulated, 1e-9), 1),
                "epsmap_hits": view.maintainer.stats.epsmap_hits,
            }
        )
    print()
    print(format_table(rows, title="Single Entity reads vs memory footprint (Hazy eager)"))
    print()
    print("The hybrid answers almost every read from the eps-map while holding only")
    print("~1% of the entities (plus one float per entity) in memory.")


if __name__ == "__main__":
    main()
