"""p-norms and Hölder conjugates.

Lemma 3.1 of the paper bounds ``|<delta_w, f(t)>|`` by ``||delta_w||_p *
||f(t)||_q`` where ``1/p + 1/q = 1`` (Hölder's inequality).  The choice of the
pair (p, q) is a *quality* decision: text workloads use l1-normalized feature
vectors so ``(p, q) = (inf, 1)``; dense workloads typically use l2
normalization so ``(p, q) = (2, 2)``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.linalg.vectors import SparseVector

__all__ = ["p_norm", "holder_conjugate", "HOLDER_PAIRS"]

#: The Hölder conjugate pairs that the paper discusses explicitly.
HOLDER_PAIRS: tuple[tuple[float, float], ...] = ((math.inf, 1.0), (2.0, 2.0), (1.0, math.inf))


def holder_conjugate(p: float) -> float:
    """Return ``q`` such that ``1/p + 1/q = 1``.

    ``p`` may be ``math.inf`` (conjugate 1) or any value ``>= 1``.
    """
    if p == math.inf:
        return 1.0
    if p < 1:
        raise ValueError(f"Hölder conjugates require p >= 1, got {p}")
    if p == 1:
        return math.inf
    return p / (p - 1.0)


def p_norm(vector: SparseVector | Iterable[float], p: float) -> float:
    """Return the ``p``-norm of a sparse vector or a dense iterable."""
    if isinstance(vector, SparseVector):
        return vector.norm(p)
    values = [float(v) for v in vector]
    if not values:
        return 0.0
    if p == math.inf:
        return max(abs(v) for v in values)
    if p == 1:
        return sum(abs(v) for v in values)
    if p == 2:
        return math.sqrt(sum(v * v for v in values))
    if p <= 0:
        raise ValueError(f"p-norm requires p > 0, got {p}")
    return sum(abs(v) ** p for v in values) ** (1.0 / p)
