"""Batched NumPy kernels for margin/eps scoring and predicate evaluation.

The scalar paths (:meth:`SparseVector.dot`, ``compare_values`` in the SQL
executor) touch one value at a time; these kernels process a whole batch per
call so the per-element Python interpretation cost is paid once per *chunk*
instead of once per *value*.  They back two hot loops:

* ``batch_margins`` / ``batch_eps`` score many entities against one model in
  a single flattened gather + segmented sum — the bulk form of the
  ``w · f − b`` evaluation every Hazy reclassification performs.
* ``compare`` evaluates one comparison operator over a whole column array at
  once and is what the batched ``Filter``/scan nodes use for scan-side
  predicate evaluation on numeric columns.

Everything here is pure computation: no cost-model charges, no I/O.  Callers
remain responsible for ledger accounting.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.linalg.vectors import SparseVector

__all__ = ["compare", "batch_dot", "batch_margins", "batch_eps"]

_COMPARISONS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def compare(values: np.ndarray | Sequence[float], operator: str, bound: float) -> np.ndarray:
    """Boolean mask of ``values <operator> bound``, evaluated elementwise.

    Semantics match the scalar ``compare_values`` on numeric inputs,
    including NaN (never less/greater/equal, always not-equal).
    """
    try:
        kernel = _COMPARISONS[operator]
    except KeyError:
        raise ValueError(f"unsupported comparison operator {operator!r}") from None
    return kernel(np.asarray(values), bound)


def batch_dot(vectors: Sequence[SparseVector], weights: np.ndarray) -> np.ndarray:
    """``w · f_i`` for every sparse vector in one flattened NumPy pass.

    Flattens all (index, value) pairs, gathers the matching weights, and
    reduces per-vector segments with ``np.add.reduceat``.  Indices beyond the
    weight vector's dimension contribute zero, matching the scalar
    :meth:`SparseVector.dot` against a dense array.
    """
    weights = np.asarray(weights, dtype=np.float64)
    count = len(vectors)
    out = np.zeros(count, dtype=np.float64)
    if count == 0:
        return out
    sizes = np.fromiter((vector.nnz() for vector in vectors), dtype=np.int64, count=count)
    total = int(sizes.sum())
    if total == 0:
        return out
    indices = np.empty(total, dtype=np.int64)
    values = np.empty(total, dtype=np.float64)
    offset = 0
    for vector in vectors:
        for index, value in vector.items():
            indices[offset] = index
            values[offset] = value
            offset += 1
    dimension = weights.shape[0]
    if dimension == 0:
        products = np.zeros(total, dtype=np.float64)
    else:
        in_range = indices < dimension
        products = np.where(in_range, values * weights[np.minimum(indices, dimension - 1)], 0.0)
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    nonempty = sizes > 0
    # reduceat over the non-empty segment starts: each segment runs to the
    # next non-empty start, and the skipped empty segments hold no elements.
    out[nonempty] = np.add.reduceat(products, starts[nonempty])
    return out


def batch_margins(
    vectors: Sequence[SparseVector], weights: np.ndarray, bias: float = 0.0
) -> np.ndarray:
    """``w · f_i − b`` for a whole batch of entities (the margin/eps score)."""
    return batch_dot(vectors, weights) - bias


# ``eps`` in the paper is the same functional form as the margin: w(s)·f − b(s).
batch_eps = batch_margins
