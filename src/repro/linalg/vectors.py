"""Sparse feature vectors.

The Hazy paper represents each entity by a feature vector ``f`` in R^d.  For
text workloads ``d`` can be in the hundreds of thousands while each document
only touches a few dozen terms, so the canonical representation in this
reproduction is a dictionary-backed :class:`SparseVector`.  Dense ``numpy``
arrays are accepted anywhere a vector is expected and are converted through
:func:`to_sparse` / :func:`to_dense`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping

import numpy as np

__all__ = ["SparseVector", "dot", "to_dense", "to_sparse", "axpy"]

# Smallest positive normal double: naive power sums below this (or non-finite
# ones) have lost precision to subnormal underflow or overflow and are redone
# with pre-scaled components.
_NORMAL_MIN = 2.2250738585072014e-308


class SparseVector:
    """A sparse vector stored as a mapping from integer index to float value.

    Zero entries are never stored; arithmetic methods drop entries that become
    exactly zero.  The class is deliberately small and explicit — it is the
    innermost data structure of the whole system and is exercised by every
    training step and every reclassification.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[int, float] | Iterable[tuple[int, float]] | None = None):
        self._data: dict[int, float] = {}
        if data is None:
            return
        items = data.items() if isinstance(data, Mapping) else data
        for index, value in items:
            if value:
                self._data[int(index)] = float(value)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dense(cls, values: Iterable[float]) -> "SparseVector":
        """Build a sparse vector from a dense iterable, dropping zeros."""
        return cls({i: float(v) for i, v in enumerate(values) if v})

    @classmethod
    def zeros(cls) -> "SparseVector":
        """Return an empty (all-zero) vector."""
        return cls()

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def __contains__(self, index: int) -> bool:
        return index in self._data

    def __getitem__(self, index: int) -> float:
        return self._data.get(index, 0.0)

    def __setitem__(self, index: int, value: float) -> None:
        if value:
            self._data[int(index)] = float(value)
        else:
            self._data.pop(int(index), None)

    def items(self) -> Iterable[tuple[int, float]]:
        """Iterate over the stored ``(index, value)`` pairs."""
        return self._data.items()

    def indices(self) -> Iterable[int]:
        """Iterate over the indices of the non-zero entries."""
        return self._data.keys()

    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return len(self._data)

    def copy(self) -> "SparseVector":
        """Return an independent copy of this vector."""
        clone = SparseVector()
        clone._data = dict(self._data)
        return clone

    def to_dict(self) -> dict[int, float]:
        """Return the underlying mapping as a plain dictionary copy."""
        return dict(self._data)

    # -- arithmetic ---------------------------------------------------------

    def dot(self, other: "SparseVector | Mapping[int, float] | np.ndarray") -> float:
        """Inner product with another sparse vector, mapping, or dense array."""
        if isinstance(other, np.ndarray):
            total = 0.0
            n = other.shape[0]
            for index, value in self._data.items():
                if index < n:
                    total += value * float(other[index])
            return total
        other_data = other._data if isinstance(other, SparseVector) else other
        if len(other_data) < len(self._data):
            small, large = other_data, self._data
        else:
            small, large = self._data, other_data
        return sum(value * large.get(index, 0.0) for index, value in small.items())

    def scale(self, factor: float) -> "SparseVector":
        """Return ``factor * self`` as a new vector."""
        if factor == 0.0:
            return SparseVector()
        result = SparseVector()
        result._data = {i: v * factor for i, v in self._data.items()}
        return result

    def scale_inplace(self, factor: float) -> None:
        """Multiply this vector by ``factor`` in place."""
        if factor == 0.0:
            self._data.clear()
            return
        for index in self._data:
            self._data[index] *= factor

    def add(self, other: "SparseVector", scale: float = 1.0) -> "SparseVector":
        """Return ``self + scale * other`` as a new vector."""
        result = self.copy()
        result.add_inplace(other, scale)
        return result

    def add_inplace(self, other: "SparseVector | Mapping[int, float]", scale: float = 1.0) -> None:
        """Compute ``self += scale * other`` in place (an axpy update)."""
        if scale == 0.0:
            return
        other_items = other.items() if isinstance(other, SparseVector) else other.items()
        for index, value in other_items:
            new_value = self._data.get(index, 0.0) + scale * value
            if new_value:
                self._data[index] = new_value
            else:
                self._data.pop(index, None)

    def subtract(self, other: "SparseVector") -> "SparseVector":
        """Return ``self - other`` as a new vector."""
        return self.add(other, scale=-1.0)

    # -- norms --------------------------------------------------------------

    def norm(self, p: float = 2.0) -> float:
        """Return the `p`-norm of the vector (``p`` may be ``math.inf``)."""
        if not self._data:
            return 0.0
        if p == math.inf:
            return max(abs(v) for v in self._data.values())
        if p == 1:
            return sum(abs(v) for v in self._data.values())
        if p == 2:
            total = sum(v * v for v in self._data.values())
            if math.isfinite(total) and total >= _NORMAL_MIN:
                return math.sqrt(total)
            return self._scaled_norm(2.0)
        if p <= 0:
            raise ValueError(f"p-norm requires p > 0, got {p}")
        total = sum(abs(v) ** p for v in self._data.values())
        if math.isfinite(total) and total >= _NORMAL_MIN:
            return total ** (1.0 / p)
        return self._scaled_norm(p)

    def _scaled_norm(self, p: float) -> float:
        """`p`-norm computed with components pre-scaled by the largest
        magnitude, for vectors whose powers under- or overflow the naive sum
        (e.g. a component near 1e-160 squares into the subnormal range)."""
        scale = max(abs(v) for v in self._data.values())
        if scale == 0.0 or not math.isfinite(scale):
            return scale
        return scale * sum((abs(v) / scale) ** p for v in self._data.values()) ** (1.0 / p)

    def normalized(self, p: float = 2.0) -> "SparseVector":
        """Return the vector scaled to unit `p`-norm (zero vector unchanged).

        Divides elementwise rather than multiplying by ``1/length``: for
        subnormal components the reciprocal overflows to ``inf`` even though
        the division itself is exact.
        """
        length = self.norm(p)
        if length == 0.0:
            return self.copy()
        return SparseVector({index: value / length for index, value in self._data.items()})

    def max_index(self) -> int:
        """Largest stored index, or -1 for the zero vector."""
        return max(self._data) if self._data else -1

    # -- conversion & comparison -------------------------------------------

    def to_dense(self, dimension: int | None = None) -> np.ndarray:
        """Materialize as a dense ``numpy`` array of length ``dimension``."""
        if dimension is None:
            dimension = self.max_index() + 1
        dense = np.zeros(dimension, dtype=np.float64)
        for index, value in self._data.items():
            if index < dimension:
                dense[index] = value
        return dense

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseVector):
            return self._data == other._data
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - vectors are not hashable
        raise TypeError("SparseVector is mutable and unhashable")

    def __repr__(self) -> str:
        preview = dict(sorted(self._data.items())[:6])
        suffix = ", ..." if len(self._data) > 6 else ""
        return f"SparseVector({preview}{suffix}, nnz={len(self._data)})"

    def approx_size_bytes(self) -> int:
        """Rough in-memory footprint used by the hybrid memory accounting."""
        # One (int, float) pair per non-zero entry: 8 bytes key + 8 bytes value
        # plus dict overhead amortized to ~8 bytes per slot.
        return 24 * len(self._data) + 64


def to_sparse(vector: SparseVector | Mapping[int, float] | Iterable[float] | np.ndarray) -> SparseVector:
    """Coerce ``vector`` into a :class:`SparseVector` (copies the data)."""
    if isinstance(vector, SparseVector):
        return vector.copy()
    if isinstance(vector, Mapping):
        return SparseVector(vector)
    if isinstance(vector, np.ndarray):
        return SparseVector.from_dense(vector.tolist())
    return SparseVector.from_dense(vector)


def to_dense(vector: SparseVector | np.ndarray, dimension: int) -> np.ndarray:
    """Coerce ``vector`` to a dense array of exactly ``dimension`` entries."""
    if isinstance(vector, np.ndarray):
        if vector.shape[0] == dimension:
            return np.asarray(vector, dtype=np.float64)
        result = np.zeros(dimension, dtype=np.float64)
        result[: min(dimension, vector.shape[0])] = vector[: min(dimension, vector.shape[0])]
        return result
    return vector.to_dense(dimension)


def dot(left: SparseVector | np.ndarray, right: SparseVector | np.ndarray) -> float:
    """Inner product between any combination of sparse and dense vectors."""
    if isinstance(left, SparseVector):
        return left.dot(right)
    if isinstance(right, SparseVector):
        return right.dot(left)
    n = min(left.shape[0], right.shape[0])
    return float(np.dot(left[:n], right[:n]))


def axpy(accumulator: SparseVector, vector: SparseVector, scale: float) -> SparseVector:
    """In-place ``accumulator += scale * vector``; returns the accumulator."""
    accumulator.add_inplace(vector, scale)
    return accumulator
