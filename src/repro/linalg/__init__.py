"""Sparse/dense vector arithmetic used by the learning substrate and Hazy core.

The paper's text workloads (DBLife, Citeseer) use sparse bag-of-words feature
vectors with very large dimensionality, while the Forest data set uses small
dense vectors.  :class:`~repro.linalg.vectors.SparseVector` covers both cases
with a dictionary representation; dense ``numpy`` arrays can be converted to and
from it.  :mod:`repro.linalg.norms` provides the p-norms and Hölder conjugate
pairs that the low/high-water bound computation relies on (Lemma 3.1).
"""

from repro.linalg.kernels import batch_dot, batch_eps, batch_margins, compare
from repro.linalg.norms import holder_conjugate, p_norm
from repro.linalg.vectors import SparseVector, dot, to_dense, to_sparse

__all__ = [
    "SparseVector",
    "dot",
    "to_dense",
    "to_sparse",
    "p_norm",
    "holder_conjugate",
    "batch_dot",
    "batch_margins",
    "batch_eps",
    "compare",
]
