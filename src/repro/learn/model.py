"""The linear model ``(w, b)`` and model deltas.

A linear model labels an entity with feature vector ``f`` as
``sign(w · f - b)``.  The Hazy core compares a *stored* model (the one used to
cluster the scratch table ``H``) against the *current* model; the difference
between them — captured here as :class:`ModelDelta` — is what Lemma 3.1 bounds
via Hölder's inequality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.linalg import SparseVector

__all__ = ["LinearModel", "ModelDelta", "sign"]


def sign(x: float) -> int:
    """The paper's sign convention: ``sign(x) = 1`` if ``x >= 0`` else ``-1``."""
    return 1 if x >= 0.0 else -1


@dataclass
class LinearModel:
    """A linear classification model ``(w, b)``.

    ``version`` counts how many training examples have been absorbed; the
    Hazy core uses it as the "round" index ``i`` of the paper.
    """

    weights: SparseVector = field(default_factory=SparseVector)
    bias: float = 0.0
    version: int = 0

    def copy(self) -> "LinearModel":
        """Return an independent snapshot of this model."""
        return LinearModel(weights=self.weights.copy(), bias=self.bias, version=self.version)

    def margin(self, features: SparseVector) -> float:
        """Return the signed distance proxy ``eps = w · f - b``."""
        return self.weights.dot(features) - self.bias

    def predict(self, features: SparseVector) -> int:
        """Return the label ``sign(w · f - b)`` in ``{-1, +1}``."""
        return sign(self.margin(features))

    def delta_from(self, stored: "LinearModel") -> "ModelDelta":
        """Return the delta ``(w - w_s, b - b_s)`` relative to a stored model."""
        return ModelDelta(
            weight_delta=self.weights.subtract(stored.weights),
            bias_delta=self.bias - stored.bias,
            from_version=stored.version,
            to_version=self.version,
        )

    def norm(self, p: float = 2.0) -> float:
        """Return ``||w||_p``."""
        return self.weights.norm(p)

    def is_zero(self) -> bool:
        """True when the model has no weights and no bias (untrained)."""
        return self.weights.nnz() == 0 and self.bias == 0.0

    def __repr__(self) -> str:
        return (
            f"LinearModel(nnz={self.weights.nnz()}, bias={self.bias:.4f}, "
            f"version={self.version})"
        )


@dataclass(frozen=True)
class ModelDelta:
    """The difference between two models, used by the water-band bounds."""

    weight_delta: SparseVector
    bias_delta: float
    from_version: int
    to_version: int

    def weight_norm(self, p: float) -> float:
        """Return ``||delta_w||_p`` (``p`` may be ``math.inf``)."""
        return self.weight_delta.norm(p)

    def is_empty(self) -> bool:
        """True when both models are identical."""
        return self.weight_delta.nnz() == 0 and self.bias_delta == 0.0

    def magnitude(self) -> float:
        """A scalar summary (l2 of the weight delta plus |bias delta|)."""
        return math.hypot(self.weight_delta.norm(2), self.bias_delta)
