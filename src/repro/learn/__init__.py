"""Learning substrate: linear models, incremental trainers, kernels.

The Hazy paper treats the learning algorithm as a pluggable subroutine — the
view-maintenance machinery only needs a sequence of models ``(w(i), b(i))``
produced by *incremental* training.  This package provides that substrate:

* :mod:`repro.learn.loss` / :mod:`repro.learn.regularizers` — the convex
  building blocks of Figure 9 (hinge, squared, logistic losses; lp, Tikhonov,
  entropy penalties).
* :mod:`repro.learn.model` — the ``(w, b)`` pair itself plus serialization.
* :mod:`repro.learn.sgd` — Bottou-style stochastic gradient descent, Hazy's
  default trainer.
* :mod:`repro.learn.passive_aggressive` / :mod:`repro.learn.perceptron` —
  alternative online learners from the incremental-learning literature the
  paper cites.
* :mod:`repro.learn.batch` — a batch sub-gradient SVM solver standing in for
  SVMLight in the Figure 10 comparison.
* :mod:`repro.learn.kernels`, :mod:`repro.learn.kernel_model`,
  :mod:`repro.learn.random_features` — kernel classifiers and the
  Rahimi–Recht linearization of shift-invariant kernels (Appendix B.5).
* :mod:`repro.learn.multiclass` — one-vs-all reduction (Appendix B.5.4).
* :mod:`repro.learn.model_selection` — leave-one-out model selection used when
  the view declaration does not name a method.
* :mod:`repro.learn.metrics` — precision/recall/accuracy/F1.
"""

from repro.learn.batch import BatchSubgradientSVM
from repro.learn.kernel_model import KernelClassifier
from repro.learn.kernels import (
    GaussianKernel,
    Kernel,
    LaplacianKernel,
    LinearKernel,
    PolynomialKernel,
)
from repro.learn.loss import HingeLoss, LogisticLoss, Loss, SquaredLoss, get_loss
from repro.learn.metrics import accuracy, confusion_counts, f1_score, precision_recall
from repro.learn.model import LinearModel, ModelDelta
from repro.learn.model_selection import leave_one_out_error, select_method
from repro.learn.multiclass import OneVersusAllClassifier
from repro.learn.passive_aggressive import PassiveAggressiveTrainer
from repro.learn.perceptron import PerceptronTrainer
from repro.learn.random_features import RandomFourierFeatures
from repro.learn.regularizers import (
    ElasticNetPenalty,
    L1Penalty,
    L2Penalty,
    Regularizer,
    get_regularizer,
)
from repro.learn.sgd import SGDTrainer, TrainingExample

__all__ = [
    "Loss",
    "HingeLoss",
    "LogisticLoss",
    "SquaredLoss",
    "get_loss",
    "Regularizer",
    "L1Penalty",
    "L2Penalty",
    "ElasticNetPenalty",
    "get_regularizer",
    "LinearModel",
    "ModelDelta",
    "TrainingExample",
    "SGDTrainer",
    "PassiveAggressiveTrainer",
    "PerceptronTrainer",
    "BatchSubgradientSVM",
    "Kernel",
    "LinearKernel",
    "GaussianKernel",
    "LaplacianKernel",
    "PolynomialKernel",
    "KernelClassifier",
    "RandomFourierFeatures",
    "OneVersusAllClassifier",
    "leave_one_out_error",
    "select_method",
    "accuracy",
    "precision_recall",
    "f1_score",
    "confusion_counts",
]
