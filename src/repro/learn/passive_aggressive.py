"""Online passive-aggressive learner (Crammer et al., cited as [9] by the paper).

PA is one of the incremental learning algorithms Hazy can plug in as the
training subroutine.  The PA-I variant used here caps the per-step update at
``aggressiveness`` which makes it robust to label noise.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import ConfigurationError
from repro.learn.model import LinearModel
from repro.learn.sgd import TrainingExample
from repro.linalg import SparseVector

__all__ = ["PassiveAggressiveTrainer"]


class PassiveAggressiveTrainer:
    """PA-I online learner for linear classification.

    On each example the update solves a tiny constrained optimization in closed
    form: move the model just enough to achieve a margin of 1 on the incoming
    example, but never by a step larger than ``aggressiveness``.
    """

    def __init__(self, aggressiveness: float = 1.0, fit_bias: bool = True):
        if aggressiveness <= 0:
            raise ConfigurationError("aggressiveness must be positive")
        self.aggressiveness = float(aggressiveness)
        self.fit_bias = bool(fit_bias)
        self.model = LinearModel()
        self._steps = 0

    def reset(self) -> None:
        """Forget the current model."""
        self.model = LinearModel()
        self._steps = 0

    def absorb(self, example: TrainingExample) -> LinearModel:
        """Absorb one example and return a snapshot of the updated model."""
        margin = self.model.margin(example.features)
        loss = max(0.0, 1.0 - example.label * margin)
        if loss > 0.0:
            # The bias is folded into the feature space as a constant 1 feature,
            # hence the +1 in the squared norm when fit_bias is on.
            squared = example.features.norm(2) ** 2 + (1.0 if self.fit_bias else 0.0)
            if squared > 0.0:
                tau = min(self.aggressiveness, loss / squared)
                self.model.weights.add_inplace(example.features, tau * example.label)
                if self.fit_bias:
                    self.model.bias -= tau * example.label
        self._steps += 1
        self.model.version = self._steps
        return self.model.copy()

    def absorb_many(self, examples: Iterable[TrainingExample]) -> LinearModel:
        """Absorb a stream of examples; returns the final model snapshot."""
        snapshot = self.model.copy()
        for example in examples:
            snapshot = self.absorb(example)
        return snapshot

    def predict(self, features: SparseVector) -> int:
        """Label a single feature vector with the current model."""
        return self.model.predict(features)

    @property
    def steps(self) -> int:
        """Number of examples absorbed so far."""
        return self._steps
