"""Leave-one-out based model selection.

When a ``CREATE CLASSIFICATION VIEW`` declaration does not specify a method
(``USING SVM`` etc.), Hazy "chooses a method automatically (using a simple
model selection algorithm based on leave-one-out estimators)".  This module
implements that selector: it estimates the leave-one-out error of each
candidate method on the training examples and picks the smallest.

For more than ``max_exact`` examples the estimator switches to K-fold
cross-validation, which approximates leave-one-out at a fraction of the cost.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.exceptions import ConfigurationError
from repro.learn.sgd import SGDTrainer, TrainingExample

__all__ = ["leave_one_out_error", "cross_validation_error", "select_method", "DEFAULT_CANDIDATES"]

TrainerFactory = Callable[[], SGDTrainer]

#: The predefined classification methods a view may select from.
DEFAULT_CANDIDATES: dict[str, TrainerFactory] = {
    "svm": lambda: SGDTrainer(loss="svm"),
    "logistic_regression": lambda: SGDTrainer(loss="logistic"),
    "ridge_regression": lambda: SGDTrainer(loss="ridge"),
}


def leave_one_out_error(
    factory: TrainerFactory,
    examples: Sequence[TrainingExample],
    epochs: int = 3,
) -> float:
    """Exact leave-one-out error estimate for the trainer built by ``factory``.

    For each example, a fresh trainer is fit on every *other* example and
    evaluated on the held-out one.  Returns the fraction of mistakes.
    """
    if len(examples) < 2:
        raise ConfigurationError("leave-one-out needs at least 2 examples")
    mistakes = 0
    for hold_out_index, held_out in enumerate(examples):
        trainer = factory()
        rest = [ex for i, ex in enumerate(examples) if i != hold_out_index]
        trainer.fit(rest, epochs=epochs)
        if trainer.predict(held_out.features) != held_out.label:
            mistakes += 1
    return mistakes / len(examples)


def cross_validation_error(
    factory: TrainerFactory,
    examples: Sequence[TrainingExample],
    folds: int = 5,
    epochs: int = 3,
    seed: int = 0,
) -> float:
    """K-fold cross-validation error — the scalable surrogate for leave-one-out."""
    if len(examples) < folds:
        raise ConfigurationError("need at least as many examples as folds")
    order = list(examples)
    random.Random(seed).shuffle(order)
    mistakes = 0
    for fold in range(folds):
        held_out = order[fold::folds]
        training = [ex for i, ex in enumerate(order) if i % folds != fold]
        trainer = factory()
        trainer.fit(training, epochs=epochs)
        mistakes += sum(1 for ex in held_out if trainer.predict(ex.features) != ex.label)
    return mistakes / len(order)


def select_method(
    examples: Sequence[TrainingExample],
    candidates: dict[str, TrainerFactory] | None = None,
    max_exact: int = 50,
    epochs: int = 3,
    seed: int = 0,
) -> tuple[str, float]:
    """Pick the candidate method with the lowest estimated generalization error.

    Returns ``(method_name, estimated_error)``.  Ties break toward the order of
    ``candidates`` (SVM first by default, matching Hazy's default).
    """
    if candidates is None:
        candidates = DEFAULT_CANDIDATES
    if not candidates:
        raise ConfigurationError("no candidate methods supplied")
    best_name: str | None = None
    best_error = float("inf")
    for name, factory in candidates.items():
        if len(examples) <= max_exact:
            error = leave_one_out_error(factory, examples, epochs=epochs)
        else:
            error = cross_validation_error(factory, examples, epochs=epochs, seed=seed)
        if error < best_error:
            best_name, best_error = name, error
    assert best_name is not None
    return best_name, best_error
