"""Convex loss functions for linear classification (paper Figure 9a).

Each loss ``L(z, y)`` takes the raw margin score ``z = w·x - b`` and the label
``y in {-1, +1}`` and exposes the (sub)derivative with respect to ``z`` that
the SGD trainer needs.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.exceptions import ConfigurationError

__all__ = ["Loss", "HingeLoss", "SquaredLoss", "LogisticLoss", "get_loss", "LOSSES"]


class Loss(ABC):
    """A convex loss ``L(z, y)`` with sub-derivative ``dL/dz``."""

    name: str = "loss"

    @abstractmethod
    def value(self, z: float, y: float) -> float:
        """Return ``L(z, y)``."""

    @abstractmethod
    def derivative(self, z: float, y: float) -> float:
        """Return a sub-derivative of ``L`` with respect to ``z``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class HingeLoss(Loss):
    """SVM hinge loss ``max(1 - z*y, 0)``."""

    name = "hinge"

    def value(self, z: float, y: float) -> float:
        return max(1.0 - z * y, 0.0)

    def derivative(self, z: float, y: float) -> float:
        return -y if z * y < 1.0 else 0.0


class SquaredLoss(Loss):
    """Ridge / least-squares loss ``(z - y)^2``."""

    name = "squared"

    def value(self, z: float, y: float) -> float:
        return (z - y) ** 2

    def derivative(self, z: float, y: float) -> float:
        return 2.0 * (z - y)


class LogisticLoss(Loss):
    """Logistic-regression loss ``log(1 + exp(-y*z))``."""

    name = "logistic"

    def value(self, z: float, y: float) -> float:
        margin = -y * z
        # Numerically stable log(1 + exp(margin)).
        if margin > 35.0:
            return margin
        return math.log1p(math.exp(margin))

    def derivative(self, z: float, y: float) -> float:
        margin = -y * z
        if margin > 35.0:
            sigma = 1.0
        elif margin < -35.0:
            sigma = 0.0
        else:
            sigma = 1.0 / (1.0 + math.exp(-margin))
        return -y * sigma


#: Registry of loss functions selectable by name (``USING SVM`` and friends).
LOSSES: dict[str, type[Loss]] = {
    "hinge": HingeLoss,
    "svm": HingeLoss,
    "squared": SquaredLoss,
    "ridge": SquaredLoss,
    "least_squares": SquaredLoss,
    "logistic": LogisticLoss,
    "logistic_regression": LogisticLoss,
}


def get_loss(name: str | Loss) -> Loss:
    """Resolve ``name`` (or pass through an instance) to a :class:`Loss`."""
    if isinstance(name, Loss):
        return name
    key = name.strip().lower()
    if key not in LOSSES:
        raise ConfigurationError(
            f"unknown loss {name!r}; available: {sorted(set(LOSSES))}"
        )
    return LOSSES[key]()
