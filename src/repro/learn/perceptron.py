"""Classic (averaged) perceptron learner.

The perceptron is the simplest incremental linear learner and serves both as a
baseline in tests and as another drop-in training subroutine for Hazy views
(the weighted-majority/online-learning lineage the paper cites as [21]).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import ConfigurationError
from repro.learn.model import LinearModel
from repro.learn.sgd import TrainingExample
from repro.linalg import SparseVector

__all__ = ["PerceptronTrainer"]


class PerceptronTrainer:
    """Online perceptron with optional weight averaging.

    Averaging keeps a running sum of every intermediate weight vector and uses
    the mean for prediction, which substantially improves generalization on
    noisy data while keeping the update itself incremental.
    """

    def __init__(self, learning_rate: float = 1.0, averaged: bool = False):
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)
        self.averaged = bool(averaged)
        self.model = LinearModel()
        self._sum_weights = SparseVector()
        self._sum_bias = 0.0
        self._steps = 0

    def reset(self) -> None:
        """Forget the current model and averaging state."""
        self.model = LinearModel()
        self._sum_weights = SparseVector()
        self._sum_bias = 0.0
        self._steps = 0

    def absorb(self, example: TrainingExample) -> LinearModel:
        """Absorb one example (mistake-driven update) and return a snapshot."""
        prediction = self.model.predict(example.features)
        if prediction != example.label:
            self.model.weights.add_inplace(
                example.features, self.learning_rate * example.label
            )
            self.model.bias -= self.learning_rate * example.label
        self._steps += 1
        self.model.version = self._steps
        if self.averaged:
            self._sum_weights.add_inplace(self.model.weights, 1.0)
            self._sum_bias += self.model.bias
        return self.snapshot()

    def absorb_many(self, examples: Iterable[TrainingExample]) -> LinearModel:
        """Absorb a stream of examples; returns the final model snapshot."""
        snapshot = self.snapshot()
        for example in examples:
            snapshot = self.absorb(example)
        return snapshot

    def snapshot(self) -> LinearModel:
        """Current prediction model (averaged if averaging is enabled)."""
        if not self.averaged or self._steps == 0:
            return self.model.copy()
        return LinearModel(
            weights=self._sum_weights.scale(1.0 / self._steps),
            bias=self._sum_bias / self._steps,
            version=self._steps,
        )

    def predict(self, features: SparseVector) -> int:
        """Label a single feature vector with the (possibly averaged) model."""
        return self.snapshot().predict(features)

    @property
    def steps(self) -> int:
        """Number of examples absorbed so far."""
        return self._steps
