"""Stochastic-gradient trainer (Bottou-style), Hazy's default learner.

The paper's default learning algorithm is stochastic gradient descent because
it examines a small number of training examples per step, has a tiny memory
footprint, and — crucially for view maintenance — updates the model
*incrementally*: each new training example produces the next model
``(w(i+1), b(i+1))`` from ``(w(i), b(i))`` with one gradient step.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.learn.loss import Loss, get_loss
from repro.learn.model import LinearModel
from repro.learn.regularizers import Regularizer, get_regularizer
from repro.linalg import SparseVector

__all__ = ["TrainingExample", "SGDTrainer"]


@dataclass(frozen=True)
class TrainingExample:
    """One labeled example: an entity id, its feature vector, and a label in {-1, +1}."""

    entity_id: int
    features: SparseVector
    label: int

    def __post_init__(self) -> None:
        if self.label not in (-1, 1):
            raise ConfigurationError(f"labels must be -1 or +1, got {self.label}")


class SGDTrainer:
    """Incremental stochastic gradient descent over a convex loss + penalty.

    Parameters
    ----------
    loss:
        Loss name (``"svm"``, ``"logistic"``, ``"ridge"``) or a :class:`Loss`.
    regularizer:
        Penalty name or instance; default l2 with small strength.
    learning_rate:
        Base step size ``eta_0``; the effective step decays as
        ``eta_0 / (1 + t * decay)`` where ``t`` counts absorbed examples.
    decay:
        Learning-rate decay constant; 0 keeps a constant step size.
    fit_bias:
        Whether to learn the bias term ``b`` (the paper's models all do).
    seed:
        Seed for the shuffling used by :meth:`fit` (epoch training).
    """

    def __init__(
        self,
        loss: str | Loss = "svm",
        regularizer: str | Regularizer = "l2",
        regularization: float = 1e-4,
        learning_rate: float = 0.3,
        decay: float = 0.02,
        fit_bias: bool = True,
        seed: int = 0,
    ):
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if decay < 0:
            raise ConfigurationError("decay must be >= 0")
        self.loss = get_loss(loss)
        self.regularizer = get_regularizer(regularizer, regularization)
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)
        self.fit_bias = bool(fit_bias)
        self._rng = random.Random(seed)
        self._steps = 0
        self.model = LinearModel()

    # -- incremental API -----------------------------------------------------

    def reset(self) -> None:
        """Forget the current model and step count (used on re-training)."""
        self.model = LinearModel()
        self._steps = 0

    def load_state(self, model: LinearModel, steps: int | None = None) -> None:
        """Resume from a snapshotted model (checkpoint recovery).

        ``steps`` restores the learning-rate decay position; it defaults to
        the model's version, which counts absorbed examples under the normal
        incremental protocol.
        """
        if steps is None:
            steps = model.version
        if steps < 0:
            raise ConfigurationError("steps must be >= 0")
        self.model = model.copy()
        self._steps = int(steps)

    def current_step_size(self) -> float:
        """The learning rate that the *next* example will be absorbed with."""
        return self.learning_rate / (1.0 + self.decay * self._steps)

    def absorb(self, example: TrainingExample) -> LinearModel:
        """Absorb one training example and return a snapshot of the new model.

        This is the subroutine Hazy invokes on every ``INSERT`` into the
        examples table: one gradient step on the incoming example.
        """
        eta = self.current_step_size()
        margin = self.model.margin(example.features)
        grad = self.loss.derivative(margin, float(example.label))

        # Regularize first (shrink), then take the loss step — the usual
        # ordering for truncated-gradient style updates.
        self.regularizer.apply(self.model.weights, eta)
        if grad != 0.0:
            self.model.weights.add_inplace(example.features, -eta * grad)
            if self.fit_bias:
                # d(eps)/db = -1, so the bias moves in the opposite direction.
                self.model.bias += eta * grad
        self._steps += 1
        self.model.version = self._steps
        return self.model.copy()

    def absorb_many(self, examples: Iterable[TrainingExample]) -> LinearModel:
        """Absorb a stream of examples; returns the final model snapshot."""
        snapshot = self.model.copy()
        for example in examples:
            snapshot = self.absorb(example)
        return snapshot

    # -- batch-style API ------------------------------------------------------

    def fit(self, examples: Sequence[TrainingExample], epochs: int = 5) -> LinearModel:
        """Run ``epochs`` shuffled passes over ``examples`` (bulk loading)."""
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        order = list(examples)
        for _ in range(epochs):
            self._rng.shuffle(order)
            for example in order:
                self.absorb(example)
        return self.model.copy()

    def predict(self, features: SparseVector) -> int:
        """Label a single feature vector with the current model."""
        return self.model.predict(features)

    def average_loss(self, examples: Sequence[TrainingExample]) -> float:
        """Mean loss of the current model over ``examples`` (diagnostics)."""
        if not examples:
            return 0.0
        total = sum(
            self.loss.value(self.model.margin(ex.features), float(ex.label))
            for ex in examples
        )
        return total / len(examples)

    @property
    def steps(self) -> int:
        """Number of gradient steps taken so far."""
        return self._steps
