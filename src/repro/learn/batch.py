"""Batch sub-gradient SVM solver — the stand-in for SVMLight in Figure 10.

The paper compares its incremental SGD-based approach against SVMLight, a
batch solver.  SVMLight itself is closed to this environment, so the
comparison point is reproduced with a Pegasos-style batch solver: full passes
over the training set with a projected sub-gradient step.  What matters for
the Figure 10 reproduction is the *relationship* — a batch solver does far
more work per unit of quality than single-pass SGD — which this preserves.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.loss import Loss, get_loss
from repro.learn.model import LinearModel
from repro.learn.sgd import TrainingExample
from repro.linalg import SparseVector

__all__ = ["BatchSubgradientSVM"]


class BatchSubgradientSVM:
    """Full-scan sub-gradient descent for the regularized hinge loss.

    Each iteration computes the exact sub-gradient over *all* training
    examples (this is what makes it a batch method, and what makes it slow
    relative to SGD), then takes a step ``1/(lambda * t)``.
    """

    def __init__(
        self,
        regularization: float = 1e-3,
        iterations: int = 200,
        loss: str | Loss = "svm",
        tolerance: float = 1e-6,
        seed: int = 0,
    ):
        if regularization <= 0:
            raise ConfigurationError("regularization must be positive")
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        self.regularization = float(regularization)
        self.iterations = int(iterations)
        self.loss = get_loss(loss)
        self.tolerance = float(tolerance)
        self._rng = random.Random(seed)
        self.model: LinearModel | None = None
        self.objective_trace: list[float] = []
        #: Number of example visits performed during fit (work accounting for Fig 10).
        self.examples_visited = 0

    def objective(self, model: LinearModel, examples: Sequence[TrainingExample]) -> float:
        """Regularized empirical risk of ``model`` on ``examples``."""
        if not examples:
            return 0.0
        risk = sum(
            self.loss.value(model.margin(ex.features), float(ex.label)) for ex in examples
        ) / len(examples)
        return 0.5 * self.regularization * model.weights.norm(2) ** 2 + risk

    def fit(self, examples: Sequence[TrainingExample]) -> LinearModel:
        """Train on ``examples`` with full-batch sub-gradient descent."""
        if not examples:
            raise ConfigurationError("cannot fit on an empty training set")
        model = LinearModel()
        n = len(examples)
        self.objective_trace = []
        self.examples_visited = 0
        previous = float("inf")
        for t in range(1, self.iterations + 1):
            step = 1.0 / (self.regularization * t)
            gradient = SparseVector()
            bias_gradient = 0.0
            for example in examples:
                margin = model.margin(example.features)
                g = self.loss.derivative(margin, float(example.label))
                if g != 0.0:
                    gradient.add_inplace(example.features, g / n)
                    bias_gradient -= g / n
                self.examples_visited += 1
            # w <- (1 - step*lambda) w - step * grad
            model.weights.scale_inplace(max(0.0, 1.0 - step * self.regularization))
            model.weights.add_inplace(gradient, -step)
            model.bias -= step * bias_gradient
            model.version = t
            current = self.objective(model, examples)
            self.objective_trace.append(current)
            if abs(previous - current) < self.tolerance:
                break
            previous = current
        self.model = model
        return model.copy()

    def predict(self, features: SparseVector) -> int:
        """Label a feature vector with the fitted model."""
        if self.model is None:
            raise NotFittedError("BatchSubgradientSVM.predict called before fit")
        return self.model.predict(features)
