"""Classification quality metrics (precision / recall, as in Figure 10)."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["ConfusionCounts", "confusion_counts", "accuracy", "precision_recall", "f1_score"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts for labels in {-1, +1}."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return self.true_positive + self.false_positive + self.true_negative + self.false_negative


def confusion_counts(predicted: Sequence[int], actual: Sequence[int]) -> ConfusionCounts:
    """Count TP/FP/TN/FN for predicted vs actual labels in {-1, +1}."""
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual label sequences differ in length")
    tp = fp = tn = fn = 0
    for p, a in zip(predicted, actual):
        if p == 1 and a == 1:
            tp += 1
        elif p == 1 and a == -1:
            fp += 1
        elif p == -1 and a == -1:
            tn += 1
        else:
            fn += 1
    return ConfusionCounts(tp, fp, tn, fn)


def accuracy(predicted: Sequence[int], actual: Sequence[int]) -> float:
    """Fraction of correct predictions (1.0 on empty input)."""
    counts = confusion_counts(predicted, actual)
    if counts.total == 0:
        return 1.0
    return (counts.true_positive + counts.true_negative) / counts.total


def precision_recall(predicted: Sequence[int], actual: Sequence[int]) -> tuple[float, float]:
    """Return ``(precision, recall)`` for the positive class.

    Both default to 1.0 when their denominator is zero (no positive
    predictions / no positive examples), which keeps the Figure 10 table well
    defined on degenerate splits.
    """
    counts = confusion_counts(predicted, actual)
    predicted_positive = counts.true_positive + counts.false_positive
    actual_positive = counts.true_positive + counts.false_negative
    precision = counts.true_positive / predicted_positive if predicted_positive else 1.0
    recall = counts.true_positive / actual_positive if actual_positive else 1.0
    return precision, recall


def f1_score(predicted: Sequence[int], actual: Sequence[int]) -> float:
    """Harmonic mean of precision and recall (0.0 when both are zero)."""
    precision, recall = precision_recall(predicted, actual)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
