"""Regularization penalties ``P(w)`` (paper Figure 9b).

The SGD trainer applies the penalty's gradient contribution once per example
(scaled by the learning rate and ``lambda / n`` as usual for stochastic
methods).  ``L1Penalty`` uses the common truncation approach so that weights
actually reach exactly zero, preserving sparsity of the model vector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.exceptions import ConfigurationError
from repro.linalg import SparseVector

__all__ = [
    "Regularizer",
    "L2Penalty",
    "L1Penalty",
    "ElasticNetPenalty",
    "get_regularizer",
    "REGULARIZERS",
]


class Regularizer(ABC):
    """A strongly convex penalty ``P(w)`` with an in-place proximal/gradient step."""

    name = "penalty"

    def __init__(self, strength: float = 1e-4):
        if strength < 0:
            raise ConfigurationError("regularization strength must be >= 0")
        self.strength = float(strength)

    @abstractmethod
    def value(self, weights: SparseVector) -> float:
        """Return ``P(w)``."""

    @abstractmethod
    def apply(self, weights: SparseVector, learning_rate: float) -> None:
        """Apply one regularization step to ``weights`` in place."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(strength={self.strength})"


class L2Penalty(Regularizer):
    """``P(w) = (strength / 2) * ||w||_2^2`` — shrinks weights multiplicatively."""

    name = "l2"

    def value(self, weights: SparseVector) -> float:
        return 0.5 * self.strength * weights.norm(2) ** 2

    def apply(self, weights: SparseVector, learning_rate: float) -> None:
        factor = 1.0 - learning_rate * self.strength
        if factor < 0.0:
            factor = 0.0
        weights.scale_inplace(factor)


class L1Penalty(Regularizer):
    """``P(w) = strength * ||w||_1`` — truncation keeps the model sparse."""

    name = "l1"

    def value(self, weights: SparseVector) -> float:
        return self.strength * weights.norm(1)

    def apply(self, weights: SparseVector, learning_rate: float) -> None:
        shrink = learning_rate * self.strength
        if shrink <= 0.0:
            return
        updated: dict[int, float] = {}
        for index, value in weights.items():
            if value > shrink:
                updated[index] = value - shrink
            elif value < -shrink:
                updated[index] = value + shrink
        # Rebuild in place to drop truncated entries.
        for index in list(weights.indices()):
            weights[index] = 0.0
        for index, value in updated.items():
            weights[index] = value


class ElasticNetPenalty(Regularizer):
    """Convex combination of L1 and L2: ``ratio`` selects the L1 share."""

    name = "elastic_net"

    def __init__(self, strength: float = 1e-4, ratio: float = 0.5):
        super().__init__(strength)
        if not 0.0 <= ratio <= 1.0:
            raise ConfigurationError("elastic-net ratio must be in [0, 1]")
        self.ratio = float(ratio)
        self._l1 = L1Penalty(strength * ratio)
        self._l2 = L2Penalty(strength * (1.0 - ratio))

    def value(self, weights: SparseVector) -> float:
        return self._l1.value(weights) + self._l2.value(weights)

    def apply(self, weights: SparseVector, learning_rate: float) -> None:
        self._l2.apply(weights, learning_rate)
        self._l1.apply(weights, learning_rate)


#: Registry of penalties selectable by name.
REGULARIZERS: dict[str, type[Regularizer]] = {
    "l2": L2Penalty,
    "ridge": L2Penalty,
    "l1": L1Penalty,
    "lasso": L1Penalty,
    "elastic_net": ElasticNetPenalty,
}


def get_regularizer(name: str | Regularizer, strength: float = 1e-4) -> Regularizer:
    """Resolve ``name`` (or pass through an instance) to a :class:`Regularizer`."""
    if isinstance(name, Regularizer):
        return name
    key = name.strip().lower()
    if key not in REGULARIZERS:
        raise ConfigurationError(
            f"unknown regularizer {name!r}; available: {sorted(set(REGULARIZERS))}"
        )
    return REGULARIZERS[key](strength)
