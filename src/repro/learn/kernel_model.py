"""Kernel classifiers built from support vectors (Appendix B.5.2).

A kernel classifier scores a point as ``c(x) = sum_i c_i * K(s_i, x)`` where
the ``s_i`` are support vectors.  The same incremental-maintenance intuition as
for linear models applies: the model lives in the (weight) space of support
vector coefficients, and the difference between two models bounds how much any
point's score can move (the paper notes ``K(s_i, x) in [0, 1]`` for its
kernels, so the l1 norm of the coefficient delta is the bound).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import NotFittedError
from repro.learn.kernels import Kernel, LinearKernel
from repro.learn.model import sign
from repro.learn.sgd import TrainingExample
from repro.linalg import SparseVector

__all__ = ["SupportVector", "KernelClassifier", "KernelPerceptronTrainer"]


@dataclass(frozen=True)
class SupportVector:
    """A stored training point with its coefficient in the kernel expansion."""

    features: SparseVector
    coefficient: float


@dataclass
class KernelClassifier:
    """A kernel expansion ``c(x) = sum_i coeff_i * K(s_i, x) + bias``."""

    kernel: Kernel = field(default_factory=LinearKernel)
    support_vectors: list[SupportVector] = field(default_factory=list)
    bias: float = 0.0
    version: int = 0

    def score(self, features: SparseVector) -> float:
        """Raw decision value for ``features``."""
        total = self.bias
        for sv in self.support_vectors:
            total += sv.coefficient * self.kernel(sv.features, features)
        return total

    def predict(self, features: SparseVector) -> int:
        """Label in ``{-1, +1}``."""
        return sign(self.score(features))

    def coefficient_l1_delta(self, other: "KernelClassifier") -> float:
        """l1 distance between the coefficient vectors of two expansions.

        The two expansions are aligned by support-vector position; the shorter
        model is padded with zero coefficients, matching the paper's remark
        that a new training example simply introduces a new support vector with
        prior weight zero.
        """
        longest = max(len(self.support_vectors), len(other.support_vectors))
        total = abs(self.bias - other.bias)
        for i in range(longest):
            mine = self.support_vectors[i].coefficient if i < len(self.support_vectors) else 0.0
            theirs = other.support_vectors[i].coefficient if i < len(other.support_vectors) else 0.0
            total += abs(mine - theirs)
        return total

    def copy(self) -> "KernelClassifier":
        """Snapshot the classifier (support vectors are shared, coefficients copied)."""
        return KernelClassifier(
            kernel=self.kernel,
            support_vectors=list(self.support_vectors),
            bias=self.bias,
            version=self.version,
        )


class KernelPerceptronTrainer:
    """Incremental kernel perceptron: each mistake adds a support vector."""

    def __init__(self, kernel: Kernel | None = None, learning_rate: float = 1.0):
        self.kernel = kernel if kernel is not None else LinearKernel()
        self.learning_rate = float(learning_rate)
        self.model = KernelClassifier(kernel=self.kernel)
        self._steps = 0

    def absorb(self, example: TrainingExample) -> KernelClassifier:
        """Absorb one example; mistakes append a new support vector."""
        prediction = self.model.predict(example.features)
        if prediction != example.label:
            self.model.support_vectors.append(
                SupportVector(
                    features=example.features.copy(),
                    coefficient=self.learning_rate * example.label,
                )
            )
            self.model.bias += self.learning_rate * example.label
        self._steps += 1
        self.model.version = self._steps
        return self.model.copy()

    def absorb_many(self, examples: Iterable[TrainingExample]) -> KernelClassifier:
        """Absorb a stream of examples; returns the final model snapshot."""
        snapshot = self.model.copy()
        for example in examples:
            snapshot = self.absorb(example)
        return snapshot

    def fit(self, examples: Sequence[TrainingExample], epochs: int = 3) -> KernelClassifier:
        """Multiple passes over a training set."""
        snapshot = self.model.copy()
        for _ in range(epochs):
            snapshot = self.absorb_many(examples)
        return snapshot

    def predict(self, features: SparseVector) -> int:
        """Label a feature vector with the current kernel model."""
        if not self.model.support_vectors and self.model.bias == 0.0 and self._steps == 0:
            raise NotFittedError("kernel perceptron has absorbed no examples")
        return self.model.predict(features)
