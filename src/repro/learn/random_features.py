"""Random Fourier features (Rahimi & Recht) — Appendix B.5.3.

For shift-invariant kernels (Gaussian, Laplacian) the kernel value can be
approximated by an inner product in a low-dimensional random feature space:
``z(x)^T z(y) ≈ K(x, y)``.  The map used here is the classic
``z(x)_i = sqrt(2/D) * cos(r_i · x + c_i)`` with ``r_i`` drawn from the
kernel's spectral density and ``c_i`` uniform on ``[0, 2*pi]``.

After the transformation, classification is again a *linear* problem, so all
of Hazy's linear-view machinery applies unchanged — this is exactly how the
paper runs the feature-sensitivity experiment of Figure 12(A).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.learn.kernels import GaussianKernel, Kernel, LaplacianKernel
from repro.linalg import SparseVector

__all__ = ["RandomFourierFeatures"]


class RandomFourierFeatures:
    """A random map ``z : R^d -> R^D`` approximating a shift-invariant kernel.

    Parameters
    ----------
    input_dimension:
        Dimensionality ``d`` of the original feature space.
    output_dimension:
        Number of random features ``D``; larger D gives a tighter kernel
        approximation (and more expensive dot products, which is the point of
        the Figure 12(A) sweep).
    kernel:
        A shift-invariant kernel instance (Gaussian or Laplacian).
    seed:
        Seed for the random projection directions.
    """

    def __init__(
        self,
        input_dimension: int,
        output_dimension: int,
        kernel: Kernel | None = None,
        seed: int = 0,
    ):
        if input_dimension < 1 or output_dimension < 1:
            raise ConfigurationError("dimensions must be positive")
        kernel = kernel if kernel is not None else GaussianKernel(gamma=1.0)
        if not kernel.shift_invariant:
            raise ConfigurationError(
                f"random Fourier features require a shift-invariant kernel, got {kernel!r}"
            )
        self.kernel = kernel
        self.input_dimension = int(input_dimension)
        self.output_dimension = int(output_dimension)
        rng = np.random.default_rng(seed)
        if isinstance(kernel, GaussianKernel):
            # Spectral density of exp(-gamma ||x-y||^2) is N(0, 2*gamma I).
            scale = math.sqrt(2.0 * kernel.gamma)
            self._directions = rng.normal(0.0, scale, size=(output_dimension, input_dimension))
        elif isinstance(kernel, LaplacianKernel):
            # Spectral density of the Laplacian kernel is a Cauchy distribution.
            self._directions = kernel.gamma * rng.standard_cauchy(
                size=(output_dimension, input_dimension)
            )
        else:  # pragma: no cover - guarded by shift_invariant check above
            raise ConfigurationError(f"unsupported shift-invariant kernel {kernel!r}")
        self._offsets = rng.uniform(0.0, 2.0 * math.pi, size=output_dimension)
        self._amplitude = math.sqrt(2.0 / output_dimension)

    def transform(self, features: SparseVector) -> SparseVector:
        """Map a sparse input vector into the dense random-feature space."""
        projected = np.zeros(self.output_dimension)
        for index, value in features.items():
            if index < self.input_dimension:
                projected += value * self._directions[:, index]
        transformed = self._amplitude * np.cos(projected + self._offsets)
        return SparseVector.from_dense(transformed.tolist())

    def approximate_kernel(self, left: SparseVector, right: SparseVector) -> float:
        """``z(left) · z(right)`` — should be close to ``K(left, right)``."""
        return self.transform(left).dot(self.transform(right))
