"""Multiclass classification by one-versus-all reduction (Appendix B.5.4).

The paper supports multiclass problems by composing binary classifiers; the
sequential one-versus-all scheme evaluated in Figure 12(B) trains one binary
model per label and predicts the argmax of the per-label scores.  Each binary
sub-problem is an ordinary Hazy-maintainable linear view, which is how the
reproduction keeps the order-of-magnitude update advantage as the number of
labels grows.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.model import LinearModel
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector

__all__ = ["LabeledExample", "OneVersusAllClassifier"]


@dataclass(frozen=True)
class LabeledExample:
    """A multiclass training example: entity id, features, and an arbitrary label."""

    entity_id: int
    features: SparseVector
    label: object


class OneVersusAllClassifier:
    """One binary trainer per label; prediction is the argmax of margins.

    Parameters
    ----------
    labels:
        The label vocabulary.  Labels may be any hashable values.
    trainer_factory:
        Callable producing a fresh binary trainer (defaults to
        :class:`~repro.learn.sgd.SGDTrainer` with SVM loss).
    """

    def __init__(
        self,
        labels: Sequence[object],
        trainer_factory: Callable[[], SGDTrainer] | None = None,
    ):
        labels = list(labels)
        if len(labels) < 2:
            raise ConfigurationError("multiclass classification needs at least 2 labels")
        if len(set(labels)) != len(labels):
            raise ConfigurationError("duplicate labels in the label set")
        factory = trainer_factory if trainer_factory is not None else SGDTrainer
        self.labels = labels
        self.trainers: dict[object, SGDTrainer] = {label: factory() for label in labels}
        self._absorbed = 0

    def absorb(self, example: LabeledExample) -> dict[object, LinearModel]:
        """Feed one multiclass example to every per-label binary trainer.

        The example is positive (+1) for its own label's trainer and negative
        (-1) for every other label's trainer; this is the "sequential
        one-versus-all" configuration of the paper's Figure 12(B).
        """
        if example.label not in self.trainers:
            raise ConfigurationError(f"unknown label {example.label!r}")
        snapshots: dict[object, LinearModel] = {}
        for label, trainer in self.trainers.items():
            binary_label = 1 if label == example.label else -1
            snapshots[label] = trainer.absorb(
                TrainingExample(example.entity_id, example.features, binary_label)
            )
        self._absorbed += 1
        return snapshots

    def absorb_many(self, examples: Iterable[LabeledExample]) -> None:
        """Absorb a stream of multiclass examples."""
        for example in examples:
            self.absorb(example)

    def scores(self, features: SparseVector) -> dict[object, float]:
        """Per-label raw margins for ``features``."""
        return {label: trainer.model.margin(features) for label, trainer in self.trainers.items()}

    def predict(self, features: SparseVector) -> object:
        """Return the label with the largest margin."""
        if self._absorbed == 0:
            raise NotFittedError("OneVersusAllClassifier has absorbed no examples")
        label_scores = self.scores(features)
        return max(label_scores, key=lambda label: label_scores[label])

    def models(self) -> dict[object, LinearModel]:
        """Snapshot of each per-label binary model."""
        return {label: trainer.model.copy() for label, trainer in self.trainers.items()}

    @property
    def absorbed(self) -> int:
        """Number of multiclass examples absorbed so far."""
        return self._absorbed
