"""Kernel functions (Appendix B.5.2).

A kernel ``K : R^d x R^d -> R`` is a positive semi-definite function.  The
Gaussian and Laplacian kernels are *shift invariant* which makes them eligible
for the Rahimi–Recht random-feature linearization in
:mod:`repro.learn.random_features`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.exceptions import ConfigurationError
from repro.linalg import SparseVector

__all__ = [
    "Kernel",
    "LinearKernel",
    "PolynomialKernel",
    "GaussianKernel",
    "LaplacianKernel",
    "get_kernel",
    "KERNELS",
]


class Kernel(ABC):
    """A positive semi-definite similarity function between feature vectors."""

    name = "kernel"
    #: Whether ``K(x, y)`` only depends on ``x - y`` (enables random features).
    shift_invariant = False

    @abstractmethod
    def __call__(self, left: SparseVector, right: SparseVector) -> float:
        """Evaluate ``K(left, right)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LinearKernel(Kernel):
    """The trivial kernel ``K(x, y) = x · y``."""

    name = "linear"

    def __call__(self, left: SparseVector, right: SparseVector) -> float:
        return left.dot(right)


class PolynomialKernel(Kernel):
    """``K(x, y) = (gamma * x·y + coef0)^degree``."""

    name = "polynomial"

    def __init__(self, degree: int = 2, gamma: float = 1.0, coef0: float = 1.0):
        if degree < 1:
            raise ConfigurationError("polynomial degree must be >= 1")
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def __call__(self, left: SparseVector, right: SparseVector) -> float:
        return (self.gamma * left.dot(right) + self.coef0) ** self.degree

    def __repr__(self) -> str:
        return f"PolynomialKernel(degree={self.degree}, gamma={self.gamma}, coef0={self.coef0})"


def _squared_distance(left: SparseVector, right: SparseVector) -> float:
    """``||left - right||_2^2`` without materializing the difference twice."""
    total = 0.0
    for index, value in left.items():
        diff = value - right[index]
        total += diff * diff
    for index, value in right.items():
        if index not in left:
            total += value * value
    return total


def _l1_distance(left: SparseVector, right: SparseVector) -> float:
    """``||left - right||_1``."""
    total = 0.0
    for index, value in left.items():
        total += abs(value - right[index])
    for index, value in right.items():
        if index not in left:
            total += abs(value)
    return total


class GaussianKernel(Kernel):
    """RBF kernel ``K(x, y) = exp(-gamma * ||x - y||_2^2)``."""

    name = "gaussian"
    shift_invariant = True

    def __init__(self, gamma: float = 1.0):
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        self.gamma = float(gamma)

    def __call__(self, left: SparseVector, right: SparseVector) -> float:
        return math.exp(-self.gamma * _squared_distance(left, right))

    def __repr__(self) -> str:
        return f"GaussianKernel(gamma={self.gamma})"


class LaplacianKernel(Kernel):
    """``K(x, y) = exp(-gamma * ||x - y||_1)`` — also shift invariant."""

    name = "laplacian"
    shift_invariant = True

    def __init__(self, gamma: float = 1.0):
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        self.gamma = float(gamma)

    def __call__(self, left: SparseVector, right: SparseVector) -> float:
        return math.exp(-self.gamma * _l1_distance(left, right))

    def __repr__(self) -> str:
        return f"LaplacianKernel(gamma={self.gamma})"


#: Registry of kernels selectable by name in view declarations.
KERNELS: dict[str, type[Kernel]] = {
    "linear": LinearKernel,
    "polynomial": PolynomialKernel,
    "poly": PolynomialKernel,
    "gaussian": GaussianKernel,
    "rbf": GaussianKernel,
    "laplacian": LaplacianKernel,
}


def get_kernel(name: str | Kernel, **kwargs) -> Kernel:
    """Resolve ``name`` (or pass through an instance) to a :class:`Kernel`."""
    if isinstance(name, Kernel):
        return name
    key = name.strip().lower()
    if key not in KERNELS:
        raise ConfigurationError(f"unknown kernel {name!r}; available: {sorted(set(KERNELS))}")
    return KERNELS[key](**kwargs)
