"""Hazy: incrementally maintained classification views inside an RDBMS.

A from-scratch reproduction of Koc & Ré, "Incrementally Maintaining
Classification using an RDBMS" (PVLDB 4(5), 2011).

The public API is organized as:

* :mod:`repro.db` — the relational substrate (tables, buffer pool, B+-tree,
  triggers, SQL including ``CREATE CLASSIFICATION VIEW``);
* :mod:`repro.learn` — linear models and incremental trainers;
* :mod:`repro.features` — feature functions (tf, tf-idf, TF-ICF, dense);
* :mod:`repro.core` — the incremental view-maintenance machinery: water-band
  bounds, the Skiing strategy, the three architectures and four maintenance
  strategies, and the :class:`~repro.core.engine.HazyEngine`;
* :mod:`repro.workloads` — synthetic stand-ins for the paper's data sets;
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.

Quickstart::

    from repro import Database, HazyEngine

    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    engine = HazyEngine(db)
    db.execute("INSERT INTO paper_area (label) VALUES ('database')")
    # ... insert papers ...
    db.execute(
        "CREATE CLASSIFICATION VIEW labeled_papers KEY id "
        "ENTITIES FROM papers KEY id "
        "LABELS FROM paper_area LABEL label "
        "EXAMPLES FROM example_papers KEY id LABEL label "
        "FEATURE FUNCTION tf_bag_of_words USING SVM"
    )
    db.execute("INSERT INTO example_papers (id, label) VALUES (1, 'database')")
    db.execute("SELECT COUNT(*) FROM labeled_papers WHERE class = 'database'")
"""

from repro.core import (
    ClassificationViewDefinition,
    HazyEagerMaintainer,
    HazyEngine,
    HazyLazyMaintainer,
    HybridEntityStore,
    InMemoryEntityStore,
    MulticlassClassificationView,
    NaiveEagerMaintainer,
    NaiveLazyMaintainer,
    OnDiskEntityStore,
    SkiingStrategy,
)
from repro.db import CostModel, Database
from repro.exceptions import HazyError
from repro.learn import LinearModel, SGDTrainer, TrainingExample
from repro.linalg import SparseVector

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HazyError",
    "Database",
    "CostModel",
    "SparseVector",
    "LinearModel",
    "SGDTrainer",
    "TrainingExample",
    "HazyEngine",
    "ClassificationViewDefinition",
    "SkiingStrategy",
    "InMemoryEntityStore",
    "OnDiskEntityStore",
    "HybridEntityStore",
    "NaiveEagerMaintainer",
    "NaiveLazyMaintainer",
    "HazyEagerMaintainer",
    "HazyLazyMaintainer",
    "MulticlassClassificationView",
]
