"""Hazy: incrementally maintained classification views inside an RDBMS.

A from-scratch reproduction of Koc & Ré, "Incrementally Maintaining
Classification using an RDBMS" (PVLDB 4(5), 2011).

The public API is organized as:

* :mod:`repro.db` — the relational substrate (tables, buffer pool, B+-tree,
  triggers, SQL including ``CREATE CLASSIFICATION VIEW``);
* :mod:`repro.learn` — linear models and incremental trainers;
* :mod:`repro.features` — feature functions (tf, tf-idf, TF-ICF, dense);
* :mod:`repro.core` — the incremental view-maintenance machinery: water-band
  bounds, the Skiing strategy, the three architectures and four maintenance
  strategies, and the :class:`~repro.core.engine.HazyEngine`;
* :mod:`repro.serve` — the concurrent serving subsystem;
* :mod:`repro.net` — the wire front door: ``SQLServer`` speaking a
  length-prefixed JSON frame protocol over TCP, pooled network clients with
  the same DB-API surface, and two-lane admission control;
* :mod:`repro.obs` — the observability layer: metrics registry, per-statement
  trace trees, the slow-query log, and the ``system.*`` virtual tables;
* :mod:`repro.persist` — checkpoint / warm-restart;
* :mod:`repro.workloads` — synthetic stand-ins for the paper's data sets;
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.

The front door is :func:`repro.connect`: one connection, everything in SQL —
including the serving lifecycle::

    import repro

    conn = repro.connect()
    conn.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    conn.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    conn.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    conn.execute("INSERT INTO paper_area (label) VALUES ('database')")
    # ... insert papers ...
    conn.execute(
        "CREATE CLASSIFICATION VIEW labeled_papers KEY id "
        "ENTITIES FROM papers KEY id "
        "LABELS FROM paper_area LABEL label "
        "EXAMPLES FROM example_papers KEY id LABEL label "
        "FEATURE FUNCTION tf_bag_of_words USING SVM"
    )
    conn.execute("SERVE VIEW labeled_papers WITH (shards = 4)")
    conn.execute("INSERT INTO example_papers (id, label) VALUES (1, 'database')")
    conn.execute("SELECT COUNT(*) FROM labeled_papers WHERE class = 'database'").scalar()
    conn.execute("SELECT * FROM system.metrics")       # registry snapshot
    conn.execute("SELECT * FROM system.served_views")  # serving dashboard
    conn.execute("CHECKPOINT VIEW labeled_papers TO '/tmp/ckpt'")
    conn.close()  # quiesces every served view

    # later, in a fresh process over the same base tables:
    conn = repro.connect()
    # ... recreate base tables ...
    conn.execute("RESTORE VIEW labeled_papers FROM '/tmp/ckpt'")

``Database`` + ``HazyEngine`` remain available as the imperative surface the
facade is built on.
"""

from repro.core import (
    ClassificationViewDefinition,
    HazyEagerMaintainer,
    HazyEngine,
    HazyLazyMaintainer,
    HybridEntityStore,
    InMemoryEntityStore,
    MulticlassClassificationView,
    NaiveEagerMaintainer,
    NaiveLazyMaintainer,
    OnDiskEntityStore,
    SkiingStrategy,
)
from repro.connection import Connection, Cursor, connect
from repro.db import CostModel, Database
from repro.exceptions import HazyError
from repro.learn import LinearModel, SGDTrainer, TrainingExample
from repro.linalg import SparseVector
from repro.obs import MetricsRegistry, Observability, render_text

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HazyError",
    "connect",
    "Connection",
    "Cursor",
    "Database",
    "CostModel",
    "SparseVector",
    "LinearModel",
    "SGDTrainer",
    "TrainingExample",
    "HazyEngine",
    "Observability",
    "MetricsRegistry",
    "render_text",
    "ClassificationViewDefinition",
    "SkiingStrategy",
    "InMemoryEntityStore",
    "OnDiskEntityStore",
    "HybridEntityStore",
    "NaiveEagerMaintainer",
    "NaiveLazyMaintainer",
    "HazyEagerMaintainer",
    "HazyLazyMaintainer",
    "MulticlassClassificationView",
]
