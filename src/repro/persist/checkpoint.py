"""Checkpoint directory layout and the read side of recovery.

A checkpoint is a directory::

    <path>/
        shard-0000.hzs ... shard-NNNN.hzs   one frame per shard (written concurrently)
        features.hzs                        pickled feature function (optional)
        MANIFEST.hzs                        global state — written LAST, atomically

The manifest is the commit point: :func:`load_checkpoint` starts from it, so
a checkpoint interrupted before the manifest rename simply does not exist.
Every file is CRC-checked and version-checked (see
:mod:`repro.persist.format`); a truncated or corrupted shard file surfaces as
:class:`~repro.exceptions.SnapshotCorruptionError` before any state is
imported.

The feature function is serialized with :mod:`pickle` inside a CRC frame —
only restore checkpoints you wrote yourself (the usual pickle trust model).
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from repro.exceptions import SnapshotCorruptionError, SnapshotError
from repro.persist.format import read_frame, read_json_frame, write_frame, write_json_frame
from repro.persist.snapshot import CheckpointManifest, LoadedCheckpoint, ShardState

__all__ = [
    "MANIFEST_NAME",
    "FEATURES_NAME",
    "shard_file_name",
    "shard_file_sha",
    "write_shard_state",
    "write_manifest",
    "write_feature_function",
    "load_checkpoint",
    "describe_checkpoint",
]

MANIFEST_NAME = "MANIFEST.hzs"
FEATURES_NAME = "features.hzs"


def shard_file_name(index: int) -> str:
    """The file name of shard ``index``'s snapshot."""
    return f"shard-{index:04d}.hzs"


def shard_file_sha(path: Path | str) -> str:
    """Content digest of a shard file's raw bytes (frame header included).

    Incremental checkpoints record this next to a parent-shard reference so
    a later restore can prove the referenced file was not rewritten."""
    return hashlib.blake2b(Path(path).read_bytes(), digest_size=16).hexdigest()


def write_shard_state(directory: Path | str, state: ShardState) -> int:
    """Write one shard's state; returns the bytes written (for read pricing)."""
    return write_json_frame(Path(directory) / shard_file_name(state.index), state.to_document())


def write_manifest(directory: Path | str, manifest: CheckpointManifest) -> int:
    """Write the manifest — the checkpoint's atomic commit point."""
    return write_json_frame(Path(directory) / MANIFEST_NAME, manifest.to_document())


def write_feature_function(directory: Path | str, feature_function: object) -> int:
    """Pickle the feature function (corpus statistics included) into a frame."""
    payload = pickle.dumps(feature_function, protocol=pickle.HIGHEST_PROTOCOL)
    return write_frame(Path(directory) / FEATURES_NAME, payload)


def describe_checkpoint(path: Path | str) -> dict[str, object]:
    """Summarize a checkpoint by reading (and validating) only its manifest.

    Cheap inspection for tooling and the SQL ``RESTORE VIEW`` result row: no
    shard payloads are decoded and no feature function is unpickled.
    """
    directory = Path(path)
    if not directory.is_dir():
        raise SnapshotError(f"checkpoint directory {directory} does not exist")
    manifest = CheckpointManifest.from_document(read_json_frame(directory / MANIFEST_NAME))
    return {
        "path": str(directory),
        "view": manifest.view_name,
        "epoch": manifest.epoch,
        "num_shards": manifest.num_shards,
        "examples": len(manifest.examples),
        "architecture": manifest.architecture,
        "strategy": manifest.strategy,
        "approach": manifest.approach,
        "wal_applied_seq": manifest.wal_applied_seq,
        "parent": manifest.parent,
    }


def load_checkpoint(path: Path | str) -> LoadedCheckpoint:
    """Read a whole checkpoint directory back into memory, validating every frame."""
    directory = Path(path)
    if not directory.is_dir():
        raise SnapshotError(f"checkpoint directory {directory} does not exist")
    manifest = CheckpointManifest.from_document(read_json_frame(directory / MANIFEST_NAME))
    if len(manifest.shard_files) != manifest.num_shards:
        raise SnapshotCorruptionError(
            f"checkpoint {directory} promises {manifest.num_shards} shards but its "
            f"manifest lists {len(manifest.shard_files)} shard files"
        )
    shard_states: list[ShardState] = []
    for index, name in enumerate(manifest.shard_files):
        source = manifest.shard_sources[index] if manifest.shard_sources else None
        file_path = Path(source) if source else directory / name
        if not file_path.is_file():
            where = "references parent shard file" if source else "lists shard file"
            raise SnapshotCorruptionError(
                f"checkpoint {directory} manifest {where} {file_path} "
                "but it is missing"
            )
        if manifest.shard_shas is not None and shard_file_sha(file_path) != manifest.shard_shas[index]:
            raise SnapshotCorruptionError(
                f"checkpoint {directory} shard file {file_path} does not match the "
                "content digest its manifest recorded: the file was rewritten or corrupted"
            )
        payload_bytes = file_path.stat().st_size
        shard_states.append(
            ShardState.from_document(read_json_frame(file_path), payload_bytes=payload_bytes)
        )
    feature_function = None
    if manifest.has_feature_function:
        payload = read_frame(directory / FEATURES_NAME)
        try:
            feature_function = pickle.loads(payload)
        except Exception as error:
            raise SnapshotCorruptionError(
                f"checkpoint {directory} has an unreadable feature function: {error}"
            ) from error
    return LoadedCheckpoint(
        manifest=manifest, shard_states=shard_states, feature_function=feature_function
    )
