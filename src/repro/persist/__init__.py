"""Checkpoint & warm-restart subsystem.

The paper's observation that a classification view's state *is itself
relational data* — per-entity ε values, labels, and the water-band bounds of
Lemma 3.1 — means the whole serving state can be written out and read back
without re-featurizing or re-classifying a single entity.  This package holds
the pieces:

* :mod:`repro.persist.format` — the versioned, CRC-checked frame every
  snapshot file is wrapped in;
* :mod:`repro.persist.snapshot` — the exported state types and their JSON
  codecs (floats round-trip exactly, so restored reads are bit-identical);
* :mod:`repro.persist.checkpoint` — the checkpoint directory layout, with the
  manifest as the atomic commit point, and :func:`load_checkpoint`;
* :mod:`repro.persist.wal` — the append-only write-ahead log of diverted
  trigger ops, replayed on warm restart so queued-but-unpublished writes
  survive a crash.

The write side is driven by
:meth:`repro.serve.server.ViewServer.checkpoint` (per-shard concurrent
export under the *shared* side of the server's readers/writer lock, so
readers stay live); the warm-restart path is
``HazyEngine.serve(name, restore_from=path)``, which imports shard states and
replays only the base-table churn that happened after the checkpoint.
"""

from repro.persist.checkpoint import (
    FEATURES_NAME,
    MANIFEST_NAME,
    describe_checkpoint,
    load_checkpoint,
    shard_file_name,
    shard_file_sha,
    write_feature_function,
    write_manifest,
    write_shard_state,
)
from repro.persist.format import (
    FORMAT_VERSION,
    MAGIC,
    read_frame,
    read_json_frame,
    write_frame,
    write_json_frame,
)
from repro.persist.snapshot import (
    CheckpointManifest,
    LoadedCheckpoint,
    ShardState,
    row_content_hash,
)
from repro.persist.wal import WalRecord, WriteAheadLog

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "read_frame",
    "read_json_frame",
    "write_frame",
    "write_json_frame",
    "CheckpointManifest",
    "LoadedCheckpoint",
    "ShardState",
    "MANIFEST_NAME",
    "FEATURES_NAME",
    "shard_file_name",
    "shard_file_sha",
    "load_checkpoint",
    "describe_checkpoint",
    "write_shard_state",
    "write_manifest",
    "write_feature_function",
    "row_content_hash",
    "WalRecord",
    "WriteAheadLog",
]
