"""Write-ahead log for the diverted trigger-op stream.

The serving tier diverts base-table trigger firings into an in-memory
maintenance queue (``ViewServer._dispatch_trigger``); a crash between a
client's write returning and the next epoch publish would silently drop
those queued ops.  :class:`WriteAheadLog` closes that window the standard
ARIES way, applied to the view-maintenance stream instead of page writes:

* **log-before-enqueue** — the server appends each diverted op here (one
  CRC-framed JSON record, flushed) *before* handing it to the maintenance
  worker, so every acknowledged write is on disk;
* **rotation at publish** — when the worker publishes an epoch the current
  segment is closed and a fresh one started, so segments align with the
  publish boundary and pruning is whole-file unlink;
* **replay** — recovery reads every record with a sequence number above the
  checkpoint manifest's ``wal_applied_seq`` and re-enqueues it in arrival
  order.  Order matters beyond the answer set: SGD takes one gradient step
  per training example, so the model state is a function of example
  *arrival order*, which no base-table diff can reconstruct.

Crash tolerance follows the frame layer's contract
(:func:`repro.persist.format.scan_wal_records`): a torn tail in the *newest*
segment — the one a crash mid-append tears — is expected, and replay stops
at the last complete record; torn bytes anywhere else mean the log device
lied and raise :class:`~repro.exceptions.SnapshotCorruptionError`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.exceptions import SnapshotCorruptionError
from repro.linalg import SparseVector
from repro.persist.format import pack_wal_record, scan_wal_records, wal_header
from repro.persist.snapshot import decode_vector, encode_vector

__all__ = ["WalRecord", "WriteAheadLog", "SEGMENT_SUFFIX"]

SEGMENT_SUFFIX = ".hzl"
_SEGMENT_PREFIX = "wal-"


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:016d}{SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    return int(stem)


def _encode_row(row: object) -> object:
    """One op row as JSON: a table-row dict, a standalone (id, features) pair, or None."""
    if row is None:
        return None
    if isinstance(row, tuple):
        entity_id, features = row
        doc = encode_vector(features) if isinstance(features, SparseVector) else features
        return {"pair": [entity_id, doc]}
    return {"row": dict(row)}


def _decode_row(document: object) -> object:
    if document is None:
        return None
    if "pair" in document:
        entity_id, features = document["pair"]
        if isinstance(features, dict):
            features = decode_vector(features)
        return (entity_id, features)
    return dict(document["row"])


@dataclass(frozen=True)
class WalRecord:
    """One logged diverted op: sequence number, op kind, and the trigger rows."""

    seq: int
    kind: str
    row: object
    old_row: object

    def to_payload(self) -> bytes:
        document = {
            "seq": self.seq,
            "kind": self.kind,
            "row": _encode_row(self.row),
            "old_row": _encode_row(self.old_row),
        }
        return json.dumps(document, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes, path: Path) -> "WalRecord":
        try:
            document = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotCorruptionError(
                f"WAL segment {path} record passed its CRC but holds unparseable JSON: {error}"
            ) from error
        return cls(
            seq=int(document["seq"]),
            kind=str(document["kind"]),
            row=_decode_row(document.get("row")),
            old_row=_decode_row(document.get("old_row")),
        )


class WriteAheadLog:
    """Append-only, CRC-framed, segment-rotated log of diverted ops.

    Thread-safe: client sessions append concurrently while the maintenance
    worker rotates at publish and checkpoints prune — all serialized on one
    internal lock.  Appends flush before returning, so a record handed back
    with a sequence number has reached the OS's file layer.
    """

    #: Lock discipline (see repro.analysis passes): every mutable field
    #: below is read and written only while holding ``_lock``.
    _GUARDED_BY = {
        "_next_seq": "_lock",
        "_handle": "_lock",
        "_segment_path": "_lock",
        "_segment_records": "_lock",
        "_appends": "_lock",
        "_appended_bytes": "_lock",
        "_rotations": "_lock",
        "_pruned_segments": "_lock",
    }

    def __init__(self, directory: Path | str, fresh: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle: BinaryIO | None = None
        self._segment_path: Path | None = None
        self._segment_records = 0
        self._appends = 0
        self._appended_bytes = 0
        self._rotations = 0
        self._pruned_segments = 0
        if fresh:
            for path in self._segments():
                path.unlink()
            self._next_seq = 1
        else:
            last_seq = 0
            segments = self._segments()
            if segments:
                records, torn = self._read_segment(segments[-1])
                if torn:
                    # Repair the log tip: drop the torn tail the crash left
                    # so the segment reads clean once it is no longer the
                    # newest one.  Nothing before the tear is touched.
                    newest = segments[-1]
                    keep = newest.stat().st_size - torn
                    if keep < len(wal_header()):
                        newest.unlink()
                    else:
                        with open(newest, "r+b") as handle:
                            handle.truncate(keep)
                if records:
                    last_seq = records[-1].seq
                else:
                    # An empty or fully-torn newest segment still reserves
                    # its first sequence number: never reuse a seq that a
                    # torn record may have carried.
                    last_seq = _segment_first_seq(segments[-1])
            self._next_seq = last_seq + 1

    # -- write side -------------------------------------------------------

    def append(self, kind: str, row: object, old_row: object) -> int:
        """Log one diverted op; returns its sequence number after flushing."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            record = WalRecord(seq=seq, kind=kind, row=row, old_row=old_row)
            framed = pack_wal_record(record.to_payload())
            if self._handle is None:
                self._segment_path = self.directory / _segment_name(seq)
                self._handle = open(self._segment_path, "ab")
                if self._handle.tell() == 0:
                    self._handle.write(wal_header())
                self._segment_records = 0
            self._handle.write(framed)
            self._handle.flush()
            self._segment_records += 1
            self._appends += 1
            self._appended_bytes += len(framed)
            return seq

    def rotate(self) -> bool:
        """Close the current segment (if it holds records) so the next append
        opens a new one.  Called at epoch publish; returns True if rotated."""
        with self._lock:
            if self._handle is None or self._segment_records == 0:
                return False
            self._handle.close()
            self._handle = None
            self._segment_path = None
            self._segment_records = 0
            self._rotations += 1
            return True

    def prune(self, up_to_seq: int) -> int:
        """Unlink closed segments whose every record has seq <= ``up_to_seq``.

        Called after a checkpoint commits ``wal_applied_seq``: those records
        are durable in the snapshot and need never replay.  The active (or
        newest) segment is never unlinked.  Returns the number removed.
        """
        removed = 0
        with self._lock:
            segments = self._segments()
            for index, path in enumerate(segments):
                is_newest = index == len(segments) - 1
                if is_newest or path == self._segment_path:
                    continue
                # Every record in this segment precedes the next segment's
                # first sequence number, so the name comparison is exact.
                next_first = _segment_first_seq(segments[index + 1])
                if next_first - 1 <= up_to_seq:
                    path.unlink()
                    removed += 1
            self._pruned_segments += removed
        return removed

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._segment_path = None
                self._segment_records = 0

    # -- read side --------------------------------------------------------

    def records_after(self, seq: int) -> list[WalRecord]:
        """Every logged record with sequence number strictly above ``seq``,
        in arrival order, replaying through any torn tail on the newest
        segment (the crash shape) and raising on torn bytes anywhere else."""
        records: list[WalRecord] = []
        with self._lock:
            segments = self._segments()
            for index, path in enumerate(segments):
                is_newest = index == len(segments) - 1
                segment_records, torn = self._read_segment(path)
                if torn and not is_newest:
                    raise SnapshotCorruptionError(
                        f"WAL segment {path} holds {torn} torn trailing bytes but is "
                        "not the newest segment: only the segment being appended at "
                        "the crash may be torn"
                    )
                records.extend(record for record in segment_records if record.seq > seq)
        return records

    def stats(self) -> dict[str, object]:
        """Counters for the server's ``stats()``/``metrics()`` surfaces."""
        with self._lock:
            return {
                "appends_total": self._appends,
                "appended_bytes": self._appended_bytes,
                "rotations_total": self._rotations,
                "pruned_segments_total": self._pruned_segments,
                "segments": len(self._segments()),
                "next_seq": self._next_seq,
            }

    # -- internals --------------------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(
            (
                path
                for path in self.directory.glob(f"{_SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")
                if path.is_file()
            ),
            key=_segment_first_seq,
        )

    @staticmethod
    def _read_segment(path: Path) -> tuple[list[WalRecord], int]:
        raw = path.read_bytes()
        if len(raw) < len(wal_header()):
            # A crash during segment creation can leave a partial header;
            # the whole file is one torn tail with no complete records.
            return [], len(raw)
        payloads, torn = scan_wal_records(raw, path)
        return [WalRecord.from_payload(payload, path) for payload in payloads], torn
