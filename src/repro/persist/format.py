"""The on-disk snapshot frame: magic, version, length, CRC, payload.

Every file a checkpoint writes — the manifest, one file per shard, the
pickled feature function — is wrapped in the same self-describing frame::

    offset  size  field
    0       6     magic  b"HZSNAP"
    6       2     format version (big-endian u16)
    8       8     payload length in bytes (big-endian u64)
    16      4     CRC-32 of the payload (big-endian u32)
    20      n     payload bytes

The frame makes the two crash shapes recovery must survive cheap to detect:
a **truncated** file fails the length check (or the CRC if the tail of the
payload itself is cut), and a **torn or bit-flipped** payload fails the CRC.
Version skew between writer and reader raises
:class:`~repro.exceptions.SnapshotVersionError` before any payload is parsed.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

from repro.exceptions import SnapshotCorruptionError, SnapshotVersionError

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "WAL_MAGIC",
    "WAL_VERSION",
    "write_frame",
    "read_frame",
    "write_json_frame",
    "read_json_frame",
    "wal_header",
    "pack_wal_record",
    "scan_wal_records",
]

MAGIC = b"HZSNAP"
#: Bump on any incompatible change to the payload schemas in snapshot.py.
FORMAT_VERSION = 1

_HEADER = struct.Struct(">6sHQI")

WAL_MAGIC = b"HZWLOG"
#: Bump on any incompatible change to the WAL record payload schema in wal.py.
WAL_VERSION = 1

_WAL_HEADER = struct.Struct(">6sH")
_WAL_RECORD = struct.Struct(">II")


def write_frame(path: Path | str, payload: bytes, version: int = FORMAT_VERSION) -> int:
    """Write ``payload`` to ``path`` wrapped in a snapshot frame.

    The bytes land in a temporary sibling first and are moved into place with
    an atomic rename, so a crash mid-write leaves either the old file or no
    file — never a half-written frame under the final name.  Returns the total
    number of bytes written (header + payload).
    """
    path = Path(path)
    header = _HEADER.pack(MAGIC, version, len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(header + payload)
    temp.replace(path)
    return len(header) + len(payload)


def read_frame(path: Path | str, expected_version: int = FORMAT_VERSION) -> bytes:
    """Read and validate one frame; returns the payload bytes.

    Raises :class:`SnapshotCorruptionError` on a missing/short header, bad
    magic, truncated payload, or CRC mismatch, and
    :class:`SnapshotVersionError` when the frame was written by a different
    format version.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError as error:
        raise SnapshotCorruptionError(f"snapshot file {path} is missing") from error
    if len(raw) < _HEADER.size:
        raise SnapshotCorruptionError(
            f"snapshot file {path} is truncated: {len(raw)} bytes, "
            f"need at least {_HEADER.size} for the header"
        )
    magic, version, length, crc = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise SnapshotCorruptionError(f"snapshot file {path} has bad magic {magic!r}")
    if version != expected_version:
        raise SnapshotVersionError(
            f"snapshot file {path} is format version {version}, "
            f"this reader understands version {expected_version}"
        )
    payload = raw[_HEADER.size :]
    if len(payload) != length:
        raise SnapshotCorruptionError(
            f"snapshot file {path} is truncated: header promises {length} payload "
            f"bytes, found {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise SnapshotCorruptionError(f"snapshot file {path} failed its CRC check")
    return payload


def write_json_frame(path: Path | str, document: object, version: int = FORMAT_VERSION) -> int:
    """Serialize ``document`` as compact JSON and write it as one frame."""
    payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
    return write_frame(path, payload, version=version)


def read_json_frame(path: Path | str, expected_version: int = FORMAT_VERSION) -> object:
    """Read one frame and parse its payload as JSON."""
    payload = read_frame(path, expected_version=expected_version)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptionError(
            f"snapshot file {path} passed its CRC but holds unparseable JSON: {error}"
        ) from error


# --- WAL segment framing -------------------------------------------------
#
# A WAL segment is an *append-only* stream, so the whole-file frame above
# (one length+CRC covering everything) cannot apply: the writer never knows
# the final length.  Instead each segment opens with a fixed 8-byte header
# and every record carries its own length and CRC::
#
#     segment: WAL_MAGIC (6) | wal version (u16) | record*
#     record:  payload length (u32) | CRC-32 of payload (u32) | payload
#
# A crash mid-append leaves a *torn tail* — a final record whose length or
# CRC check fails.  :func:`scan_wal_records` reports the tail instead of
# raising so recovery can replay every complete record and stop, which is
# exactly the contract ARIES-style logging demands of the log device.


def wal_header(version: int = WAL_VERSION) -> bytes:
    """The fixed header that opens every WAL segment file."""
    return _WAL_HEADER.pack(WAL_MAGIC, version)


def pack_wal_record(payload: bytes) -> bytes:
    """Frame one WAL record: u32 length, u32 CRC-32, payload."""
    return _WAL_RECORD.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def scan_wal_records(
    raw: bytes, path: Path | str, expected_version: int = WAL_VERSION
) -> tuple[list[bytes], int]:
    """Walk one segment's bytes; return ``(payloads, torn_bytes)``.

    ``payloads`` holds every record that passed its length and CRC checks, in
    file order.  ``torn_bytes`` counts trailing bytes that do not form a
    complete valid record (0 for a cleanly closed segment).  A bad segment
    header — wrong magic or too short to hold one — raises
    :class:`SnapshotCorruptionError`, and version skew raises
    :class:`SnapshotVersionError`: neither is a crash shape append-only
    writing can produce, so neither is silently tolerated.
    """
    if len(raw) < _WAL_HEADER.size:
        raise SnapshotCorruptionError(
            f"WAL segment {path} is truncated: {len(raw)} bytes, "
            f"need at least {_WAL_HEADER.size} for the header"
        )
    magic, version = _WAL_HEADER.unpack_from(raw)
    if magic != WAL_MAGIC:
        raise SnapshotCorruptionError(f"WAL segment {path} has bad magic {magic!r}")
    if version != expected_version:
        raise SnapshotVersionError(
            f"WAL segment {path} is format version {version}, "
            f"this reader understands version {expected_version}"
        )
    payloads: list[bytes] = []
    offset = _WAL_HEADER.size
    while offset < len(raw):
        if offset + _WAL_RECORD.size > len(raw):
            break
        length, crc = _WAL_RECORD.unpack_from(raw, offset)
        start = offset + _WAL_RECORD.size
        end = start + length
        if end > len(raw):
            break
        payload = raw[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        payloads.append(payload)
        offset = end
    return payloads, len(raw) - offset
