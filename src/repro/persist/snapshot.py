"""In-memory snapshot state and its JSON codecs.

The layers below the serving subsystem export their state as plain Python
structures holding live objects (:class:`~repro.learn.model.LinearModel`,
:class:`~repro.linalg.SparseVector`); this module turns those into
JSON-serializable documents and back.  Floats round-trip exactly (``json``
emits shortest-round-trip ``repr`` forms), so a restored model answers reads
bit-identically to the one that was checkpointed.

Entity ids must be JSON-native scalars (str, int, float, bool) — the same
values the SQL substrate stores as keys.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.exceptions import SnapshotError
from repro.learn.model import LinearModel
from repro.learn.sgd import TrainingExample
from repro.linalg import SparseVector

__all__ = [
    "ShardState",
    "CheckpointManifest",
    "LoadedCheckpoint",
    "encode_model",
    "decode_model",
    "encode_vector",
    "decode_vector",
    "encode_records",
    "decode_records",
    "encode_examples",
    "decode_examples",
    "row_content_hash",
]


def row_content_hash(row: Mapping[str, object]) -> str:
    """A short, stable digest of one base-table row's content.

    Checkpoints store this per entity so warm-restart replay can detect
    content-only UPDATEs — rows whose id survived but whose feature columns
    changed — which an insert/delete diff is blind to.  The digest is over
    the canonical JSON form (sorted keys, compact separators); JSON emits
    shortest-round-trip floats, so equal SQL values hash equal across
    processes.
    """
    canonical = json.dumps(dict(row), sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()

_SCALAR_TYPES = (str, int, float, bool)


def _check_id(entity_id: object) -> object:
    if entity_id is not None and not isinstance(entity_id, _SCALAR_TYPES):
        raise SnapshotError(
            f"entity id {entity_id!r} of type {type(entity_id).__name__} cannot be "
            "snapshotted: ids must be JSON-native scalars"
        )
    return entity_id


def encode_vector(vector: SparseVector) -> dict[str, float]:
    """A sparse vector as ``{index: value}`` with stringified keys."""
    return {str(index): value for index, value in vector.items()}


def decode_vector(document: dict[str, float]) -> SparseVector:
    vector = SparseVector()
    for index, value in document.items():
        vector[int(index)] = float(value)
    return vector


def encode_model(model: LinearModel) -> dict[str, object]:
    """A linear model as ``{weights, bias, version}``."""
    return {
        "weights": encode_vector(model.weights),
        "bias": model.bias,
        "version": model.version,
    }


def decode_model(document: dict[str, object]) -> LinearModel:
    return LinearModel(
        weights=decode_vector(document["weights"]),
        bias=float(document["bias"]),
        version=int(document["version"]),
    )


def encode_records(records: list[tuple[object, SparseVector, float, int]]) -> list[list]:
    """Entity records as ``[id, features, eps, label]`` rows (clustering order)."""
    return [
        [_check_id(entity_id), encode_vector(features), eps, label]
        for entity_id, features, eps, label in records
    ]


def decode_records(rows: list[list]) -> list[tuple[object, SparseVector, float, int]]:
    return [
        (entity_id, decode_vector(features), float(eps), int(label))
        for entity_id, features, eps, label in rows
    ]


def encode_examples(examples: list[TrainingExample]) -> list[list]:
    """Retained training examples as ``[id, features, label]`` rows."""
    return [
        [_check_id(example.entity_id), encode_vector(example.features), example.label]
        for example in examples
    ]


def decode_examples(rows: list[list]) -> list[TrainingExample]:
    return [
        TrainingExample(entity_id=entity_id, features=decode_vector(features), label=int(label))
        for entity_id, features, label in rows
    ]


@dataclass
class ShardState:
    """One shard's exported state, as produced by ``ViewMaintainer.export_state``.

    ``records`` carry the eps each entity was stored under *on that shard* —
    shards reorganize independently, so eps values are only comparable within
    a shard, which is why restore preserves the snapshot's shard assignment.
    """

    index: int
    strategy: str
    approach: str
    records: list[tuple[object, SparseVector, float, int]]
    current_model: LinearModel
    max_feature_norm: float = 0.0
    #: Hazy-only: the stored model the shard is clustered under and the
    #: cumulative water band accumulated since its last reorganization.
    stored_model: LinearModel | None = None
    band_low: float = 0.0
    band_high: float = 0.0
    #: Hazy-only: Skiing accounting so the reorganization rhythm resumes
    #: mid-stream instead of restarting from the bulk-load estimate.
    skiing: dict[str, float] | None = None
    #: Bytes of the frame this state was read from (restore charges its
    #: sequential read against the shard's ledger); 0 when freshly exported.
    payload_bytes: int = 0
    #: ``[entity_id, content_hash]`` pairs (see :func:`row_content_hash`) for
    #: this shard's entities, captured from the base table at checkpoint
    #: time.  None for standalone servers (no base table) and for snapshots
    #: written before hashes existed; replay then falls back to the
    #: insert/delete-only diff.
    row_hashes: list[list[object]] | None = None

    def to_document(self) -> dict[str, object]:
        document: dict[str, object] = {
            "index": self.index,
            "strategy": self.strategy,
            "approach": self.approach,
            "records": encode_records(self.records),
            "current_model": encode_model(self.current_model),
            "max_feature_norm": self.max_feature_norm,
            "band_low": self.band_low,
            "band_high": self.band_high,
            "skiing": self.skiing,
        }
        if self.stored_model is not None:
            document["stored_model"] = encode_model(self.stored_model)
        if self.row_hashes is not None:
            document["row_hashes"] = [[_check_id(i), h] for i, h in self.row_hashes]
        return document

    @classmethod
    def from_document(cls, document: dict[str, object], payload_bytes: int = 0) -> "ShardState":
        stored = document.get("stored_model")
        return cls(
            index=int(document["index"]),
            strategy=str(document["strategy"]),
            approach=str(document["approach"]),
            records=decode_records(document["records"]),
            current_model=decode_model(document["current_model"]),
            max_feature_norm=float(document["max_feature_norm"]),
            stored_model=decode_model(stored) if stored is not None else None,
            band_low=float(document["band_low"]),
            band_high=float(document["band_high"]),
            skiing=document.get("skiing"),
            payload_bytes=payload_bytes,
            row_hashes=document.get("row_hashes"),
        )


@dataclass
class CheckpointManifest:
    """The checkpoint's commit record: global state plus the shard directory.

    Written last (atomically): a checkpoint without a readable manifest is
    treated as absent, so a crash mid-checkpoint can never produce a
    half-restorable state.
    """

    view_name: str | None
    epoch: int
    model: LinearModel
    trainer_steps: int
    num_shards: int
    shard_files: list[str]
    examples: list[TrainingExample] = field(default_factory=list)
    architecture: str | None = None
    strategy: str | None = None
    approach: str | None = None
    #: The ``CREATE CLASSIFICATION VIEW`` definition as a plain dict, when the
    #: checkpointed server was attached to an engine view (None standalone).
    definition: dict[str, object] | None = None
    positive_label: object = None
    has_feature_function: bool = False
    #: The highest WAL sequence number whose op is reflected in this
    #: snapshot; recovery replays only records above it.  0 when the server
    #: ran without a WAL.
    wal_applied_seq: int = 0
    #: Per-shard epoch of last change, captured at checkpoint time; the
    #: basis for incremental checkpoints (a shard whose epoch did not move
    #: past the parent's is not rewritten).  None on older snapshots.
    shard_epochs: list[int] | None = None
    #: Per-shard content digest of the shard *file* bytes, so an
    #: incremental child can reference a parent shard by path and later
    #: verify it was not rewritten underneath.  None on older snapshots.
    shard_shas: list[str] | None = None
    #: Per-shard source path for shards this (incremental) checkpoint did
    #: not rewrite: an absolute path into the parent checkpoint (chains are
    #: flattened at write time, so a source never points at another
    #: incremental reference).  None entries mean "this directory".
    shard_sources: list[str | None] | None = None
    #: Per-shard record counts, so describing an incremental checkpoint
    #: does not need to open parent shard files.
    shard_entities: list[int] | None = None
    #: The parent checkpoint path when this one was written incrementally.
    parent: str | None = None

    def to_document(self) -> dict[str, object]:
        return {
            "view_name": self.view_name,
            "epoch": self.epoch,
            "model": encode_model(self.model),
            "trainer_steps": self.trainer_steps,
            "num_shards": self.num_shards,
            "shard_files": list(self.shard_files),
            "examples": encode_examples(self.examples),
            "architecture": self.architecture,
            "strategy": self.strategy,
            "approach": self.approach,
            "definition": self.definition,
            "positive_label": self.positive_label,
            "has_feature_function": self.has_feature_function,
            "wal_applied_seq": self.wal_applied_seq,
            "shard_epochs": self.shard_epochs,
            "shard_shas": self.shard_shas,
            "shard_sources": self.shard_sources,
            "shard_entities": self.shard_entities,
            "parent": self.parent,
        }

    @classmethod
    def from_document(cls, document: dict[str, object]) -> "CheckpointManifest":
        return cls(
            view_name=document.get("view_name"),
            epoch=int(document["epoch"]),
            model=decode_model(document["model"]),
            trainer_steps=int(document["trainer_steps"]),
            num_shards=int(document["num_shards"]),
            shard_files=list(document["shard_files"]),
            examples=decode_examples(document.get("examples", [])),
            architecture=document.get("architecture"),
            strategy=document.get("strategy"),
            approach=document.get("approach"),
            definition=document.get("definition"),
            positive_label=document.get("positive_label"),
            has_feature_function=bool(document.get("has_feature_function", False)),
            wal_applied_seq=int(document.get("wal_applied_seq", 0)),
            shard_epochs=document.get("shard_epochs"),
            shard_shas=document.get("shard_shas"),
            shard_sources=document.get("shard_sources"),
            shard_entities=document.get("shard_entities"),
            parent=document.get("parent"),
        )


@dataclass
class LoadedCheckpoint:
    """Everything :func:`~repro.persist.checkpoint.load_checkpoint` read back."""

    manifest: CheckpointManifest
    shard_states: list[ShardState]
    feature_function: object | None = None

    @property
    def entity_ids(self) -> set[object]:
        """Every entity id present in the snapshot, across all shards."""
        ids: set[object] = set()
        for state in self.shard_states:
            ids.update(entity_id for entity_id, _, _, _ in state.records)
        return ids
