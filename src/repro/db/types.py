"""Column data types and value coercion for the relational substrate."""

from __future__ import annotations

import enum

from repro.exceptions import SchemaError
from repro.linalg import SparseVector

__all__ = ["DataType", "coerce_value", "estimate_value_size"]


class DataType(enum.Enum):
    """The column types the substrate supports.

    ``VECTOR`` holds a sparse feature vector — PostgreSQL-Hazy stores these as
    a user-defined type; here they are first-class column values.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    VECTOR = "vector"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Resolve a SQL type name (``int``, ``double``, ``varchar`` ...)."""
        key = name.strip().lower()
        aliases = {
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "serial": cls.INTEGER,
            "float": cls.FLOAT,
            "double": cls.FLOAT,
            "real": cls.FLOAT,
            "numeric": cls.FLOAT,
            "text": cls.TEXT,
            "varchar": cls.TEXT,
            "char": cls.TEXT,
            "string": cls.TEXT,
            "bool": cls.BOOLEAN,
            "boolean": cls.BOOLEAN,
            "vector": cls.VECTOR,
            "feature_vector": cls.VECTOR,
        }
        if key not in aliases:
            raise SchemaError(f"unknown SQL type {name!r}")
        return aliases[key]


def coerce_value(value: object, data_type: DataType, column_name: str = "?") -> object:
    """Coerce ``value`` to the python representation of ``data_type``.

    ``None`` passes through for every type (NULL).  Raises
    :class:`~repro.exceptions.SchemaError` when the value cannot represent the
    declared type.
    """
    if value is None:
        return None
    try:
        if data_type is DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise SchemaError(
                    f"column {column_name!r}: cannot store non-integral {value!r} as INTEGER"
                )
            return int(value)
        if data_type is DataType.FLOAT:
            return float(value)
        if data_type is DataType.TEXT:
            return str(value)
        if data_type is DataType.BOOLEAN:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
                raise SchemaError(f"column {column_name!r}: invalid boolean literal {value!r}")
            return bool(value)
        if data_type is DataType.VECTOR:
            if isinstance(value, SparseVector):
                return value
            if isinstance(value, dict):
                return SparseVector(value)
            raise SchemaError(
                f"column {column_name!r}: expected a SparseVector, got {type(value).__name__}"
            )
    except (TypeError, ValueError) as exc:
        raise SchemaError(
            f"column {column_name!r}: cannot coerce {value!r} to {data_type.value}"
        ) from exc
    raise SchemaError(f"unhandled data type {data_type!r}")  # pragma: no cover


def estimate_value_size(value: object) -> int:
    """Approximate on-disk size in bytes, used for page capacity accounting."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace")) + 4
    if isinstance(value, SparseVector):
        return value.approx_size_bytes()
    return 16
