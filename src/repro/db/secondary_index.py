"""Secondary B+-tree indexes on base-table columns (``CREATE INDEX``).

A :class:`SecondaryIndex` maps one or more columns' values to the heap record
ids of the rows carrying them, backed by the same
:class:`~repro.db.btree.BPlusTree` that clusters the scratch table on ``eps``.
Single-column indexes store the raw column value as the tree key; composite
indexes (``CREATE INDEX idx ON t (a, b)``) store the tuple of column values,
compared lexicographically, which gives the planner the classic
leftmost-prefix rule: equality conjuncts on leading columns plus at most one
range on the next column become a contiguous key range.  The table maintains
its indexes inline on every INSERT/UPDATE/DELETE, so an index scan is always
exactly as fresh as a heap scan; the planner prices the access paths against
each other and the :class:`~repro.db.sql.plan.SecondaryIndexRange` node is
what an index win executes.

NULL values are **not** indexed (as in most engines), and a composite entry is
skipped when *any* key component is NULL: a predicate never selects such rows
through a B+-tree, and the residual ``Filter`` the planner keeps above every
access path re-checks the original conjuncts anyway.  The ``covers_all_rows``
probe tells order-sensitive consumers (index-ordered ``ORDER BY ... LIMIT k``)
and covering scans whether the index saw every live row.

Cost accounting follows the house convention: *actual* charges are CPU-style
(``tuple_cpu`` per descent level and per visited entry, tagged
``index_read``/``index_write``/``index_build`` in the ledger detail); the heap
fetch for each matching rid goes through the buffer pool and prices its own
pages — unless the scan is *covering*, in which case the caller rebuilds rows
from the keys this scan yields and no heap page is ever touched.  *Estimates*
(``estimate_matches`` / ``estimate_prefix_matches``) are pure statistics —
entry count, distinct keys, min/max interpolation — so planning never touches
data.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.db.btree import BPlusTree
from repro.db.buffer_pool import BufferPool
from repro.db.page import RecordId

__all__ = ["SecondaryIndex"]

#: Selectivity assumed for a range whose bounds are unknown at plan time
#: (placeholder parameters) or not interpolatable (non-numeric keys).
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


class _Top:
    """Compares greater than every column value.

    Appending this sentinel to a key prefix produces an upper bound that
    admits every tuple key extending the prefix while excluding the next
    prefix, so prefix scans need no knowledge of the column's value domain.
    """

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return False

    def __le__(self, other: object) -> bool:
        return other is self

    def __gt__(self, other: object) -> bool:
        return other is not self

    def __ge__(self, other: object) -> bool:
        return True

    def __repr__(self) -> str:
        return "<top>"


_TOP = _Top()


class SecondaryIndex:
    """A named B+-tree over one or more columns: key -> record ids (dups allowed)."""

    def __init__(
        self,
        name: str,
        columns: str | Sequence[str],
        pool: BufferPool,
        order: int = 64,
    ):
        self.name = name
        if isinstance(columns, str):
            columns = (columns,)
        self.columns: tuple[str, ...] = tuple(columns)
        if not self.columns:
            raise ValueError("secondary index needs at least one column")
        self.pool = pool
        self.tree = BPlusTree(order=order, coerce=None)

    @property
    def column(self) -> str:
        """Leading key column (the whole key for single-column indexes)."""
        return self.columns[0]

    @property
    def is_composite(self) -> bool:
        return len(self.columns) > 1

    def __len__(self) -> int:
        return len(self.tree)

    @property
    def distinct_keys(self) -> int:
        """Distinct indexed keys (the equality-selectivity denominator)."""
        return self.tree.distinct_keys

    @property
    def height(self) -> int:
        """Tree height (priced per level on every probe)."""
        return self.tree.height

    # -- maintenance (called by Table on every write) -----------------------------------

    @staticmethod
    def _indexable(value: object) -> bool:
        """NULLs and non-self-equal values (NaN) are never indexed: a NaN key
        could never be found again by the tree's bisect lookups (``NaN != NaN``),
        so it would become an undeletable ghost and poison the min/max stats.
        Unindexed rows stay scan-equivalent — no predicate matches NaN either,
        and ``covers_all_rows`` turning False keeps ordered reads on the
        fallback path."""
        return value is not None and value == value

    def key_of(self, row: dict) -> object | None:
        """The tree key for ``row``, or None when the row is unindexable.

        Single-column indexes key on the raw value; composite indexes key on
        the tuple of values.  Any NULL/NaN component makes the whole row
        unindexable (so ``covers_all_rows`` keeps its meaning for tuples).
        """
        if len(self.columns) == 1:
            value = row.get(self.columns[0])
            return value if self._indexable(value) else None
        parts = tuple(row.get(column) for column in self.columns)
        if all(self._indexable(part) for part in parts):
            return parts
        return None

    @staticmethod
    def _same_key(old: object, new: object) -> bool:
        if type(old) is not type(new):
            return False
        if isinstance(old, tuple):
            return len(old) == len(new) and all(
                a == b and type(a) is type(b) for a, b in zip(old, new)
            )
        return old == new

    def insert(self, row: dict, rid: RecordId) -> None:
        """Index ``row -> rid``; rows with NULL/NaN key components are skipped."""
        key = self.key_of(row)
        if key is None:
            return
        self.tree.insert(key, rid)
        self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "index_write")

    def delete(self, row: dict, rid: RecordId) -> None:
        """Drop one ``row -> rid`` entry (no-op for unindexable / absent entries)."""
        key = self.key_of(row)
        if key is None:
            return
        self.tree.delete(key, rid)
        self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "index_write")

    def replace(self, old_row: dict, new_row: dict, rid: RecordId) -> None:
        """Re-key ``rid`` after an UPDATE changed some indexed column."""
        old_key, new_key = self.key_of(old_row), self.key_of(new_row)
        if old_key is not None and new_key is not None and self._same_key(old_key, new_key):
            return
        if old_key is not None:
            self.tree.delete(old_key, rid)
            self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "index_write")
        if new_key is not None:
            self.tree.insert(new_key, rid)
            self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "index_write")

    def clear(self) -> None:
        """Drop every entry (table truncation)."""
        self.tree.clear()

    # -- probes --------------------------------------------------------------------------

    def covers_all_rows(self, live_rows: int) -> bool:
        """Whether every live row is indexed (False when key columns have NULLs)."""
        return len(self.tree) == live_rows

    def _tree_bounds(
        self,
        low: object | None,
        high: object | None,
        equalities: tuple,
    ) -> tuple[object | None, object | None]:
        """Full tree-key bounds for an equality prefix plus a range on the
        next column.  A shorter tuple is already an inclusive lower bound for
        every extension; the upper bound appends :data:`_TOP` so every
        extension of the bounded prefix stays in range."""
        if len(self.columns) == 1:
            return low, high
        tree_low: object | None = equalities + ((low,) if low is not None else ())
        if not tree_low:
            tree_low = None
        if high is not None:
            tree_high: object | None = equalities + (high, _TOP)
        elif equalities:
            tree_high = equalities + (_TOP,)
        else:
            tree_high = None
        return tree_low, tree_high

    def scan(
        self,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
        equalities: Sequence[object] = (),
        reverse: bool = False,
        with_keys: bool = False,
    ) -> Iterator[RecordId] | Iterator[tuple[object, RecordId]]:
        """Record ids (or ``(key, rid)`` pairs) matching the probe, in key order.

        ``equalities`` pins the leading key columns (composite indexes only);
        ``low``/``high`` bound the next key column, ``None`` meaning unbounded
        on that side.  Strict bounds drop the equal key while walking the
        (inclusive) leaf chain.  ``reverse=True`` walks the leaf back-chain so
        descending consumers can early-exit; ``with_keys=True`` additionally
        yields the tree key, which is how covering scans rebuild rows without
        touching the heap.  Each visited entry and each descent level charges
        ``tuple_cpu`` to the ledger.
        """
        equalities = tuple(equalities)
        if equalities and len(self.columns) == 1:
            raise ValueError("equality prefix requires a composite index")
        charge = self.pool.stats.charge
        tuple_cpu = self.pool.cost_model.tuple_cpu
        charge(self.tree.height * tuple_cpu, "index_read")
        tree_low, tree_high = self._tree_bounds(low, high, equalities)
        entries = (
            self.tree.range_scan_reversed(tree_low, tree_high)
            if reverse
            else self.tree.range_scan(tree_low, tree_high)
        )
        position = len(equalities)
        for key, rid in entries:
            charge(tuple_cpu, "index_read")
            part = key if len(self.columns) == 1 else key[position]
            if not include_low and low is not None and part == low:
                continue
            if not include_high and high is not None and part == high:
                continue
            yield (key, rid) if with_keys else rid

    # -- statistics for the planner -------------------------------------------------------

    @staticmethod
    def _numeric(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def estimate_matches(
        self,
        low: object | None = None,
        high: object | None = None,
        equality: bool = False,
        bounds_known: bool = True,
    ) -> float:
        """Estimated matching entries for a single-column ``[low, high]`` probe.

        Pure statistics — no data access.  Equality probes use the classic
        ``n / distinct`` estimator; ranges with known numeric bounds
        interpolate uniformly between the tree's min and max keys; unknown
        (``?``-parameterized) or non-numeric bounds fall back to
        :data:`DEFAULT_RANGE_SELECTIVITY`.
        """
        n = len(self.tree)
        if n == 0:
            return 0.0
        if equality:
            return n / max(1, self.tree.distinct_keys)
        if not bounds_known:
            return n * DEFAULT_RANGE_SELECTIVITY
        min_key, max_key = self.tree.min_key(), self.tree.max_key()
        if not (self._numeric(min_key) and self._numeric(max_key)):
            return n * DEFAULT_RANGE_SELECTIVITY
        span = max_key - min_key
        lo = min_key if low is None else low
        hi = max_key if high is None else high
        if not (self._numeric(lo) and self._numeric(hi)):
            return n * DEFAULT_RANGE_SELECTIVITY
        if span <= 0:
            return float(n) if lo <= min_key <= hi else 0.0
        covered = min(hi, max_key) - max(lo, min_key)
        if covered < 0:
            return 0.0
        return n * min(1.0, covered / span)

    def estimate_prefix_matches(
        self,
        eq_count: int,
        has_range: bool,
        low: object | None = None,
        high: object | None = None,
        bounds_known: bool = True,
    ) -> float:
        """Estimated matches for an equality prefix of ``eq_count`` leading
        columns plus an optional range on the next one.

        Single-column probes delegate to :meth:`estimate_matches` so their
        estimates are unchanged.  Composite probes assume independent columns:
        the full-tuple distinct count spreads evenly across the key columns,
        so each leading equality divides by ``distinct ** (1/ncols)`` (which
        degenerates to the classic ``n / distinct`` when the whole key is
        pinned), and a trailing range multiplies by
        :data:`DEFAULT_RANGE_SELECTIVITY` (tuple min/max keys do not
        interpolate).
        """
        n = len(self.tree)
        if n == 0:
            return 0.0
        ncols = len(self.columns)
        if ncols == 1:
            if eq_count:
                return self.estimate_matches(equality=True)
            return self.estimate_matches(low, high, equality=False, bounds_known=bounds_known)
        if eq_count >= ncols:
            return n / max(1, self.tree.distinct_keys)
        estimate = float(n)
        if eq_count:
            per_column = max(1.0, self.tree.distinct_keys ** (1.0 / ncols))
            estimate /= per_column**eq_count
        if has_range:
            estimate *= DEFAULT_RANGE_SELECTIVITY
        return min(estimate, float(n))

    def __repr__(self) -> str:
        columns = ", ".join(repr(column) for column in self.columns)
        return (
            f"SecondaryIndex({self.name!r} ON ({columns}), "
            f"entries={len(self.tree)}, distinct={self.tree.distinct_keys})"
        )
