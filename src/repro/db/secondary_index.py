"""Secondary B+-tree indexes on base-table columns (``CREATE INDEX``).

A :class:`SecondaryIndex` maps one column's values to the heap record ids of
the rows carrying them, backed by the same :class:`~repro.db.btree.BPlusTree`
that clusters the scratch table on ``eps``.  The table maintains its indexes
inline on every INSERT/UPDATE/DELETE, so an index scan is always exactly as
fresh as a heap scan; the planner prices the two against each other and the
:class:`~repro.db.sql.plan.SecondaryIndexRange` node is what an index win
executes.

NULL values are **not** indexed (as in most engines): a predicate never
selects them through a B+-tree, and the residual ``Filter`` the planner keeps
above every access path re-checks the original conjuncts anyway.  The
``covers_all_rows`` probe tells order-sensitive consumers (index-ordered
``ORDER BY ... LIMIT k``) whether the index saw every live row.

Cost accounting follows the house convention: *actual* charges are CPU-style
(``tuple_cpu`` per descent level and per visited entry, tagged
``index_read``/``index_write``/``index_build`` in the ledger detail); the heap
fetch for each matching rid goes through the buffer pool and prices its own
pages.  *Estimates* (``estimate_matches``) are pure statistics — entry count,
distinct keys, min/max interpolation — so planning never touches data.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.db.btree import BPlusTree
from repro.db.buffer_pool import BufferPool
from repro.db.page import RecordId

__all__ = ["SecondaryIndex"]

#: Selectivity assumed for a range whose bounds are unknown at plan time
#: (placeholder parameters) or not interpolatable (non-numeric keys).
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


class SecondaryIndex:
    """A named B+-tree over one column: value -> record ids (duplicates allowed)."""

    def __init__(self, name: str, column: str, pool: BufferPool, order: int = 64):
        self.name = name
        self.column = column
        self.pool = pool
        self.tree = BPlusTree(order=order, coerce=None)

    def __len__(self) -> int:
        return len(self.tree)

    @property
    def distinct_keys(self) -> int:
        """Distinct indexed values (the equality-selectivity denominator)."""
        return self.tree.distinct_keys

    @property
    def height(self) -> int:
        """Tree height (priced per level on every probe)."""
        return self.tree.height

    # -- maintenance (called by Table on every write) -----------------------------------

    @staticmethod
    def _indexable(value: object) -> bool:
        """NULLs and non-self-equal values (NaN) are never indexed: a NaN key
        could never be found again by the tree's bisect lookups (``NaN != NaN``),
        so it would become an undeletable ghost and poison the min/max stats.
        Unindexed rows stay scan-equivalent — no predicate matches NaN either,
        and ``covers_all_rows`` turning False keeps ordered reads on the
        fallback path."""
        return value is not None and value == value

    def insert(self, value: object, rid: RecordId) -> None:
        """Index ``value -> rid``; NULL and NaN are skipped."""
        if not self._indexable(value):
            return
        self.tree.insert(value, rid)
        self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "index_write")

    def delete(self, value: object, rid: RecordId) -> None:
        """Drop one ``value -> rid`` entry (no-op for NULL/NaN / absent entries)."""
        if not self._indexable(value):
            return
        self.tree.delete(value, rid)
        self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "index_write")

    def replace(self, old_value: object, new_value: object, rid: RecordId) -> None:
        """Re-key ``rid`` after an UPDATE changed the indexed column."""
        if old_value == new_value and type(old_value) is type(new_value):
            return
        self.delete(old_value, rid)
        self.insert(new_value, rid)

    def clear(self) -> None:
        """Drop every entry (table truncation)."""
        self.tree.clear()

    # -- probes --------------------------------------------------------------------------

    def covers_all_rows(self, live_rows: int) -> bool:
        """Whether every live row is indexed (False when the column has NULLs)."""
        return len(self.tree) == live_rows

    def scan(
        self,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[RecordId]:
        """Record ids with ``low <op> key <op> high`` in key order.

        ``None`` bounds are unbounded on that side; strict bounds drop the
        equal key while walking the (inclusive) leaf chain.  Each visited
        entry and each descent level charges ``tuple_cpu`` to the ledger.
        """
        charge = self.pool.stats.charge
        tuple_cpu = self.pool.cost_model.tuple_cpu
        charge(self.tree.height * tuple_cpu, "index_read")
        for key, rid in self.tree.range_scan(low, high):
            charge(tuple_cpu, "index_read")
            if not include_low and low is not None and key == low:
                continue
            if not include_high and high is not None and key == high:
                continue
            yield rid

    # -- statistics for the planner -------------------------------------------------------

    @staticmethod
    def _numeric(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def estimate_matches(
        self,
        low: object | None = None,
        high: object | None = None,
        equality: bool = False,
        bounds_known: bool = True,
    ) -> float:
        """Estimated matching entries for a ``[low, high]`` probe.

        Pure statistics — no data access.  Equality probes use the classic
        ``n / distinct`` estimator; ranges with known numeric bounds
        interpolate uniformly between the tree's min and max keys; unknown
        (``?``-parameterized) or non-numeric bounds fall back to
        :data:`DEFAULT_RANGE_SELECTIVITY`.
        """
        n = len(self.tree)
        if n == 0:
            return 0.0
        if equality:
            return n / max(1, self.tree.distinct_keys)
        if not bounds_known:
            return n * DEFAULT_RANGE_SELECTIVITY
        min_key, max_key = self.tree.min_key(), self.tree.max_key()
        if not (self._numeric(min_key) and self._numeric(max_key)):
            return n * DEFAULT_RANGE_SELECTIVITY
        span = max_key - min_key
        lo = min_key if low is None else low
        hi = max_key if high is None else high
        if not (self._numeric(lo) and self._numeric(hi)):
            return n * DEFAULT_RANGE_SELECTIVITY
        if span <= 0:
            return float(n) if lo <= min_key <= hi else 0.0
        covered = min(hi, max_key) - max(lo, min_key)
        if covered < 0:
            return 0.0
        return n * min(1.0, covered / span)

    def __repr__(self) -> str:
        return (
            f"SecondaryIndex({self.name!r} ON {self.column!r}, "
            f"entries={len(self.tree)}, distinct={self.tree.distinct_keys})"
        )
