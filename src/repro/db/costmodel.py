"""Deterministic cost model for the simulated storage hierarchy.

The paper's experiments run on a 2.4 GHz Core2 with two SATA disks; absolute
seconds are not reproducible here, so every storage operation charges a
deterministic cost (in *simulated seconds*) instead.  The defaults encode the
classic ratios that drive the paper's results: a random page read costs about
four orders of magnitude more than touching a tuple in memory, sequential
reads are ~10x cheaper than random ones, and sorting is asymptotically more
expensive than scanning (which is what makes ``sigma -> 0`` as data grows,
Theorem 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation simulated costs, all in seconds.

    Attributes
    ----------
    random_page_read / random_page_write:
        Cost of fetching / flushing one page with a random access pattern
        (~5 ms, a SATA-era seek + rotation).
    sequential_page_read / sequential_page_write:
        Cost per page when access is sequential (~0.5 ms per 8 KB page at
        ~160 MB/s sequential bandwidth).
    tuple_cpu:
        CPU cost of touching one tuple in memory (classification dot product
        excluded — that is charged separately per non-zero).
    dot_product_per_nonzero:
        CPU cost per non-zero component of a feature vector when computing
        ``w . f``.
    sort_per_tuple_factor:
        Reorganization sorts the scratch table; its CPU cost is
        ``sort_per_tuple_factor * n * log2(n)``.
    featurize_per_nonzero:
        CPU cost per produced non-zero of featurizing one entity tuple
        (tokenizing, hashing and normalizing a document costs far more per
        term than the dot product that later consumes it).  Charged on cold
        bulk loads and entity inserts; warm restarts import pre-featurized
        state and skip it, which is most of their win.
    model_update:
        Cost of one incremental training step (the paper reports "roughly on
        the order of 100 microseconds" for retraining the model, §2.2).
    statement_overhead:
        Per-statement RDBMS overhead for point queries (parsing, planning,
        trigger dispatch); this is what bounds the main-memory Single Entity
        read rate at ~14k reads/s as in Figure 5.
    row_interpret_cpu:
        Per-tuple *interpretation* overhead of row-at-a-time operator
        execution — the virtual dispatch, per-row branching and per-value
        boxing a Volcano-style iterator pays on every tuple at every
        operator.  Charged only when a database runs in the explicit
        ``"row"`` execution mode; the default batched/columnar mode
        amortizes this dispatch over whole chunks, which is exactly the
        vectorized-execution argument (MonetDB/X100) and is modeled as zero
        extra cost per tuple.
    """

    random_page_read: float = 5e-3
    random_page_write: float = 5e-3
    sequential_page_read: float = 5e-4
    sequential_page_write: float = 5e-4
    tuple_cpu: float = 2e-7
    dot_product_per_nonzero: float = 1e-8
    featurize_per_nonzero: float = 5e-7
    sort_per_tuple_factor: float = 4e-7
    model_update: float = 1e-4
    statement_overhead: float = 7e-5
    row_interpret_cpu: float = 6e-7
    page_size_bytes: int = 8192
    extra: dict[str, float] = field(default_factory=dict)

    def sort_cost(self, tuple_count: int) -> float:
        """CPU cost of sorting ``tuple_count`` tuples (n log n)."""
        if tuple_count <= 1:
            return self.sort_per_tuple_factor
        import math

        return self.sort_per_tuple_factor * tuple_count * math.log2(tuple_count)

    def scan_cost(self, page_count: int, tuple_count: int) -> float:
        """Cost of a sequential scan over ``page_count`` pages / ``tuple_count`` tuples."""
        return page_count * self.sequential_page_read + tuple_count * self.tuple_cpu

    def dot_product_cost(self, nonzeros: int) -> float:
        """CPU cost of one ``w . f`` with ``nonzeros`` non-zero components."""
        return max(1, nonzeros) * self.dot_product_per_nonzero

    def featurize_cost(self, nonzeros: int) -> float:
        """CPU cost of featurizing one entity tuple into ``nonzeros`` components."""
        return max(1, nonzeros) * self.featurize_per_nonzero

    @classmethod
    def main_memory(cls) -> "CostModel":
        """A cost model with no I/O penalty — models the Hazy-MM architecture."""
        return cls(
            random_page_read=0.0,
            random_page_write=0.0,
            sequential_page_read=0.0,
            sequential_page_write=0.0,
        )
