"""Slotted pages: the unit of simulated disk I/O.

A page stores row payloads in slots.  Rows are identified by a record id
(``RecordId``): the pair (page id, slot number).  Deleting a row leaves a
tombstone so record ids of other rows stay stable; compaction happens when the
heap file is rewritten (e.g. on a Hazy reorganization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PageError

__all__ = ["RecordId", "Page"]


@dataclass(frozen=True, order=True)
class RecordId:
    """Physical address of a row: page id and slot index within the page."""

    page_id: int
    slot: int


class Page:
    """A fixed-capacity slotted page holding row dictionaries.

    Capacity is tracked in *approximate bytes* supplied by the caller (the
    table schema knows how to size a row); the page itself never inspects row
    contents.
    """

    __slots__ = ("page_id", "capacity_bytes", "used_bytes", "_slots", "_sizes", "dirty")

    def __init__(self, page_id: int, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise PageError("page capacity must be positive")
        self.page_id = page_id
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._slots: list[dict[str, object] | None] = []
        self._sizes: list[int] = []
        self.dirty = False

    # -- capacity -------------------------------------------------------------

    def free_bytes(self) -> int:
        """Remaining capacity in bytes."""
        return self.capacity_bytes - self.used_bytes

    def fits(self, row_size: int) -> bool:
        """Whether a row of ``row_size`` bytes fits on this page."""
        return row_size <= self.free_bytes()

    def live_row_count(self) -> int:
        """Number of non-deleted rows on the page."""
        return sum(1 for slot in self._slots if slot is not None)

    def slot_count(self) -> int:
        """Number of allocated slots, including tombstones."""
        return len(self._slots)

    # -- row operations --------------------------------------------------------

    def insert(self, row: dict[str, object], row_size: int) -> int:
        """Insert ``row`` and return its slot index."""
        if not self.fits(row_size):
            raise PageError(
                f"page {self.page_id} cannot fit a {row_size}-byte row "
                f"({self.free_bytes()} bytes free)"
            )
        self._slots.append(row)
        self._sizes.append(row_size)
        self.used_bytes += row_size
        self.dirty = True
        return len(self._slots) - 1

    def read(self, slot: int) -> dict[str, object]:
        """Return the row at ``slot``; raises on tombstones and bad slots."""
        self._check_slot(slot)
        row = self._slots[slot]
        if row is None:
            raise PageError(f"slot {slot} of page {self.page_id} is deleted")
        return row

    def update(self, slot: int, row: dict[str, object], row_size: int) -> None:
        """Replace the row at ``slot`` in place (the paper's in-place-update UDF)."""
        self._check_slot(slot)
        if self._slots[slot] is None:
            raise PageError(f"slot {slot} of page {self.page_id} is deleted")
        old_size = self._sizes[slot]
        if self.used_bytes - old_size + row_size > self.capacity_bytes:
            raise PageError(
                f"in-place update of slot {slot} on page {self.page_id} would overflow"
            )
        self._slots[slot] = row
        self._sizes[slot] = row_size
        self.used_bytes += row_size - old_size
        self.dirty = True

    def delete(self, slot: int) -> None:
        """Tombstone the row at ``slot``."""
        self._check_slot(slot)
        if self._slots[slot] is None:
            return
        self.used_bytes -= self._sizes[slot]
        self._slots[slot] = None
        self._sizes[slot] = 0
        self.dirty = True

    def rows(self) -> list[tuple[int, dict[str, object]]]:
        """All live rows as ``(slot, row)`` pairs in slot order."""
        return [(slot, row) for slot, row in enumerate(self._slots) if row is not None]

    def _check_slot(self, slot: int) -> None:
        if slot < 0 or slot >= len(self._slots):
            raise PageError(f"page {self.page_id} has no slot {slot}")

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, rows={self.live_row_count()}, "
            f"used={self.used_bytes}/{self.capacity_bytes})"
        )
