"""Typed logical/physical plan nodes for the SQL read path.

Every SQL read — base table, unserved classification view, served view, and
joins between them — is compiled by the :mod:`~repro.db.sql.planner` into a
tree of the nodes in this module, and then *executed by walking that tree*.
``EXPLAIN`` prints the same tree the executor runs; ``EXPLAIN ANALYZE``
executes it and reports the actual simulated seconds each node charged to the
cost ledgers next to the planner's estimate.

The node vocabulary:

========================  ==========================================================
``SeqScan``               sequential heap scan of a base table
``IndexRange``            primary-key index access (point form: a ``[k, k]`` range)
``SecondaryIndexRange``   B+-tree probe on a ``CREATE INDEX`` column + heap fetch
                          per match; optionally index-ordered with a fused LIMIT
``LogicalViewScan``       materialization of an opaque logical view callable
``ViewScan``              full materialization of a classification view
``ViewPointRead``         Single Entity read on a view's direct maintainer
``ServedPointRead``       batched point read through the ``ViewServer`` batcher
``ServedScatterGather``   All Members / contents scatter/gather across the shards
``ServedRangeScan``       class + key-range predicate pushed into the shards
``ViewRangeRead``         the same pushdown against an unserved view's maintainer
``TopK``                  ranked read (fused per-shard heaps when served)
``Sort`` / ``Limit``      ORDER BY without LIMIT / LIMIT without ORDER BY
``Filter`` / ``Project``  residual predicate re-check / column projection
``Aggregate``             ``COUNT(*)``
``HashJoin``              equi-join; a predicate-free served side is driven
                          through the read batcher with the probe side's keys
========================  ==========================================================

Nodes are immutable after planning (a cached plan is re-executed by re-binding
``?`` parameters only); all per-execution state lives in a
:class:`PlanRuntime`.  View-access nodes re-resolve the serving state at
execution time, so a plan cached while a view was served still answers
correctly after ``STOP SERVING`` (and vice versa) — the label records what the
planner *chose*, the runtime guarantees the answer stays right.

**Execution protocol.**  Nodes expose two measured entry points:
:meth:`PlanNode.execute` (rows out) and :meth:`PlanNode.execute_chunks`
(columnar :class:`Chunk` batches out).  In the default ``"batched"`` execution
mode the whole tree runs chunk-to-chunk: scans emit fixed-size column-array
batches, ``Filter`` evaluates predicates as NumPy masks over whole columns
(via :mod:`repro.linalg.kernels`), and ``Project``/``Aggregate``/``TopK``/
``HashJoin`` consume chunks directly; rows are only materialized at the plan
root.  The explicit ``"row"`` mode runs the legacy tuple-at-a-time
interpretation and charges the cost model's ``row_interpret_cpu`` per tuple
per operator — the dispatch overhead that vectorization amortizes — which is
what the vectorized-execution benchmark gate measures.  Simulated storage
costs are identical in both modes, so batched execution (the default) charges
exactly what this engine always charged.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from itertools import compress

import numpy as np

from repro.db.sql.ast import PLACEHOLDER
from repro.exceptions import (
    ConfigurationError,
    KeyNotFoundError,
    SQLExecutionError,
)
from repro.linalg import kernels

__all__ = [
    "Predicate",
    "PlanRuntime",
    "NodeStats",
    "PlanNode",
    "Chunk",
    "DEFAULT_CHUNK_ROWS",
    "SeqScan",
    "IndexRange",
    "SecondaryIndexRange",
    "LogicalViewScan",
    "SystemTableScan",
    "ViewScan",
    "ServedContentsScan",
    "ViewPointRead",
    "ServedPointRead",
    "ViewMembers",
    "ServedScatterGather",
    "ViewRangeRead",
    "ServedRangeScan",
    "TopK",
    "Sort",
    "Limit",
    "Filter",
    "Project",
    "Aggregate",
    "HashJoin",
    "compare_values",
    "row_matches",
]


@dataclass(frozen=True)
class Predicate:
    """One ``column op value`` conjunct as the planner resolved it.

    ``column`` is the bare (unqualified) name the produced rows carry;
    ``value`` is either a literal or :data:`PLACEHOLDER`, in which case
    ``param_index`` names the positional ``?`` parameter bound at execution.
    """

    column: str
    operator: str
    value: object
    param_index: int | None = None

    def bind(self, parameters: list) -> object:
        """The concrete comparison value for this execution."""
        if self.value is not PLACEHOLDER:
            return self.value
        if self.param_index is None or self.param_index >= len(parameters):
            raise SQLExecutionError("not enough parameters for placeholders")
        return parameters[self.param_index]

    def test(self, row, parameters: list) -> bool:
        """Evaluate this predicate against one row (case-insensitive column match)."""
        matched = next((key for key in row if key.lower() == self.column.lower()), None)
        if matched is None:
            raise SQLExecutionError(f"unknown column {self.column!r} in WHERE clause")
        return compare_values(row[matched], self.operator, self.bind(parameters))

    def render(self) -> str:
        """Stable text form for EXPLAIN output."""
        if self.value is PLACEHOLDER:
            return f"{self.column} {self.operator} ?"
        return f"{self.column} {self.operator} {self.value!r}"


def compare_values(actual: object, operator: str, expected: object) -> bool:
    """SQL comparison semantics shared by every filtering node."""
    if operator == "=":
        return actual == expected
    if operator == "!=":
        return actual != expected
    if actual is None or expected is None:
        return False
    if operator == "<":
        return actual < expected
    if operator == "<=":
        return actual <= expected
    if operator == ">":
        return actual > expected
    if operator == ">=":
        return actual >= expected
    raise SQLExecutionError(f"unsupported operator {operator!r}")


def row_matches(row, predicates, parameters) -> bool:
    """Whether ``row`` satisfies every predicate (AND semantics)."""
    return all(predicate.test(row, parameters) for predicate in predicates)


#: Rows per columnar batch in batched execution mode.
DEFAULT_CHUNK_ROWS = 1024

#: float64 represents integers exactly up to 2**53; larger ints stay on the
#: exact Python comparison path rather than risking a lossy conversion.
_EXACT_FLOAT_INT = 2**53


class Chunk:
    """A batch of rows, columnar when the producer is schema-shaped.

    Columnar chunks hold one Python list per column (exact original values —
    results stay byte-identical to row execution) plus lazily-built NumPy
    ``float64`` views for numeric columns, which is what the vectorized
    ``Filter``/``Sort`` kernels operate on.  Producers whose rows are not
    uniformly shaped (view reads, joins, system tables) use the row-backed
    form and the consuming operators fall back to per-row evaluation.
    """

    __slots__ = ("names", "columns", "rows", "length", "_numeric_cache")

    def __init__(self, names, columns, rows, length):
        self.names = names  # ordered column names (columnar form only)
        self.columns = columns  # dict name -> list of values
        self.rows = rows  # list of dict rows (row-backed form only)
        self.length = length
        self._numeric_cache: dict[str, np.ndarray | None] = {}

    @classmethod
    def columnar(cls, names: Sequence[str], columns: dict[str, list]) -> "Chunk":
        names = list(names)
        length = len(columns[names[0]]) if names else 0
        return cls(names, columns, None, length)

    @classmethod
    def of_rows(cls, rows: list[dict]) -> "Chunk":
        return cls(None, None, rows, len(rows))

    @property
    def is_columnar(self) -> bool:
        return self.columns is not None

    def to_rows(self) -> list[dict]:
        """Materialize as fresh row dicts (column order preserved)."""
        if self.rows is not None:
            return self.rows
        names = self.names
        columns = [self.columns[name] for name in names]
        return [
            {name: column[i] for name, column in zip(names, columns)}
            for i in range(self.length)
        ]

    def resolve(self, name: str) -> str | None:
        """Case-insensitive column lookup; None when the chunk lacks it."""
        wanted = name.lower()
        if self.columns is not None:
            return next((n for n in self.names if n.lower() == wanted), None)
        if not self.rows:
            return None
        return next((key for key in self.rows[0] if key.lower() == wanted), None)

    def values(self, resolved: str) -> list:
        """The value list for a column name returned by :meth:`resolve`."""
        if self.columns is not None:
            return self.columns[resolved]
        return [row[resolved] for row in self.rows]

    def numeric(self, resolved: str) -> np.ndarray | None:
        """A ``float64`` view of the column, or None when it holds values the
        conversion could change (None, bools, strings, huge ints)."""
        if resolved in self._numeric_cache:
            return self._numeric_cache[resolved]
        view: np.ndarray | None = None
        if self.columns is not None:
            values = self.columns[resolved]
            if all(
                type(value) is float
                or (type(value) is int and -_EXACT_FLOAT_INT <= value <= _EXACT_FLOAT_INT)
                for value in values
            ):
                view = np.array(values, dtype=np.float64)
        self._numeric_cache[resolved] = view
        return view

    def filter(self, mask: np.ndarray) -> "Chunk":
        """A new chunk keeping only the rows where ``mask`` is True."""
        if self.columns is not None:
            kept = {
                name: list(compress(column, mask))
                for name, column in self.columns.items()
            }
            return Chunk.columnar(self.names, kept)
        return Chunk.of_rows(list(compress(self.rows, mask)))

    def head(self, count: int) -> "Chunk":
        """A new chunk with only the first ``count`` rows."""
        if count >= self.length:
            return self
        if self.columns is not None:
            return Chunk.columnar(
                self.names, {name: column[:count] for name, column in self.columns.items()}
            )
        return Chunk.of_rows(self.rows[:count])


def _rows_to_chunks(names: Sequence[str], rows) -> list["Chunk"]:
    """Slice schema-shaped row dicts into columnar chunks of DEFAULT_CHUNK_ROWS."""
    names = list(names)
    chunks: list[Chunk] = []
    columns: list[list] = [[] for _ in names]
    filled = 0
    for row in rows:
        for column, name in zip(columns, names):
            column.append(row[name])
        filled += 1
        if filled == DEFAULT_CHUNK_ROWS:
            chunks.append(Chunk.columnar(names, dict(zip(names, columns))))
            columns = [[] for _ in names]
            filled = 0
    if filled:
        chunks.append(Chunk.columnar(names, dict(zip(names, columns))))
    return chunks


@dataclass
class NodeStats:
    """Per-node execution statistics collected by a :class:`PlanRuntime`."""

    rows: int = 0
    seconds: float = 0.0  # this node's own simulated seconds (children excluded)
    inclusive: float = 0.0  # including children


class PlanRuntime:
    """Everything one execution of a plan needs: parameters, session context,
    and the cost probe that attributes simulated seconds to nodes.

    ``context`` is the per-connection session registry threaded through from
    :class:`repro.connection.Connection`; served-view nodes use it to read on
    that connection's monotonic read-your-writes session.

    ``mode`` selects the execution protocol: ``"batched"`` (columnar chunks,
    the default) or ``"row"`` (tuple-at-a-time with per-tuple interpretation
    charges).  It defaults to the owning database's ``execution_mode``.
    """

    def __init__(self, database, parameters, context, cost_probe, mode: str | None = None) -> None:
        self.database = database
        self.parameters = list(parameters or [])
        self.context = context
        self._cost_probe = cost_probe
        self.node_stats: dict[int, NodeStats] = {}
        self.mode = mode or getattr(database, "execution_mode", "batched")

    @property
    def batched(self) -> bool:
        return self.mode != "row"

    def cost(self) -> float:
        """Current simulated seconds across every ledger this plan touches."""
        return self._cost_probe()

    def charge_interpretation(self, rows: int) -> None:
        """Row-mode only: charge ``row_interpret_cpu`` for ``rows`` tuples.

        This is the per-tuple operator-dispatch overhead the batched protocol
        amortizes away; in batched mode (the default) it is zero, so default
        execution charges exactly what the engine charged before the batched
        protocol existed.
        """
        if self.mode != "row" or rows <= 0:
            return
        cost_model = self.database.pool.cost_model
        self.database.stats.charge(rows * cost_model.row_interpret_cpu, "row_execute")

    def record(self, node: "PlanNode", rows: int, seconds: float, inclusive: float) -> None:
        self.node_stats[id(node)] = NodeStats(rows=rows, seconds=seconds, inclusive=inclusive)

    def stats_of(self, node: "PlanNode") -> NodeStats:
        return self.node_stats.get(id(node), NodeStats())

    def view_reader(self, view):
        """The session (or raw server) to read a *served* view through.

        Returns None when the view is not currently served — the node then
        falls back to the direct maintainer, which keeps cached plans correct
        across SERVE VIEW / STOP SERVING transitions.
        """
        server = view.server
        if server is None:
            return None
        if self.context is not None and hasattr(self.context, "session_for"):
            return self.context.session_for(view.name, server)
        return server


class PlanNode:
    """Base class: children, cost annotations, measured execution."""

    def __init__(self, children=(), estimated_seconds: float | None = None, detail: str = ""):
        self.children: tuple[PlanNode, ...] = tuple(children)
        self.estimated_seconds = estimated_seconds
        self.detail = detail

    # -- execution -----------------------------------------------------------------------

    def execute(self, runtime: PlanRuntime) -> list[dict]:
        """Run this node (and its children), attributing simulated seconds.

        In batched mode the subtree runs chunk-to-chunk and rows materialize
        only here; in row mode the legacy tuple-at-a-time ``_run`` path runs.
        Either way the node's stats are recorded identically.
        """
        start = runtime.cost()
        if runtime.batched:
            chunks = self._run_chunks(runtime)
            count = sum(chunk.length for chunk in chunks)
            rows = [row for chunk in chunks for row in chunk.to_rows()]
        else:
            rows = self._run(runtime)
            count = len(rows)
        self._record(runtime, start, count)
        return rows

    def execute_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        """Run this node, returning columnar chunks (the batched protocol)."""
        start = runtime.cost()
        if runtime.batched:
            chunks = self._run_chunks(runtime)
        else:
            chunks = [Chunk.of_rows(self._run(runtime))]
        self._record(runtime, start, sum(chunk.length for chunk in chunks))
        return chunks

    def _record(self, runtime: PlanRuntime, start: float, rows: int) -> None:
        inclusive = runtime.cost() - start
        children_inclusive = sum(
            runtime.stats_of(child).inclusive for child in self.children
        )
        runtime.record(self, rows, inclusive - children_inclusive, inclusive)

    def _run(self, runtime: PlanRuntime) -> list[dict]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        """Batched implementation; nodes without a native columnar path wrap
        their row output in a single row-backed chunk."""
        rows = self._run(runtime)
        return [Chunk.of_rows(rows)] if rows else []

    # -- explain -------------------------------------------------------------------------

    def label(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "PlanNode"]]:
        """Pre-order traversal yielding ``(depth, node)`` pairs."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


def _render_predicates(predicates) -> str:
    return " AND ".join(predicate.render() for predicate in predicates)


# ---------------------------------------------------------------------------
# Base-table access
# ---------------------------------------------------------------------------


class SeqScan(PlanNode):
    """Sequential heap scan of a base table."""

    def __init__(self, table, **kwargs):
        super().__init__(**kwargs)
        self.table = table

    def label(self) -> str:
        return f"SeqScan({self.table.name})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        rows = [dict(row) for row in self.table.scan()]
        runtime.charge_interpretation(len(rows))
        return rows

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        names = self.table.schema.column_names()
        return _rows_to_chunks(names, (row for _, row in self.table.heap.scan()))


class IndexRange(PlanNode):
    """Primary-key index access; the point form is the degenerate ``[k, k]`` range."""

    def __init__(self, table, predicate: Predicate, **kwargs):
        super().__init__(**kwargs)
        self.table = table
        self.predicate = predicate

    def label(self) -> str:
        return f"IndexRange({self.table.name}.{self.predicate.render()})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        key = self.predicate.bind(runtime.parameters)
        row = self.table.try_get_by_key(key)
        runtime.charge_interpretation(1 if row is not None else 0)
        return [dict(row)] if row is not None else []


class SecondaryIndexRange(PlanNode):
    """B+-tree probe over a ``CREATE INDEX`` key, plus a heap fetch per match
    (unless the scan is *covering*).

    ``predicates`` are the conjuncts the index serves.  For a single-column
    index they are ``=``, ``<``, ``<=``, ``>``, ``>=`` comparisons on the
    indexed column, tightened to one ``[low, high]`` interval at execution.
    For a composite index they follow the leftmost-prefix rule the planner
    enforced: equality conjuncts pinning the leading key columns plus at most
    one range over the next column, which the index turns into a contiguous
    tuple-key range.

    With ``order`` set the node is *index-ordered*: rows come back sorted by
    ``column`` (the leaf chain is walked forward for ``asc`` and backwards
    along the ``prev_leaf`` chain for ``desc``, so **both** directions
    early-exit) and the planner elided the ``Sort``/``TopK`` above; ``limit``
    then caps how many entries are walked, which is the fused top-k win.

    With ``covering`` set the SELECT's column set is a subset of the index
    key, so rows are rebuilt from the B+-tree keys themselves and the
    per-match heap fetch is skipped entirely — the index-only scan.

    Execution re-resolves the index by name and falls back to a full heap
    scan — sorted when ordered — whenever the index answer could differ from
    scan semantics: the index was dropped (a cached plan raced the DDL), a
    bound binds to NULL (``col = NULL`` matches NULL rows under this
    dialect's ``compare_values``, but NULLs are never indexed), or an ordered
    read finds unindexed NULL rows the ordering must still place.  The
    residual ``Filter`` above re-checks every conjunct either way, so answers
    stay byte-identical to a scan.
    """

    #: Sentinel distinguishing "fall back to a heap scan" from "provably
    #: empty result" (conflicting equality bindings on a prefix column).
    _EMPTY = object()

    def __init__(
        self,
        table,
        index_name: str,
        column: str,
        predicates,
        order: str | None = None,
        limit: int | None = None,
        key_columns: Sequence[str] | None = None,
        covering: bool = False,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.table = table
        self.index_name = index_name
        self.column = column
        self.predicates = tuple(predicates)
        self.order = order
        self.limit = limit
        self.key_columns = tuple(key_columns) if key_columns else (column,)
        self.covering = covering

    def label(self) -> str:
        parts = [_render_predicates(self.predicates) or "unbounded"]
        if self.order is not None:
            parts.append(f"order={self.column} {self.order}")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if self.covering:
            parts.append("covering")
        return f"SecondaryIndexRange({self.table.name}.{self.index_name}: {', '.join(parts)})"

    def _bounds(self, parameters):
        """Tighten the bound conjuncts to ``(low, high, incl_low, incl_high)``.

        Returns None when any bound binds to NULL — the index cannot answer
        that (NULLs are unindexed) and the caller must fall back to a scan.
        """
        low = high = None
        include_low = include_high = True
        for predicate in self.predicates:
            value = predicate.bind(parameters)
            if value is None:
                return None
            if predicate.operator in ("=", ">", ">="):
                strict = predicate.operator == ">"
                if low is None or value > low or (value == low and strict):
                    low, include_low = value, not strict
            if predicate.operator in ("=", "<", "<="):
                strict = predicate.operator == "<"
                if high is None or value < high or (value == high and strict):
                    high, include_high = value, not strict
        return low, high, include_low, include_high

    def _composite_probe(self, parameters):
        """Resolve the composite probe: equality prefix values + range bounds.

        Returns None for scan fallback (a NULL binding), :data:`_EMPTY` when
        conflicting equality bindings make the result provably empty, or
        ``(eq_values, low, high, incl_low, incl_high)``.
        """
        by_column: dict[str, list[Predicate]] = {}
        for predicate in self.predicates:
            by_column.setdefault(predicate.column.lower(), []).append(predicate)
        eq_values: list[object] = []
        low = high = None
        include_low = include_high = True
        for key_column in self.key_columns:
            preds = by_column.get(key_column.lower())
            if not preds:
                break
            if all(p.operator == "=" for p in preds) and len(eq_values) < len(self.key_columns) - 1:
                values = [p.bind(parameters) for p in preds]
                if any(value is None for value in values):
                    return None
                first = values[0]
                if any(
                    not (value == first and type(value) is type(first))
                    for value in values[1:]
                ):
                    return self._EMPTY
                eq_values.append(first)
                continue
            # Range column: tighten all its conjuncts to one interval.
            for predicate in preds:
                value = predicate.bind(parameters)
                if value is None:
                    return None
                if predicate.operator in ("=", ">", ">="):
                    strict = predicate.operator == ">"
                    if low is None or value > low or (value == low and strict):
                        low, include_low = value, not strict
                if predicate.operator in ("=", "<", "<="):
                    strict = predicate.operator == "<"
                    if high is None or value < high or (value == high and strict):
                        high, include_high = value, not strict
            break
        return tuple(eq_values), low, high, include_low, include_high

    def _matching_entries(self, index, parameters):
        """The probe's index entries — rids, or ``(key, rid)`` when covering.

        Returns None when the index cannot answer and the caller must fall
        back to a heap scan.  Applies the fused ``limit`` by early-exiting
        the leaf walk in either direction.
        """
        reverse = self.order == "desc"
        if len(self.key_columns) == 1:
            bounds = self._bounds(parameters)
            if bounds is None:
                return None
            low, high, include_low, include_high = bounds
            scan = index.scan(
                low, high, include_low, include_high,
                reverse=reverse, with_keys=self.covering,
            )
        else:
            probe = self._composite_probe(parameters)
            if probe is None:
                return None
            if probe is self._EMPTY:
                return []
            eq_values, low, high, include_low, include_high = probe
            scan = index.scan(
                low, high, include_low, include_high,
                equalities=eq_values, reverse=reverse, with_keys=self.covering,
            )
        if self.limit is not None:
            entries = []
            for entry in scan:
                entries.append(entry)
                if len(entries) >= self.limit:
                    break
            return entries
        return list(scan)

    def _covered_row(self, key: object) -> dict:
        """Rebuild a (partial) row from the tree key — no heap access."""
        if len(self.key_columns) == 1:
            return {self.key_columns[0]: key}
        return dict(zip(self.key_columns, key))

    def _fallback_scan(self) -> list[dict]:
        rows = [dict(row) for row in self.table.scan()]
        if self.order is not None:
            rows.sort(key=_sort_key_for(self.column), reverse=self.order == "desc")
        return rows

    def _resolve_entries(self, runtime: PlanRuntime):
        """Index entries for this execution, or None when falling back."""
        index = self.table.secondary_index(self.index_name)
        if index is None:
            return None
        if not index.covers_all_rows(self.table.row_count()):
            # Some live rows are unindexed (NULL/NaN in a key column).  For a
            # single-column index with bound predicates those rows could never
            # match anyway, but any of these reads must see them:
            if self.order is not None:
                # index order would misplace (drop) rows the ordering must place
                return None
            if len(self.key_columns) > 1:
                # a row NULL in one key column may still match a partial-prefix
                # probe on the others, yet is absent from the tree
                return None
            if not self.predicates:
                # an unbounded read has no predicate to exclude the NULL rows
                return None
        return self._matching_entries(index, runtime.parameters)

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        entries = self._resolve_entries(runtime)
        if entries is None:
            rows = self._fallback_scan()
            runtime.charge_interpretation(len(rows))
            return rows
        if self.covering:
            rows = [self._covered_row(key) for key, _ in entries]
        else:
            rows = [
                dict(self.table.heap.read(rid, sequential=False)) for rid in entries
            ]
        runtime.charge_interpretation(len(rows))
        return rows

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        names = self.table.schema.column_names()
        entries = self._resolve_entries(runtime)
        if entries is None:
            return _rows_to_chunks(names, self._fallback_scan())
        if self.covering:
            if len(self.key_columns) == 1:
                return _rows_to_chunks(
                    self.key_columns, ({self.key_columns[0]: key} for key, _ in entries)
                )
            return _rows_to_chunks(
                self.key_columns, (dict(zip(self.key_columns, key)) for key, _ in entries)
            )
        return _rows_to_chunks(
            names, (self.table.heap.read(rid, sequential=False) for rid in entries)
        )


class LogicalViewScan(PlanNode):
    """Materialization of a logical (callable-backed) view."""

    def __init__(self, name: str, producer, **kwargs):
        super().__init__(**kwargs)
        self.name = name
        self.producer = producer

    def label(self) -> str:
        return f"LogicalViewScan({self.name})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        return [dict(row) for row in self.producer()]


class SystemTableScan(PlanNode):
    """Materialization of a virtual ``system.*`` observability table.

    Like :class:`LogicalViewScan`, the producer is a callable returning row
    mappings; unlike every other access path it reads process state rather
    than stored data, so its estimated cost is pinned to zero — observability
    reads must never perturb the cost model they report on.
    """

    def __init__(self, name: str, producer, **kwargs):
        kwargs.setdefault("estimated_seconds", 0.0)
        super().__init__(**kwargs)
        self.name = name
        self.producer = producer

    def label(self) -> str:
        return f"SystemTableScan({self.name})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        return [dict(row) for row in self.producer()]


# ---------------------------------------------------------------------------
# Classification-view access
# ---------------------------------------------------------------------------


class _ViewNode(PlanNode):
    """Shared machinery for nodes reading a classification view."""

    def __init__(self, view, **kwargs):
        super().__init__(**kwargs)
        self.view = view

    def _display_row(self, entity_id: object, binary_label: int) -> dict:
        return {
            self.view.definition.view_key: entity_id,
            "class": self.view.from_binary_label(binary_label),
        }

    def _binary_class(self, value: object) -> int | None:
        """Map a user-facing class literal to {-1, +1}; None when unmappable."""
        try:
            return self.view.to_binary_label(value)
        except ConfigurationError:
            return None


class ViewScan(_ViewNode):
    """Full materialization of a classification view (one coherent epoch when served)."""

    served_planned = False

    def label(self) -> str:
        return f"ViewScan({self.view.name})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        reader = runtime.view_reader(self.view)
        if reader is None:
            return [dict(row) for row in self.view.rows()]
        return [
            self._display_row(entity_id, label)
            for entity_id, label in reader.contents().items()
        ]


class ServedContentsScan(ViewScan):
    """``ViewScan`` planned against a live server (scatter/gather contents)."""

    served_planned = True

    def label(self) -> str:
        return f"ServedScatterGather({self.view.name}, contents)"


class ViewPointRead(_ViewNode):
    """Single Entity read answered by the view's direct maintainer."""

    def __init__(self, view, predicate: Predicate, **kwargs):
        super().__init__(view, **kwargs)
        self.predicate = predicate

    def label(self) -> str:
        return f"ViewPointRead({self.view.name}.{self.predicate.render()})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        key = self.predicate.bind(runtime.parameters)
        reader = runtime.view_reader(self.view)
        try:
            label = reader.label_of(key) if reader is not None else self.view.label_of(key)
        except KeyNotFoundError:
            return []
        return [self._display_row(key, label)]


class ServedPointRead(ViewPointRead):
    """Point read through the server's request batcher (session-consistent).

    With ``predicate=None`` the node is a *probe-side lookup* for
    :class:`HashJoin`: it has no key of its own and is executed via
    :meth:`execute_batch` with the join's probe keys, all driven through the
    read batcher in one coalesced burst.
    """

    is_probe_lookup = False

    def __init__(self, view, predicate: Predicate | None, **kwargs):
        if predicate is None:
            _ViewNode.__init__(self, view, **kwargs)
            self.predicate = None
            self.is_probe_lookup = True
        else:
            super().__init__(view, predicate, **kwargs)

    def label(self) -> str:
        if self.is_probe_lookup:
            return f"ServedPointRead({self.view.name}, batch)"
        return f"ServedPointRead({self.view.name}.{self.predicate.render()})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        if self.is_probe_lookup:  # only a HashJoin may drive this node
            raise SQLExecutionError(
                "a probe-side ServedPointRead executes only through its join"
            )
        return super()._run(runtime)

    def execute_batch(self, runtime: PlanRuntime, keys) -> list[dict]:
        """Fetch labels for the join's probe keys; records this node's stats."""
        start = runtime.cost()
        reader = runtime.view_reader(self.view)
        rows: list[dict] = []
        if reader is not None:
            for entity_id, label in reader.labels_of(keys).items():
                rows.append(self._display_row(entity_id, label))
        else:
            for entity_id in keys:
                try:
                    label = self.view.label_of(entity_id)
                except KeyNotFoundError:
                    continue
                rows.append(self._display_row(entity_id, label))
        inclusive = runtime.cost() - start
        runtime.record(self, len(rows), inclusive, inclusive)
        return rows


class ViewMembers(_ViewNode):
    """All Members read on the direct maintainer."""

    served_planned = False

    def __init__(self, view, class_predicate: Predicate, **kwargs):
        super().__init__(view, **kwargs)
        self.class_predicate = class_predicate

    def label(self) -> str:
        return f"ViewMembers({self.view.name}, {self.class_predicate.render()})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        label = self._binary_class(self.class_predicate.bind(runtime.parameters))
        if label is None:
            return []
        reader = runtime.view_reader(self.view)
        members = reader.all_members(label) if reader is not None else self.view.members(label)
        return [self._display_row(entity_id, label) for entity_id in members]


class ServedScatterGather(ViewMembers):
    """All Members scatter/gather across the shards (session-consistent)."""

    served_planned = True

    def label(self) -> str:
        return f"ServedScatterGather({self.view.name}, {self.class_predicate.render()})"


class ViewRangeRead(_ViewNode):
    """``class = x AND <key> <op> k`` pushed into the view's maintainer.

    The range over the entity key is resolved at execution time from the
    pushed conjuncts (placeholders included), tightened to a single
    ``[low, high]`` interval, and answered by ``read_range`` — one scan that
    classifies only in-range candidates instead of materializing the view.
    """

    served_planned = False

    def __init__(self, view, class_predicate: Predicate, range_predicates, **kwargs):
        super().__init__(view, **kwargs)
        self.class_predicate = class_predicate
        self.range_predicates = tuple(range_predicates)

    def label(self) -> str:
        rendered = _render_predicates((self.class_predicate, *self.range_predicates))
        return f"ViewRangeRead({self.view.name}, {rendered})"

    def _bounds(self, parameters):
        low = high = None
        include_low = include_high = True
        for predicate in self.range_predicates:
            value = predicate.bind(parameters)
            if predicate.operator in (">", ">="):
                strict = predicate.operator == ">"
                if low is None or value > low or (value == low and strict):
                    low, include_low = value, not strict
            else:
                strict = predicate.operator == "<"
                if high is None or value < high or (value == high and strict):
                    high, include_high = value, not strict
        return low, high, include_low, include_high

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        label = self._binary_class(self.class_predicate.bind(runtime.parameters))
        if label is None:
            return []
        low, high, include_low, include_high = self._bounds(runtime.parameters)
        reader = runtime.view_reader(self.view)
        if reader is not None:
            members = reader.range_scan(
                label, low, high, include_low=include_low, include_high=include_high
            )
        else:
            members = self.view.maintainer.read_range(
                label, low, high, include_low=include_low, include_high=include_high
            )
        return [self._display_row(entity_id, label) for entity_id in members]


class ServedRangeScan(ViewRangeRead):
    """The range pushdown as a shard operator: scatter ``read_range`` to every
    shard under one epoch, gather only the in-class, in-range ids."""

    served_planned = True

    def label(self) -> str:
        rendered = _render_predicates((self.class_predicate, *self.range_predicates))
        return f"ServedRangeScan({self.view.name}, {rendered})"


# ---------------------------------------------------------------------------
# Interior operators
# ---------------------------------------------------------------------------


class Filter(PlanNode):
    """Residual predicate re-check above an access path."""

    def __init__(self, child: PlanNode, predicates, **kwargs):
        super().__init__(children=(child,), **kwargs)
        self.predicates = tuple(predicates)

    def label(self) -> str:
        return f"Filter({_render_predicates(self.predicates)})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        rows = self.children[0].execute(runtime)
        runtime.charge_interpretation(len(rows))
        return [row for row in rows if row_matches(row, self.predicates, runtime.parameters)]

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        chunks = self.children[0].execute_chunks(runtime)
        out: list[Chunk] = []
        for chunk in chunks:
            if chunk.length == 0:
                continue
            filtered = self._filter_chunk(chunk, runtime)
            if filtered.length:
                out.append(filtered)
        return out

    def _filter_chunk(self, chunk: Chunk, runtime: PlanRuntime) -> Chunk:
        """Evaluate the conjuncts over whole columns; NumPy masks on numeric
        columns (via :func:`repro.linalg.kernels.compare`), per-value Python
        comparison otherwise.  Semantics match :func:`row_matches` exactly."""
        mask: np.ndarray | None = None
        for predicate in self.predicates:
            resolved = chunk.resolve(predicate.column)
            if resolved is None:
                raise SQLExecutionError(
                    f"unknown column {predicate.column!r} in WHERE clause"
                )
            bound = predicate.bind(runtime.parameters)
            predicate_mask: np.ndarray | None = None
            if type(bound) is float or (
                type(bound) is int and -_EXACT_FLOAT_INT <= bound <= _EXACT_FLOAT_INT
            ):
                numeric = chunk.numeric(resolved)
                if numeric is not None:
                    predicate_mask = kernels.compare(numeric, predicate.operator, bound)
            if predicate_mask is None:
                predicate_mask = np.fromiter(
                    (
                        compare_values(value, predicate.operator, bound)
                        for value in chunk.values(resolved)
                    ),
                    dtype=bool,
                    count=chunk.length,
                )
            mask = predicate_mask if mask is None else mask & predicate_mask
            if not mask.any():
                return chunk.filter(mask)
        return chunk if mask is None else chunk.filter(mask)


def _sort_key_for(column: str):
    def sort_key(row: dict):
        matched = next((key for key in row if key.lower() == column.lower()), None)
        if matched is None:
            raise SQLExecutionError(f"unknown ORDER BY column {column!r}")
        value = row[matched]
        return (value is None, value)

    return sort_key


def _sorted_chunk_rows(
    chunks: list[Chunk], column: str, descending: bool
) -> list[dict]:
    """Rows from ``chunks`` ordered by ``column``, vectorized when possible.

    When every chunk is columnar with a NaN-free numeric sort column, the
    permutation comes from one stable ``np.argsort`` over the concatenated
    column (negated for descending — stability then preserves the original
    order of equal keys, exactly like a stable reverse-order sort).  Anything
    else falls back to the Python sort with the row-mode key (None-first
    ascending, None-last descending).
    """
    arrays: list[np.ndarray] = []
    for chunk in chunks:
        resolved = chunk.resolve(column) if chunk.is_columnar else None
        numeric = chunk.numeric(resolved) if resolved is not None else None
        if numeric is None:
            arrays = []
            break
        arrays.append(numeric)
    if arrays and len(arrays) == len(chunks):
        values = np.concatenate(arrays)
        if not np.isnan(values).any():
            order = np.argsort(-values if descending else values, kind="stable")
            rows = [row for chunk in chunks for row in chunk.to_rows()]
            return [rows[i] for i in order]
    rows = [row for chunk in chunks for row in chunk.to_rows()]
    rows.sort(key=_sort_key_for(column), reverse=descending)
    return rows


class Sort(PlanNode):
    """Full sort for ORDER BY without LIMIT."""

    def __init__(self, child: PlanNode, column: str, descending: bool, **kwargs):
        super().__init__(children=(child,), **kwargs)
        self.column = column
        self.descending = descending

    def label(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"Sort(by={self.column} {direction})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        rows = list(self.children[0].execute(runtime))
        runtime.charge_interpretation(len(rows))
        rows.sort(key=_sort_key_for(self.column), reverse=self.descending)
        return rows

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        chunks = self.children[0].execute_chunks(runtime)
        rows = _sorted_chunk_rows(chunks, self.column, self.descending)
        return [Chunk.of_rows(rows)] if rows else []


class TopK(PlanNode):
    """Ranked read: ORDER BY + LIMIT.

    With a child, a stable sort-and-slice over the child's rows.  Without one
    (``view`` set), the *fused* served top-k: per-shard heaps merged across
    the shards by the server, driven through the session.
    """

    def __init__(
        self,
        k: int,
        column: str,
        descending: bool,
        child: PlanNode | None = None,
        view=None,
        **kwargs,
    ):
        super().__init__(children=(child,) if child is not None else (), **kwargs)
        self.k = k
        self.column = column
        self.descending = descending
        self.view = view

    def label(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"TopK(k={self.k}, by={self.column} {direction})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        if self.view is not None:
            reader = runtime.view_reader(self.view)
            if reader is None:
                raise SQLExecutionError(
                    f"ORDER BY margin requires view {self.view.name!r} to be served"
                )
            key_column = self.view.definition.view_key
            return [
                {
                    key_column: entity_id,
                    "class": self.view.from_binary_label(1),
                    "margin": margin,
                }
                for entity_id, margin in reader.top_k(self.k, label=1)
            ]
        rows = list(self.children[0].execute(runtime))
        runtime.charge_interpretation(len(rows))
        rows.sort(key=_sort_key_for(self.column), reverse=self.descending)
        return rows[: self.k]

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        if self.view is not None:
            rows = self._run(runtime)
            return [Chunk.of_rows(rows)] if rows else []
        chunks = self.children[0].execute_chunks(runtime)
        rows = _sorted_chunk_rows(chunks, self.column, self.descending)[: self.k]
        return [Chunk.of_rows(rows)] if rows else []


class Limit(PlanNode):
    """LIMIT without ORDER BY."""

    def __init__(self, child: PlanNode, count: int, **kwargs):
        super().__init__(children=(child,), **kwargs)
        self.count = count

    def label(self) -> str:
        return f"Limit({self.count})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        rows = self.children[0].execute(runtime)[: self.count]
        runtime.charge_interpretation(len(rows))
        return rows

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        out: list[Chunk] = []
        remaining = self.count
        for chunk in self.children[0].execute_chunks(runtime):
            if remaining <= 0:
                break
            taken = chunk.head(remaining)
            if taken.length:
                out.append(taken)
            remaining -= taken.length
        return out


class Project(PlanNode):
    """Column projection; ``lookups`` are the row keys resolved at plan time."""

    def __init__(self, child: PlanNode, lookups, **kwargs):
        super().__init__(children=(child,), **kwargs)
        self.lookups = tuple(lookups)

    def label(self) -> str:
        return f"Project({', '.join(self.lookups)})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        rows = self.children[0].execute(runtime)
        runtime.charge_interpretation(len(rows))
        projected: list[dict] = []
        for row in rows:
            out: dict[str, object] = {}
            for wanted in self.lookups:
                matched = next((key for key in row if key.lower() == wanted.lower()), None)
                if matched is None:
                    raise SQLExecutionError(f"unknown column {wanted!r} in SELECT list")
                out[matched] = row[matched]
            projected.append(out)
        return projected

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        out: list[Chunk] = []
        for chunk in self.children[0].execute_chunks(runtime):
            if chunk.length == 0:
                continue
            if chunk.is_columnar:
                names: list[str] = []
                columns: dict[str, list] = {}
                for wanted in self.lookups:
                    resolved = chunk.resolve(wanted)
                    if resolved is None:
                        raise SQLExecutionError(
                            f"unknown column {wanted!r} in SELECT list"
                        )
                    names.append(resolved)
                    columns[resolved] = chunk.values(resolved)
                out.append(Chunk.columnar(names, columns))
                continue
            projected: list[dict] = []
            for row in chunk.to_rows():
                row_out: dict[str, object] = {}
                for wanted in self.lookups:
                    matched = next(
                        (key for key in row if key.lower() == wanted.lower()), None
                    )
                    if matched is None:
                        raise SQLExecutionError(
                            f"unknown column {wanted!r} in SELECT list"
                        )
                    row_out[matched] = row[matched]
                projected.append(row_out)
            out.append(Chunk.of_rows(projected))
        return out


class Aggregate(PlanNode):
    """``COUNT(*)`` over the child's rows."""

    def __init__(self, child: PlanNode, **kwargs):
        super().__init__(children=(child,), **kwargs)

    def label(self) -> str:
        return "Aggregate(count)"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        rows = self.children[0].execute(runtime)
        runtime.charge_interpretation(len(rows))
        return [{"count": len(rows)}]

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        # Counting never materializes rows: chunk lengths sum directly.
        total = sum(chunk.length for chunk in self.children[0].execute_chunks(runtime))
        return [Chunk.of_rows([{"count": total}])]


class HashJoin(PlanNode):
    """Inner equi-join: build a hash table on the right side, probe with the left.

    When the right child is a probe-side :class:`ServedPointRead` (a served
    view with no pushable predicate), the left side runs first and its join
    keys drive one batched lookup through the server's read batcher instead of
    materializing the whole view.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: str,
        right_key: str,
        right_renames: dict[str, str],
        **kwargs,
    ):
        super().__init__(children=(left, right), **kwargs)
        self.left_key = left_key
        self.right_key = right_key
        self.right_renames = dict(right_renames)

    def label(self) -> str:
        return f"HashJoin({self.left_key} = {self.right_key})"

    @staticmethod
    def _value_of(row: dict, column: str):
        matched = next((key for key in row if key.lower() == column.lower()), None)
        if matched is None:
            raise SQLExecutionError(f"unknown join column {column!r}")
        return row[matched]

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        left, right = self.children
        left_rows = left.execute(runtime)
        right_rows = self._right_rows(runtime, self._probe_keys(left_rows))
        runtime.charge_interpretation(len(left_rows) + len(right_rows))
        return self._join(left_rows, right_rows)

    def _run_chunks(self, runtime: PlanRuntime) -> list[Chunk]:
        left, right = self.children
        left_chunks = left.execute_chunks(runtime)
        bare_left = self.left_key.rpartition(".")[2]
        # Probe keys come straight off the key column arrays, chunk by chunk.
        seen: dict[object, None] = {}
        for chunk in left_chunks:
            if chunk.length == 0:
                continue
            resolved = chunk.resolve(bare_left)
            if resolved is None:
                raise SQLExecutionError(f"unknown join column {bare_left!r}")
            for value in chunk.values(resolved):
                seen.setdefault(value)
        if getattr(right, "is_probe_lookup", False):
            right_rows = right.execute_batch(runtime, list(seen))
        else:
            right_rows = [row for chunk in right.execute_chunks(runtime) for row in chunk.to_rows()]
        left_rows = [row for chunk in left_chunks for row in chunk.to_rows()]
        joined = self._join(left_rows, right_rows)
        return [Chunk.of_rows(joined)] if joined else []

    def _probe_keys(self, left_rows: list[dict]) -> list:
        seen: dict[object, None] = {}
        bare_left = self.left_key.rpartition(".")[2]
        for row in left_rows:
            seen.setdefault(self._value_of(row, bare_left))
        return list(seen)

    def _right_rows(self, runtime: PlanRuntime, probe_keys: list) -> list[dict]:
        right = self.children[1]
        if getattr(right, "is_probe_lookup", False):
            return right.execute_batch(runtime, probe_keys)
        return right.execute(runtime)

    def _join(self, left_rows: list[dict], right_rows: list[dict]) -> list[dict]:
        bare_left = self.left_key.rpartition(".")[2]
        bare_right = self.right_key.rpartition(".")[2]
        build: dict[object, list[dict]] = {}
        for row in right_rows:
            build.setdefault(self._value_of(row, bare_right), []).append(row)
        joined: list[dict] = []
        for left_row in left_rows:
            for right_row in build.get(self._value_of(left_row, bare_left), ()):
                merged = dict(left_row)
                for column, value in right_row.items():
                    merged[self.right_renames.get(column.lower(), column)] = value
                joined.append(merged)
        return joined
