"""Typed logical/physical plan nodes for the SQL read path.

Every SQL read — base table, unserved classification view, served view, and
joins between them — is compiled by the :mod:`~repro.db.sql.planner` into a
tree of the nodes in this module, and then *executed by walking that tree*.
``EXPLAIN`` prints the same tree the executor runs; ``EXPLAIN ANALYZE``
executes it and reports the actual simulated seconds each node charged to the
cost ledgers next to the planner's estimate.

The node vocabulary:

========================  ==========================================================
``SeqScan``               sequential heap scan of a base table
``IndexRange``            primary-key index access (point form: a ``[k, k]`` range)
``SecondaryIndexRange``   B+-tree probe on a ``CREATE INDEX`` column + heap fetch
                          per match; optionally index-ordered with a fused LIMIT
``LogicalViewScan``       materialization of an opaque logical view callable
``ViewScan``              full materialization of a classification view
``ViewPointRead``         Single Entity read on a view's direct maintainer
``ServedPointRead``       batched point read through the ``ViewServer`` batcher
``ServedScatterGather``   All Members / contents scatter/gather across the shards
``ServedRangeScan``       class + key-range predicate pushed into the shards
``ViewRangeRead``         the same pushdown against an unserved view's maintainer
``TopK``                  ranked read (fused per-shard heaps when served)
``Sort`` / ``Limit``      ORDER BY without LIMIT / LIMIT without ORDER BY
``Filter`` / ``Project``  residual predicate re-check / column projection
``Aggregate``             ``COUNT(*)``
``HashJoin``              equi-join; a predicate-free served side is driven
                          through the read batcher with the probe side's keys
========================  ==========================================================

Nodes are immutable after planning (a cached plan is re-executed by re-binding
``?`` parameters only); all per-execution state lives in a
:class:`PlanRuntime`.  View-access nodes re-resolve the serving state at
execution time, so a plan cached while a view was served still answers
correctly after ``STOP SERVING`` (and vice versa) — the label records what the
planner *chose*, the runtime guarantees the answer stays right.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.db.sql.ast import PLACEHOLDER
from repro.exceptions import (
    ConfigurationError,
    KeyNotFoundError,
    SQLExecutionError,
)

__all__ = [
    "Predicate",
    "PlanRuntime",
    "NodeStats",
    "PlanNode",
    "SeqScan",
    "IndexRange",
    "SecondaryIndexRange",
    "LogicalViewScan",
    "SystemTableScan",
    "ViewScan",
    "ServedContentsScan",
    "ViewPointRead",
    "ServedPointRead",
    "ViewMembers",
    "ServedScatterGather",
    "ViewRangeRead",
    "ServedRangeScan",
    "TopK",
    "Sort",
    "Limit",
    "Filter",
    "Project",
    "Aggregate",
    "HashJoin",
    "compare_values",
    "row_matches",
]


@dataclass(frozen=True)
class Predicate:
    """One ``column op value`` conjunct as the planner resolved it.

    ``column`` is the bare (unqualified) name the produced rows carry;
    ``value`` is either a literal or :data:`PLACEHOLDER`, in which case
    ``param_index`` names the positional ``?`` parameter bound at execution.
    """

    column: str
    operator: str
    value: object
    param_index: int | None = None

    def bind(self, parameters: list) -> object:
        """The concrete comparison value for this execution."""
        if self.value is not PLACEHOLDER:
            return self.value
        if self.param_index is None or self.param_index >= len(parameters):
            raise SQLExecutionError("not enough parameters for placeholders")
        return parameters[self.param_index]

    def test(self, row, parameters: list) -> bool:
        """Evaluate this predicate against one row (case-insensitive column match)."""
        matched = next((key for key in row if key.lower() == self.column.lower()), None)
        if matched is None:
            raise SQLExecutionError(f"unknown column {self.column!r} in WHERE clause")
        return compare_values(row[matched], self.operator, self.bind(parameters))

    def render(self) -> str:
        """Stable text form for EXPLAIN output."""
        if self.value is PLACEHOLDER:
            return f"{self.column} {self.operator} ?"
        return f"{self.column} {self.operator} {self.value!r}"


def compare_values(actual: object, operator: str, expected: object) -> bool:
    """SQL comparison semantics shared by every filtering node."""
    if operator == "=":
        return actual == expected
    if operator == "!=":
        return actual != expected
    if actual is None or expected is None:
        return False
    if operator == "<":
        return actual < expected
    if operator == "<=":
        return actual <= expected
    if operator == ">":
        return actual > expected
    if operator == ">=":
        return actual >= expected
    raise SQLExecutionError(f"unsupported operator {operator!r}")


def row_matches(row, predicates, parameters) -> bool:
    """Whether ``row`` satisfies every predicate (AND semantics)."""
    return all(predicate.test(row, parameters) for predicate in predicates)


@dataclass
class NodeStats:
    """Per-node execution statistics collected by a :class:`PlanRuntime`."""

    rows: int = 0
    seconds: float = 0.0  # this node's own simulated seconds (children excluded)
    inclusive: float = 0.0  # including children


class PlanRuntime:
    """Everything one execution of a plan needs: parameters, session context,
    and the cost probe that attributes simulated seconds to nodes.

    ``context`` is the per-connection session registry threaded through from
    :class:`repro.connection.Connection`; served-view nodes use it to read on
    that connection's monotonic read-your-writes session.
    """

    def __init__(self, database, parameters, context, cost_probe) -> None:
        self.database = database
        self.parameters = list(parameters or [])
        self.context = context
        self._cost_probe = cost_probe
        self.node_stats: dict[int, NodeStats] = {}

    def cost(self) -> float:
        """Current simulated seconds across every ledger this plan touches."""
        return self._cost_probe()

    def record(self, node: "PlanNode", rows: int, seconds: float, inclusive: float) -> None:
        self.node_stats[id(node)] = NodeStats(rows=rows, seconds=seconds, inclusive=inclusive)

    def stats_of(self, node: "PlanNode") -> NodeStats:
        return self.node_stats.get(id(node), NodeStats())

    def view_reader(self, view):
        """The session (or raw server) to read a *served* view through.

        Returns None when the view is not currently served — the node then
        falls back to the direct maintainer, which keeps cached plans correct
        across SERVE VIEW / STOP SERVING transitions.
        """
        server = view.server
        if server is None:
            return None
        if self.context is not None and hasattr(self.context, "session_for"):
            return self.context.session_for(view.name, server)
        return server


class PlanNode:
    """Base class: children, cost annotations, measured execution."""

    def __init__(self, children=(), estimated_seconds: float | None = None, detail: str = ""):
        self.children: tuple[PlanNode, ...] = tuple(children)
        self.estimated_seconds = estimated_seconds
        self.detail = detail

    # -- execution -----------------------------------------------------------------------

    def execute(self, runtime: PlanRuntime) -> list[dict]:
        """Run this node (and its children), attributing simulated seconds."""
        start = runtime.cost()
        rows = self._run(runtime)
        inclusive = runtime.cost() - start
        children_inclusive = sum(
            runtime.stats_of(child).inclusive for child in self.children
        )
        runtime.record(self, len(rows), inclusive - children_inclusive, inclusive)
        return rows

    def _run(self, runtime: PlanRuntime) -> list[dict]:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- explain -------------------------------------------------------------------------

    def label(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "PlanNode"]]:
        """Pre-order traversal yielding ``(depth, node)`` pairs."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


def _render_predicates(predicates) -> str:
    return " AND ".join(predicate.render() for predicate in predicates)


# ---------------------------------------------------------------------------
# Base-table access
# ---------------------------------------------------------------------------


class SeqScan(PlanNode):
    """Sequential heap scan of a base table."""

    def __init__(self, table, **kwargs):
        super().__init__(**kwargs)
        self.table = table

    def label(self) -> str:
        return f"SeqScan({self.table.name})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        return [dict(row) for row in self.table.scan()]


class IndexRange(PlanNode):
    """Primary-key index access; the point form is the degenerate ``[k, k]`` range."""

    def __init__(self, table, predicate: Predicate, **kwargs):
        super().__init__(**kwargs)
        self.table = table
        self.predicate = predicate

    def label(self) -> str:
        return f"IndexRange({self.table.name}.{self.predicate.render()})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        key = self.predicate.bind(runtime.parameters)
        row = self.table.try_get_by_key(key)
        return [dict(row)] if row is not None else []


class SecondaryIndexRange(PlanNode):
    """B+-tree probe over a ``CREATE INDEX`` column, plus a heap fetch per match.

    ``predicates`` are the conjuncts the index serves (``=``, ``<``, ``<=``,
    ``>``, ``>=`` on the indexed column); their bound values are tightened to
    one ``[low, high]`` interval at execution.  With ``order`` set the node is
    *index-ordered*: rows come back sorted by the indexed column (the leaf
    chain is walked in key order, reversed for ``desc``) and the planner
    elided the ``Sort``/``TopK`` above; ``limit`` then caps how many record
    ids are heap-fetched, which is the fused top-k win.

    Execution re-resolves the index by name and falls back to a full heap
    scan — sorted when ordered — whenever the index answer could differ from
    scan semantics: the index was dropped (a cached plan raced the DDL), a
    bound binds to NULL (``col = NULL`` matches NULL rows under this
    dialect's ``compare_values``, but NULLs are never indexed), or an ordered
    read finds unindexed NULL rows the ordering must still place.  The
    residual ``Filter`` above re-checks every conjunct either way, so answers
    stay byte-identical to a scan.
    """

    def __init__(
        self,
        table,
        index_name: str,
        column: str,
        predicates,
        order: str | None = None,
        limit: int | None = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.table = table
        self.index_name = index_name
        self.column = column
        self.predicates = tuple(predicates)
        self.order = order
        self.limit = limit

    def label(self) -> str:
        parts = [_render_predicates(self.predicates) or "unbounded"]
        if self.order is not None:
            parts.append(f"order={self.column} {self.order}")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return f"SecondaryIndexRange({self.table.name}.{self.index_name}: {', '.join(parts)})"

    def _bounds(self, parameters):
        """Tighten the bound conjuncts to ``(low, high, incl_low, incl_high)``.

        Returns None when any bound binds to NULL — the index cannot answer
        that (NULLs are unindexed) and the caller must fall back to a scan.
        """
        low = high = None
        include_low = include_high = True
        for predicate in self.predicates:
            value = predicate.bind(parameters)
            if value is None:
                return None
            if predicate.operator in ("=", ">", ">="):
                strict = predicate.operator == ">"
                if low is None or value > low or (value == low and strict):
                    low, include_low = value, not strict
            if predicate.operator in ("=", "<", "<="):
                strict = predicate.operator == "<"
                if high is None or value < high or (value == high and strict):
                    high, include_high = value, not strict
        return low, high, include_low, include_high

    def _fallback_scan(self) -> list[dict]:
        rows = [dict(row) for row in self.table.scan()]
        if self.order is not None:
            rows.sort(key=_sort_key_for(self.column), reverse=self.order == "desc")
        return rows

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        index = self.table.secondary_index(self.index_name)
        if index is None:
            return self._fallback_scan()
        if self.order is not None and not index.covers_all_rows(self.table.row_count()):
            # Unindexed NULL rows exist; index order would misplace (drop) them.
            return self._fallback_scan()
        bounds = self._bounds(runtime.parameters)
        if bounds is None:
            return self._fallback_scan()
        low, high, include_low, include_high = bounds
        scan = index.scan(low, high, include_low, include_high)
        if self.limit is not None and self.order != "desc":
            # Ascending fused limit: stop walking the leaf chain after k rids.
            rids = []
            for rid in scan:
                rids.append(rid)
                if len(rids) >= self.limit:
                    break
        else:
            rids = list(scan)
            if self.order == "desc":
                rids.reverse()
            if self.limit is not None:
                rids = rids[: self.limit]
        return [dict(self.table.heap.read(rid, sequential=False)) for rid in rids]


class LogicalViewScan(PlanNode):
    """Materialization of a logical (callable-backed) view."""

    def __init__(self, name: str, producer, **kwargs):
        super().__init__(**kwargs)
        self.name = name
        self.producer = producer

    def label(self) -> str:
        return f"LogicalViewScan({self.name})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        return [dict(row) for row in self.producer()]


class SystemTableScan(PlanNode):
    """Materialization of a virtual ``system.*`` observability table.

    Like :class:`LogicalViewScan`, the producer is a callable returning row
    mappings; unlike every other access path it reads process state rather
    than stored data, so its estimated cost is pinned to zero — observability
    reads must never perturb the cost model they report on.
    """

    def __init__(self, name: str, producer, **kwargs):
        kwargs.setdefault("estimated_seconds", 0.0)
        super().__init__(**kwargs)
        self.name = name
        self.producer = producer

    def label(self) -> str:
        return f"SystemTableScan({self.name})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        return [dict(row) for row in self.producer()]


# ---------------------------------------------------------------------------
# Classification-view access
# ---------------------------------------------------------------------------


class _ViewNode(PlanNode):
    """Shared machinery for nodes reading a classification view."""

    def __init__(self, view, **kwargs):
        super().__init__(**kwargs)
        self.view = view

    def _display_row(self, entity_id: object, binary_label: int) -> dict:
        return {
            self.view.definition.view_key: entity_id,
            "class": self.view.from_binary_label(binary_label),
        }

    def _binary_class(self, value: object) -> int | None:
        """Map a user-facing class literal to {-1, +1}; None when unmappable."""
        try:
            return self.view.to_binary_label(value)
        except ConfigurationError:
            return None


class ViewScan(_ViewNode):
    """Full materialization of a classification view (one coherent epoch when served)."""

    served_planned = False

    def label(self) -> str:
        return f"ViewScan({self.view.name})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        reader = runtime.view_reader(self.view)
        if reader is None:
            return [dict(row) for row in self.view.rows()]
        return [
            self._display_row(entity_id, label)
            for entity_id, label in reader.contents().items()
        ]


class ServedContentsScan(ViewScan):
    """``ViewScan`` planned against a live server (scatter/gather contents)."""

    served_planned = True

    def label(self) -> str:
        return f"ServedScatterGather({self.view.name}, contents)"


class ViewPointRead(_ViewNode):
    """Single Entity read answered by the view's direct maintainer."""

    def __init__(self, view, predicate: Predicate, **kwargs):
        super().__init__(view, **kwargs)
        self.predicate = predicate

    def label(self) -> str:
        return f"ViewPointRead({self.view.name}.{self.predicate.render()})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        key = self.predicate.bind(runtime.parameters)
        reader = runtime.view_reader(self.view)
        try:
            label = reader.label_of(key) if reader is not None else self.view.label_of(key)
        except KeyNotFoundError:
            return []
        return [self._display_row(key, label)]


class ServedPointRead(ViewPointRead):
    """Point read through the server's request batcher (session-consistent).

    With ``predicate=None`` the node is a *probe-side lookup* for
    :class:`HashJoin`: it has no key of its own and is executed via
    :meth:`execute_batch` with the join's probe keys, all driven through the
    read batcher in one coalesced burst.
    """

    is_probe_lookup = False

    def __init__(self, view, predicate: Predicate | None, **kwargs):
        if predicate is None:
            _ViewNode.__init__(self, view, **kwargs)
            self.predicate = None
            self.is_probe_lookup = True
        else:
            super().__init__(view, predicate, **kwargs)

    def label(self) -> str:
        if self.is_probe_lookup:
            return f"ServedPointRead({self.view.name}, batch)"
        return f"ServedPointRead({self.view.name}.{self.predicate.render()})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        if self.is_probe_lookup:  # only a HashJoin may drive this node
            raise SQLExecutionError(
                "a probe-side ServedPointRead executes only through its join"
            )
        return super()._run(runtime)

    def execute_batch(self, runtime: PlanRuntime, keys) -> list[dict]:
        """Fetch labels for the join's probe keys; records this node's stats."""
        start = runtime.cost()
        reader = runtime.view_reader(self.view)
        rows: list[dict] = []
        if reader is not None:
            for entity_id, label in reader.labels_of(keys).items():
                rows.append(self._display_row(entity_id, label))
        else:
            for entity_id in keys:
                try:
                    label = self.view.label_of(entity_id)
                except KeyNotFoundError:
                    continue
                rows.append(self._display_row(entity_id, label))
        inclusive = runtime.cost() - start
        runtime.record(self, len(rows), inclusive, inclusive)
        return rows


class ViewMembers(_ViewNode):
    """All Members read on the direct maintainer."""

    served_planned = False

    def __init__(self, view, class_predicate: Predicate, **kwargs):
        super().__init__(view, **kwargs)
        self.class_predicate = class_predicate

    def label(self) -> str:
        return f"ViewMembers({self.view.name}, {self.class_predicate.render()})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        label = self._binary_class(self.class_predicate.bind(runtime.parameters))
        if label is None:
            return []
        reader = runtime.view_reader(self.view)
        members = reader.all_members(label) if reader is not None else self.view.members(label)
        return [self._display_row(entity_id, label) for entity_id in members]


class ServedScatterGather(ViewMembers):
    """All Members scatter/gather across the shards (session-consistent)."""

    served_planned = True

    def label(self) -> str:
        return f"ServedScatterGather({self.view.name}, {self.class_predicate.render()})"


class ViewRangeRead(_ViewNode):
    """``class = x AND <key> <op> k`` pushed into the view's maintainer.

    The range over the entity key is resolved at execution time from the
    pushed conjuncts (placeholders included), tightened to a single
    ``[low, high]`` interval, and answered by ``read_range`` — one scan that
    classifies only in-range candidates instead of materializing the view.
    """

    served_planned = False

    def __init__(self, view, class_predicate: Predicate, range_predicates, **kwargs):
        super().__init__(view, **kwargs)
        self.class_predicate = class_predicate
        self.range_predicates = tuple(range_predicates)

    def label(self) -> str:
        rendered = _render_predicates((self.class_predicate, *self.range_predicates))
        return f"ViewRangeRead({self.view.name}, {rendered})"

    def _bounds(self, parameters):
        low = high = None
        include_low = include_high = True
        for predicate in self.range_predicates:
            value = predicate.bind(parameters)
            if predicate.operator in (">", ">="):
                strict = predicate.operator == ">"
                if low is None or value > low or (value == low and strict):
                    low, include_low = value, not strict
            else:
                strict = predicate.operator == "<"
                if high is None or value < high or (value == high and strict):
                    high, include_high = value, not strict
        return low, high, include_low, include_high

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        label = self._binary_class(self.class_predicate.bind(runtime.parameters))
        if label is None:
            return []
        low, high, include_low, include_high = self._bounds(runtime.parameters)
        reader = runtime.view_reader(self.view)
        if reader is not None:
            members = reader.range_scan(
                label, low, high, include_low=include_low, include_high=include_high
            )
        else:
            members = self.view.maintainer.read_range(
                label, low, high, include_low=include_low, include_high=include_high
            )
        return [self._display_row(entity_id, label) for entity_id in members]


class ServedRangeScan(ViewRangeRead):
    """The range pushdown as a shard operator: scatter ``read_range`` to every
    shard under one epoch, gather only the in-class, in-range ids."""

    served_planned = True

    def label(self) -> str:
        rendered = _render_predicates((self.class_predicate, *self.range_predicates))
        return f"ServedRangeScan({self.view.name}, {rendered})"


# ---------------------------------------------------------------------------
# Interior operators
# ---------------------------------------------------------------------------


class Filter(PlanNode):
    """Residual predicate re-check above an access path."""

    def __init__(self, child: PlanNode, predicates, **kwargs):
        super().__init__(children=(child,), **kwargs)
        self.predicates = tuple(predicates)

    def label(self) -> str:
        return f"Filter({_render_predicates(self.predicates)})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        rows = self.children[0].execute(runtime)
        return [row for row in rows if row_matches(row, self.predicates, runtime.parameters)]


def _sort_key_for(column: str):
    def sort_key(row: dict):
        matched = next((key for key in row if key.lower() == column.lower()), None)
        if matched is None:
            raise SQLExecutionError(f"unknown ORDER BY column {column!r}")
        value = row[matched]
        return (value is None, value)

    return sort_key


class Sort(PlanNode):
    """Full sort for ORDER BY without LIMIT."""

    def __init__(self, child: PlanNode, column: str, descending: bool, **kwargs):
        super().__init__(children=(child,), **kwargs)
        self.column = column
        self.descending = descending

    def label(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"Sort(by={self.column} {direction})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        rows = list(self.children[0].execute(runtime))
        rows.sort(key=_sort_key_for(self.column), reverse=self.descending)
        return rows


class TopK(PlanNode):
    """Ranked read: ORDER BY + LIMIT.

    With a child, a stable sort-and-slice over the child's rows.  Without one
    (``view`` set), the *fused* served top-k: per-shard heaps merged across
    the shards by the server, driven through the session.
    """

    def __init__(
        self,
        k: int,
        column: str,
        descending: bool,
        child: PlanNode | None = None,
        view=None,
        **kwargs,
    ):
        super().__init__(children=(child,) if child is not None else (), **kwargs)
        self.k = k
        self.column = column
        self.descending = descending
        self.view = view

    def label(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"TopK(k={self.k}, by={self.column} {direction})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        if self.view is not None:
            reader = runtime.view_reader(self.view)
            if reader is None:
                raise SQLExecutionError(
                    f"ORDER BY margin requires view {self.view.name!r} to be served"
                )
            key_column = self.view.definition.view_key
            return [
                {
                    key_column: entity_id,
                    "class": self.view.from_binary_label(1),
                    "margin": margin,
                }
                for entity_id, margin in reader.top_k(self.k, label=1)
            ]
        rows = list(self.children[0].execute(runtime))
        rows.sort(key=_sort_key_for(self.column), reverse=self.descending)
        return rows[: self.k]


class Limit(PlanNode):
    """LIMIT without ORDER BY."""

    def __init__(self, child: PlanNode, count: int, **kwargs):
        super().__init__(children=(child,), **kwargs)
        self.count = count

    def label(self) -> str:
        return f"Limit({self.count})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        return self.children[0].execute(runtime)[: self.count]


class Project(PlanNode):
    """Column projection; ``lookups`` are the row keys resolved at plan time."""

    def __init__(self, child: PlanNode, lookups, **kwargs):
        super().__init__(children=(child,), **kwargs)
        self.lookups = tuple(lookups)

    def label(self) -> str:
        return f"Project({', '.join(self.lookups)})"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        projected: list[dict] = []
        for row in self.children[0].execute(runtime):
            out: dict[str, object] = {}
            for wanted in self.lookups:
                matched = next((key for key in row if key.lower() == wanted.lower()), None)
                if matched is None:
                    raise SQLExecutionError(f"unknown column {wanted!r} in SELECT list")
                out[matched] = row[matched]
            projected.append(out)
        return projected


class Aggregate(PlanNode):
    """``COUNT(*)`` over the child's rows."""

    def __init__(self, child: PlanNode, **kwargs):
        super().__init__(children=(child,), **kwargs)

    def label(self) -> str:
        return "Aggregate(count)"

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        return [{"count": len(self.children[0].execute(runtime))}]


class HashJoin(PlanNode):
    """Inner equi-join: build a hash table on the right side, probe with the left.

    When the right child is a probe-side :class:`ServedPointRead` (a served
    view with no pushable predicate), the left side runs first and its join
    keys drive one batched lookup through the server's read batcher instead of
    materializing the whole view.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: str,
        right_key: str,
        right_renames: dict[str, str],
        **kwargs,
    ):
        super().__init__(children=(left, right), **kwargs)
        self.left_key = left_key
        self.right_key = right_key
        self.right_renames = dict(right_renames)

    def label(self) -> str:
        return f"HashJoin({self.left_key} = {self.right_key})"

    @staticmethod
    def _value_of(row: dict, column: str):
        matched = next((key for key in row if key.lower() == column.lower()), None)
        if matched is None:
            raise SQLExecutionError(f"unknown join column {column!r}")
        return row[matched]

    def _run(self, runtime: PlanRuntime) -> list[dict]:
        left, right = self.children
        left_rows = left.execute(runtime)
        bare_left = self.left_key.rpartition(".")[2]
        bare_right = self.right_key.rpartition(".")[2]
        if getattr(right, "is_probe_lookup", False):
            seen: dict[object, None] = {}
            for row in left_rows:
                seen.setdefault(self._value_of(row, bare_left))
            right_rows = right.execute_batch(runtime, list(seen))
        else:
            right_rows = right.execute(runtime)
        build: dict[object, list[dict]] = {}
        for row in right_rows:
            build.setdefault(self._value_of(row, bare_right), []).append(row)
        joined: list[dict] = []
        for left_row in left_rows:
            for right_row in build.get(self._value_of(left_row, bare_left), ()):
                merged = dict(left_row)
                for column, value in right_row.items():
                    merged[self.right_renames.get(column.lower(), column)] = value
                joined.append(merged)
        return joined
