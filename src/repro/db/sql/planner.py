"""The query planner: Select AST -> logical/physical plan tree.

This is the seam between the SQL front-end and execution.  ``plan_select``
resolves every name against the catalog, validates column references at *plan
time* (carrying the parser's machine-readable ``position``/``token``
diagnostics into :class:`~repro.exceptions.SQLPlanningError`), chooses an
access path per source, pushes single-source predicates below joins, and
annotates every node with a deterministic cost-model estimate.  The executor
runs the returned :class:`SelectPlan`; ``EXPLAIN`` prints it; the connection
layer caches it per SQL text and re-binds ``?`` parameters without re-planning.

Access-path choice per source:

* base table — primary-key equality takes an :class:`IndexRange` point
  lookup; otherwise every ``CREATE INDEX`` secondary index whose key
  carries servable conjuncts (``=``/``<``/``<=``/``>``/``>=``) is costed as a
  :class:`SecondaryIndexRange` (B+-tree probe + one heap fetch per estimated
  match, selectivity from the index's own statistics) against the
  :class:`SeqScan`, and the cheapest estimate wins — on the FROM side and the
  JOIN side alike.  Composite indexes follow the leftmost-prefix rule:
  equality conjuncts pin leading key columns and at most one range applies to
  the next column.  When the query's referenced columns (SELECT list, WHERE,
  ORDER BY) all sit inside an index's key, the probe becomes a *covering*
  index-only scan that skips every heap fetch and is costed without the
  random-page term.  ``ORDER BY col LIMIT k`` over an indexed column
  additionally considers the *index-ordered* form (walk the leaf chain in
  either direction — the ``prev_leaf`` back-chain makes DESC early-exit too —
  fetch at most k rows, no ``Sort``/``TopK``) against scan-and-sort;
* classification view, not served — ``read_single`` / ``read_all_members`` /
  ``read_range`` on the direct maintainer, full materialization otherwise;
* classification view, served — the batcher point read, All Members
  scatter/gather, the pushed-down :class:`ServedRangeScan` shard operator, or
  a coherent-epoch contents scan; ``ORDER BY margin DESC LIMIT k`` fuses into
  the server's per-shard top-k.

All original WHERE conjuncts are kept as a residual :class:`Filter` re-check
above the access node: the pushdown decides what the storage layer *scans*,
the re-check keeps answers byte-identical to the post-filter semantics.
"""

from __future__ import annotations

from repro.db.sql.ast import PLACEHOLDER, Comparison, Select
from repro.db.sql.plan import (
    Aggregate,
    Filter,
    HashJoin,
    IndexRange,
    Limit,
    LogicalViewScan,
    PlanNode,
    PlanRuntime,
    Predicate,
    Project,
    SecondaryIndexRange,
    SeqScan,
    ServedContentsScan,
    ServedPointRead,
    ServedRangeScan,
    ServedScatterGather,
    SystemTableScan,
    Sort,
    TopK,
    ViewMembers,
    ViewPointRead,
    ViewRangeRead,
    ViewScan,
)
from repro.exceptions import SQLPlanningError

__all__ = ["Planner", "SelectPlan"]

_RANGE_OPERATORS = ("<", "<=", ">", ">=")
#: Operators a secondary B+-tree index can serve (NULL-valued literals excluded).
_INDEXABLE_OPERATORS = ("=", "<", "<=", ">", ">=")


class SelectPlan:
    """A planned SELECT: the node tree plus what one execution needs.

    The plan is immutable and parameter-agnostic — ``run`` binds ``?``
    placeholders positionally, so a cached plan is re-executed without
    re-parsing or re-planning.  ``explain_rows`` renders the tree (optionally
    with the actuals a finished :class:`PlanRuntime` collected).
    """

    def __init__(self, root: PlanNode, select: Select, views=(), catalog_version: int = 0) -> None:
        self.root = root
        self.select = select
        self._views = tuple(views)
        #: The catalog version this plan was built against; the executor
        #: re-plans when the namespace changed (a dropped/replaced table or
        #: view must never be read through a stale cached plan).
        self.catalog_version = catalog_version

    def run(self, database, parameters, context) -> tuple[list[dict], PlanRuntime]:
        runtime = PlanRuntime(database, parameters, context, self._cost_probe(database))
        rows = self.root.execute(runtime)
        return rows, runtime

    def cost_probe(self, database):
        """The probe ``run`` uses, for callers timing whole statements (tracing)."""
        return self._cost_probe(database)

    def _cost_probe(self, database):
        """Sum every ledger this plan's sources charge (database + view stores)."""
        views = self._views

        def probe() -> float:
            total = database.stats.simulated_seconds
            for view in views:
                server = view.server
                if server is not None:
                    total += server.shards.simulated_seconds()
                else:
                    total += view.maintainer.store.stats.simulated_seconds
            return total

        return probe

    def explain_rows(self, runtime: PlanRuntime | None = None, io_delta=None) -> list[dict]:
        """One output row per plan node, pre-order, indented by depth.

        Under ANALYZE the executor also passes ``io_delta`` — the statement's
        buffer-pool :class:`~repro.db.buffer_pool.IOStatistics` delta — whose
        page totals are reported on the root row (``pages_read`` /
        ``pages_written``; None on child rows, the counters are per statement).
        """
        rows: list[dict] = []
        for depth, node in self.root.walk():
            row: dict[str, object] = {
                "node": "  " * depth + node.label(),
                "estimated_seconds": node.estimated_seconds,
            }
            if runtime is not None:
                stats = runtime.stats_of(node)
                row["actual_seconds"] = stats.seconds
                row["rows"] = stats.rows
            if io_delta is not None:
                root_row = not rows
                row["pages_read"] = io_delta.page_reads if root_row else None
                row["pages_written"] = io_delta.page_writes if root_row else None
            row["detail"] = node.detail
            rows.append(row)
        return rows


class _Source:
    """One resolved FROM source: catalog object + statically known columns."""

    def __init__(self, name: str, kind: str, obj) -> None:
        self.name = name
        self.kind = kind  # "table" | "classification_view" | "view" | "system_table"
        self.obj = obj

    def columns(self) -> list[str] | None:
        """Statically known column names (None for opaque logical/system views)."""
        if self.kind == "table":
            return list(self.obj.schema.column_names())
        if self.kind == "classification_view":
            return [self.obj.definition.view_key, "class"]
        return None

    def has_column(self, column: str) -> bool:
        known = self.columns()
        if known is None:
            return True  # opaque: defer to runtime
        return column.lower() in {name.lower() for name in known}


class Planner:
    """Builds :class:`SelectPlan` trees against one database's catalog.

    ``use_index_paths=False`` disables every index access path on base tables
    (primary-key ``IndexRange``, ``SecondaryIndexRange``, index-ordered
    reads): everything becomes a ``SeqScan`` under the residual ``Filter``.
    That is the ground-truth reference executor the differential SQL oracle
    compares index answers against.  ``use_covering_scans=False`` keeps the
    index paths but disables the index-only (covering) variant, forcing the
    heap-fetching probe — the baseline the covering benchmark compares
    against.
    """

    def __init__(
        self, database, use_index_paths: bool = True, use_covering_scans: bool = True
    ) -> None:
        self._database = database
        self._use_index_paths = use_index_paths
        self._use_covering_scans = use_covering_scans

    def _detail_flags(self, covering: bool = False) -> str:
        """The ``mode=``/``covering=`` suffix every table-access detail carries."""
        mode = getattr(self._database, "execution_mode", "batched")
        if covering:
            return f"covering=true; mode={mode}"
        return f"mode={mode}"

    # -- entry point ---------------------------------------------------------------------

    def plan_select(self, select: Select) -> SelectPlan:
        if select.join is not None:
            return self._plan_join(select)
        return self._plan_single(select)

    # -- name resolution -----------------------------------------------------------------

    def _resolve_source(self, name: str, position: int | None = None) -> _Source:
        kind = self._database.catalog.object_kind(name)
        if kind is None:
            raise SQLPlanningError(
                f"no table or view named {name!r}", position=position, token=name
            )
        if kind == "table":
            return _Source(name, kind, self._database.catalog.table(name))
        if kind == "classification_view":
            return _Source(name, kind, self._database.catalog.classification_view(name))
        if kind == "system_table":
            return _Source(name, kind, self._database.catalog.system_table(name))
        return _Source(name, kind, self._database.catalog.view(name))

    @staticmethod
    def _split_reference(reference: str) -> tuple[str | None, str]:
        qualifier, _, bare = reference.rpartition(".")
        return (qualifier or None), bare

    def _strip_qualifier(self, reference: str, source: _Source, position) -> str:
        qualifier, bare = self._split_reference(reference)
        if qualifier is not None and qualifier.lower() != source.name.lower():
            raise SQLPlanningError(
                f"unknown table qualifier {qualifier!r} in {reference!r} "
                f"(FROM {source.name})",
                position=position,
                token=reference,
            )
        return bare

    def _require_column(self, source: _Source, column: str, position, clause: str) -> None:
        if source.has_column(column):
            return
        known = source.columns() or ()
        raise SQLPlanningError(
            f"unknown column {column!r} in {clause} (source {source.name!r} "
            f"has columns {', '.join(known)})",
            position=position,
            token=column,
        )

    # -- predicates ----------------------------------------------------------------------

    @staticmethod
    def _build_predicate(comparison: Comparison, column: str, counter: list[int]) -> Predicate:
        param_index = None
        if comparison.value is PLACEHOLDER:
            param_index = counter[0]
            counter[0] += 1
        return Predicate(
            column=column,
            operator=comparison.operator,
            value=comparison.value,
            param_index=param_index,
        )

    # -- single-source planning -----------------------------------------------------------

    def _plan_single(self, select: Select) -> SelectPlan:
        source = self._resolve_source(select.table, select.table_position)
        counter = [0]
        predicates: list[Predicate] = []
        for comparison in select.where:
            column = self._strip_qualifier(comparison.column, source, comparison.position)
            if source.kind == "classification_view":
                self._validate_view_column(source, column, comparison.position, "WHERE clause")
            else:
                self._require_column(source, column, comparison.position, "WHERE clause")
            predicates.append(self._build_predicate(comparison, column, counter))

        topk_fused = False
        order_fused = False
        if source.kind == "classification_view":
            topk_fused = self._is_margin_topk(select, source, predicates)
            access = (
                self._fused_topk_node(select, source)
                if topk_fused
                else self._plan_view_access(source.obj, predicates)
            )
        elif source.kind == "table":
            access, order_fused = self._plan_table_read(source.obj, predicates, select, source)
        elif source.kind == "system_table":
            access = SystemTableScan(
                source.name,
                source.obj,
                detail="virtual observability table; reads process state, costs nothing",
            )
        else:
            access = LogicalViewScan(
                source.name,
                self._database.catalog.view(source.name),
                estimated_seconds=None,
                detail="logical views materialize through an opaque callable",
            )

        node = access
        if predicates and not topk_fused:
            node = Filter(
                node,
                predicates,
                estimated_seconds=0.0,
                detail="residual re-check of every WHERE conjunct",
            )
        node = self._wrap_order_limit(node, select, source, topk_fused, order_fused)
        node = self._wrap_output(node, select, source)
        views = [source.obj] if source.kind == "classification_view" else []
        return SelectPlan(
            node, select, views, catalog_version=self._database.catalog.version
        )

    # -- ORDER BY / LIMIT / COUNT / projection wrapping ----------------------------------

    def _wrap_order_limit(
        self,
        node: PlanNode,
        select: Select,
        source: _Source | None,
        topk_fused: bool,
        order_fused: bool = False,
    ) -> PlanNode:
        if order_fused:
            # The access path already yields rows in ORDER BY order; the Limit
            # stays (the fallback scan inside the node returns everything).
            if select.limit is not None:
                return Limit(
                    node,
                    select.limit,
                    estimated_seconds=0.0,
                    detail="rows arrive index-ordered; Sort elided",
                )
            return node
        if topk_fused or select.order_by is None:
            if select.limit is not None and not topk_fused:
                return Limit(node, select.limit, estimated_seconds=0.0)
            return node
        column = self._strip_qualifier(select.order_by, source, select.order_by_position)
        if source.kind in ("table", "classification_view"):
            self._require_column(source, column, select.order_by_position, "ORDER BY")
        if select.limit is not None:
            return TopK(
                select.limit,
                column,
                select.descending,
                child=node,
                estimated_seconds=0.0,
                detail="stable sort + slice of the child's rows",
            )
        return Sort(node, column, select.descending, estimated_seconds=0.0)

    def _wrap_output(self, node: PlanNode, select: Select, source: _Source | None) -> PlanNode:
        if select.count:
            return Aggregate(node, estimated_seconds=0.0)
        if select.columns == ("*",):
            return node
        lookups = []
        positions = select.column_positions or (None,) * len(select.columns)
        for column, position in zip(select.columns, positions):
            if source is None:
                lookups.append(column.rpartition(".")[2])
                continue
            bare = self._strip_qualifier(column, source, position)
            if source.kind == "classification_view":
                self._validate_view_column(
                    source, bare, position, "SELECT list", select=select
                )
            elif source.kind == "table":
                self._require_column(source, bare, position, "SELECT list")
            lookups.append(bare)
        return Project(node, lookups, estimated_seconds=0.0)

    # -- classification-view specifics ----------------------------------------------------

    def _validate_view_column(
        self, source: _Source, column: str, position, clause: str, select: Select | None = None
    ) -> None:
        lowered = column.lower()
        if lowered == "margin":
            if clause == "SELECT list" and select is not None and self._margin_topk_shape(select):
                return
            raise SQLPlanningError(
                f"column 'margin' of view {source.name!r} is only available on "
                "ORDER BY margin DESC LIMIT k reads",
                position=position,
                token=column,
            )
        self._require_column(source, column, position, clause)

    @staticmethod
    def _margin_topk_shape(select: Select) -> bool:
        return (
            select.order_by is not None
            and select.order_by.rpartition(".")[2].lower() == "margin"
            and select.descending
            and select.limit is not None
            and not select.where
        )

    def _is_margin_topk(self, select: Select, source: _Source, predicates) -> bool:
        """Whether this read is the fused top-k shape; rejects near-misses loudly."""
        order = select.order_by.rpartition(".")[2].lower() if select.order_by else None
        if order != "margin":
            return False
        if self._margin_topk_shape(select):
            return True
        if select.limit is not None and not select.descending and not predicates:
            raise SQLPlanningError(
                "ORDER BY margin ASC is not a top-k read: top_k answers the "
                "highest margins only",
                position=select.order_by_position,
                token=select.order_by,
            )
        raise SQLPlanningError(
            "ORDER BY margin requires the exact shape "
            "ORDER BY margin DESC LIMIT k with no WHERE clause",
            position=select.order_by_position,
            token=select.order_by,
        )

    def _fused_topk_node(self, select: Select, source: _Source) -> TopK:
        view = source.obj
        server = view.server  # captured once; see _plan_view_access
        if server is not None:
            shards = server.shards
            estimate = self._served_statement_overhead(shards) + sum(
                shard.maintainer.store.scan_cost_estimate() for shard in shards.shards
            )
            detail = f"per-shard top-k heaps + n-way merge across {len(shards)} shards"
        else:
            estimate = None
            detail = "requires the view to be served"
        return TopK(
            select.limit,
            "margin",
            True,
            view=view,
            estimated_seconds=estimate,
            detail=detail,
        )

    # -- access-path planning -------------------------------------------------------------

    def _seq_scan_node(self, table) -> SeqScan:
        cost_model = self._database.cost_model
        return SeqScan(
            table,
            estimated_seconds=cost_model.statement_overhead
            + cost_model.scan_cost(table.page_count(), table.row_count()),
            detail=(
                f"sequential scan of {table.page_count()} pages / "
                f"{table.row_count()} tuples; {self._detail_flags()}"
            ),
        )

    @staticmethod
    def _servable_by(index, predicates) -> list[Predicate]:
        """The conjuncts a single-column secondary index can answer (NULL
        literals excluded: ``col = NULL`` matches NULL rows under this
        dialect, which a B+-tree never stores)."""
        return [
            predicate
            for predicate in predicates
            if predicate.column.lower() == index.column.lower()
            and predicate.operator in _INDEXABLE_OPERATORS
            and predicate.value is not None
        ]

    @staticmethod
    def _composite_servable(index, predicates):
        """Leftmost-prefix match of ``predicates`` against a composite key.

        Walks the key columns in order, consuming pure-equality conjuncts for
        leading columns and stopping at the first column with a range (or no)
        conjunct.  Returns ``(servable, eq_count, has_range, low, high,
        bounds_known)`` — or None when even the leading column is unserved.
        """
        by_column: dict[str, list[Predicate]] = {}
        for predicate in predicates:
            if predicate.operator in _INDEXABLE_OPERATORS and predicate.value is not None:
                by_column.setdefault(predicate.column.lower(), []).append(predicate)
        servable: list[Predicate] = []
        eq_count = 0
        has_range = False
        low = high = None
        bounds_known = True
        for column in index.columns:
            conjuncts = by_column.get(column.lower())
            if not conjuncts:
                break
            servable.extend(conjuncts)
            if all(p.operator == "=" for p in conjuncts):
                eq_count += 1
                if any(p.value is PLACEHOLDER for p in conjuncts):
                    bounds_known = False
                continue
            has_range = True
            low, high, _, range_known = Planner._static_bounds(conjuncts)
            bounds_known = bounds_known and range_known
            break
        if not servable:
            return None
        return servable, eq_count, has_range, low, high, bounds_known

    def _covers(self, index, needed) -> bool:
        """Whether every column the query touches sits inside the index key."""
        if not self._use_covering_scans or needed is None:
            return False
        key = {column.lower() for column in index.columns}
        return set(needed) <= key

    @staticmethod
    def _static_bounds(servable) -> tuple[object, object, bool, bool]:
        """``(low, high, equality, bounds_known)`` from the literal conjuncts.

        Placeholder values leave the bounds unknown at plan time — the
        estimator then falls back to its default selectivities.
        """
        low = high = None
        equality = False
        known = True
        for predicate in servable:
            if predicate.operator == "=":
                equality = True
            if predicate.value is PLACEHOLDER:
                known = False
                continue
            value = predicate.value
            if predicate.operator in ("=", ">", ">="):
                if low is None or value > low:
                    low = value
            if predicate.operator in ("=", "<", "<="):
                if high is None or value < high:
                    high = value
        return low, high, equality, known

    def _index_probe_estimate(self, index, est_matches: float, fetch_rows: float) -> float:
        """Cost of one index read: descend the tree, walk ``est_matches``
        entries, heap-fetch ``fetch_rows`` of them (one random page each).

        The descent and entry walk are priced at ``tuple_cpu`` per level/entry
        — exactly what execution charges for the in-memory tree — while each
        heap fetch carries the random-page price the buffer pool may charge.
        """
        cost_model = self._database.cost_model
        return (
            cost_model.statement_overhead
            + (index.height + est_matches) * cost_model.tuple_cpu
            + fetch_rows * (cost_model.random_page_read + cost_model.tuple_cpu)
        )

    def _plan_table_access(self, table, predicates, needed=None) -> PlanNode:
        cost_model = self._database.cost_model
        if not self._use_index_paths:
            return self._seq_scan_node(table)
        pk = table.schema.primary_key
        point = None
        if pk is not None:
            point = next(
                (
                    predicate
                    for predicate in predicates
                    if predicate.operator == "=" and predicate.column.lower() == pk.lower()
                ),
                None,
            )
        if point is not None:
            return IndexRange(
                table,
                point,
                estimated_seconds=cost_model.statement_overhead + cost_model.random_page_read,
                detail=f"primary-key hash lookup on {pk!r} (1 random page); "
                f"{self._detail_flags()}",
            )
        best = self._seq_scan_node(table)
        best_cost = best.estimated_seconds
        for index in table.secondary_indexes.values():
            if index.is_composite:
                match = self._composite_servable(index, predicates)
                if match is None:
                    continue
                servable, eq_count, has_range, low, high, known = match
                est = index.estimate_prefix_matches(
                    eq_count, has_range, low=low, high=high, bounds_known=known
                )
                probe = "(" + ", ".join(repr(c) for c in index.columns) + ") prefix"
            else:
                servable = self._servable_by(index, predicates)
                if not servable:
                    continue
                low, high, equality, known = self._static_bounds(servable)
                est = index.estimate_matches(low, high, equality=equality, bounds_known=known)
                probe = f"{index.column!r}"
            covering = self._covers(index, needed)
            cost = self._index_probe_estimate(index, est, 0.0 if covering else est)
            if cost < best_cost:
                best_cost = cost
                fetch = (
                    "index-only, no heap fetches" if covering else "heap fetch per match"
                )
                best = SecondaryIndexRange(
                    table,
                    index.name,
                    index.column,
                    servable,
                    key_columns=index.columns,
                    covering=covering,
                    estimated_seconds=cost,
                    detail=(
                        f"B+-tree probe on {probe} "
                        f"(~{est:.0f} of {table.row_count()} rows) + {fetch}; "
                        f"{self._detail_flags(covering)}"
                    ),
                )
        return best

    def _needed_columns(self, select: Select, table, predicates) -> set[str]:
        """Every column this single-table read touches (for covering checks)."""
        if select.columns == ("*",) and not select.count:
            return {name.lower() for name in table.schema.column_names()}
        needed: set[str] = set()
        if not select.count:
            for column in select.columns:
                needed.add(self._split_reference(column)[1].lower())
        for predicate in predicates:
            needed.add(predicate.column.lower())
        if select.order_by is not None:
            needed.add(self._split_reference(select.order_by)[1].lower())
        return needed

    def _order_fusion_eligible(self, index, order_column: str, predicates) -> bool:
        """Whether walking ``index`` in key order yields ``order_column`` order.

        The order column must be a key column with every earlier key column
        pinned by pure-equality conjuncts (a fixed prefix makes the tuple-key
        order the order column's order), and every WHERE conjunct must be
        servable by those same columns — a residual-only conjunct could drop
        rows the early LIMIT already cut.
        """
        columns = [column.lower() for column in index.columns]
        try:
            position = columns.index(order_column.lower())
        except ValueError:
            return False
        usable = set(columns[: position + 1])
        for predicate in predicates:
            if (
                predicate.column.lower() not in usable
                or predicate.operator not in _INDEXABLE_OPERATORS
                or predicate.value is None
            ):
                return False
        for column in columns[:position]:
            conjuncts = [p for p in predicates if p.column.lower() == column]
            if not conjuncts or any(p.operator != "=" for p in conjuncts):
                return False
        return True

    def _plan_table_read(self, table, predicates, select: Select, source: _Source):
        """Access path for a FROM-side base table, with index-ordered fusion.

        Returns ``(node, order_fused)``.  ``ORDER BY col LIMIT k`` over an
        index key column (leading, or prefixed by equality-pinned columns)
        considers walking the index in key order — forward or along the
        ``prev_leaf`` back-chain for DESC — and heap-fetching at most k rows,
        priced against the best unordered access plus an n·log n sort; fusion
        requires every WHERE conjunct to be served by that same index
        (otherwise the residual Filter could drop rows the early LIMIT
        already cut).
        """
        needed = self._needed_columns(select, table, predicates)
        access = self._plan_table_access(table, predicates, needed=needed)
        if (
            not self._use_index_paths
            or select.order_by is None
            or select.limit is None
            or isinstance(access, IndexRange)  # pk point: at most one row
        ):
            return access, False
        cost_model = self._database.cost_model
        order_column = self._strip_qualifier(select.order_by, source, select.order_by_position)
        if not table.schema.has_column(order_column):
            return access, False  # _wrap_order_limit raises the planning error
        order_column = table.schema.column(order_column).name
        best = access
        best_cost = None
        order_fused = False
        for index in table.secondary_indexes.values():
            if not self._order_fusion_eligible(index, order_column, predicates):
                continue
            if index.is_composite:
                match = self._composite_servable(index, predicates)
                servable, eq_count, has_range, low, high, known = match or ((), 0, False, None, None, True)
                est = index.estimate_prefix_matches(
                    eq_count, has_range, low=low, high=high, bounds_known=known
                )
                servable = list(servable)
            else:
                servable = self._servable_by(index, predicates)
                low, high, equality, known = self._static_bounds(servable)
                est = index.estimate_matches(low, high, equality=equality, bounds_known=known)
            fetches = min(est, float(select.limit))
            # Both directions early-exit after k entries: ascending walks the
            # leaf chain forward, descending walks the prev_leaf back-chain.
            walked = fetches
            covering = self._covers(index, needed)
            fused_cost = self._index_probe_estimate(index, walked, 0.0 if covering else fetches)
            if best_cost is None:
                best_cost = (access.estimated_seconds or 0.0) + cost_model.sort_cost(
                    max(1, int(est))
                )
            if fused_cost < best_cost:
                best_cost = fused_cost
                order_fused = True
                fetch = (
                    "no heap fetches" if covering else f"at most {select.limit} heap fetches"
                )
                best = SecondaryIndexRange(
                    table,
                    index.name,
                    order_column,
                    servable,
                    order="desc" if select.descending else "asc",
                    limit=select.limit,
                    key_columns=index.columns,
                    covering=covering,
                    estimated_seconds=fused_cost,
                    detail=(
                        f"index-ordered walk of {order_column!r}; {fetch}, "
                        f"Sort/TopK elided; {self._detail_flags(covering)}"
                    ),
                )
        return best, order_fused

    @staticmethod
    def _served_statement_overhead(shards) -> float:
        return shards.shards[0].maintainer.store.cost_model.statement_overhead

    def _plan_view_access(self, view, predicates, allow_probe_lookup: bool = False) -> PlanNode:
        """Choose the access path for a classification-view source.

        ``allow_probe_lookup`` is set for the JOIN side *when the join key is
        the view's entity key*: a predicate-free served view then becomes a
        batch point-lookup driven by the probe side's join keys instead of a
        full materialization.  The serving handle is captured **once** —
        ``STOP SERVING`` on another thread between here and node construction
        must degrade to the unserved plan, never crash planning (execution
        re-resolves serving state again anyway).
        """
        key_column = view.definition.view_key.lower()
        class_eq = next(
            (p for p in predicates if p.column.lower() == "class" and p.operator == "="),
            None,
        )
        key_eq = next(
            (p for p in predicates if p.column.lower() == key_column and p.operator == "="),
            None,
        )
        key_ranges = [
            p
            for p in predicates
            if p.column.lower() == key_column and p.operator in _RANGE_OPERATORS
        ]
        server = view.server
        if allow_probe_lookup and server is not None and not predicates:
            return ServedPointRead(
                view,
                None,
                estimated_seconds=None,
                detail="batched point reads for the join's probe keys through the read batcher",
            )
        if key_eq is not None:
            return self._point_node(view, key_eq, server)
        if class_eq is not None and key_ranges:
            return self._range_node(view, class_eq, key_ranges, server)
        if class_eq is not None:
            return self._members_node(view, class_eq, server)
        return self._contents_node(view, server)

    def _point_node(self, view, predicate, server) -> PlanNode:
        if server is not None:
            shards = server.shards
            store = shards.shards[0].maintainer.store
            estimate = self._served_statement_overhead(shards) + min(
                store.point_read_cost_estimate(), store.scan_cost_estimate()
            )
            return ServedPointRead(
                view,
                predicate,
                estimated_seconds=estimate,
                detail=(
                    f"batched read on the owning shard of {len(shards)}; statement "
                    "overhead amortized per coalesced batch"
                ),
            )
        store = view.maintainer.store
        estimate = store.cost_model.statement_overhead + min(
            store.point_read_cost_estimate(), store.scan_cost_estimate()
        )
        return ViewPointRead(
            view,
            predicate,
            estimated_seconds=estimate,
            detail="direct maintainer read_single (view is not served)",
        )

    def _members_node(self, view, class_predicate, server) -> PlanNode:
        if server is not None:
            shards = server.shards
            estimate = self._served_statement_overhead(shards) + sum(
                shard.maintainer.store.scan_cost_estimate() for shard in shards.shards
            )
            return ServedScatterGather(
                view,
                class_predicate,
                estimated_seconds=estimate,
                detail=f"scatter/gather All Members across {len(shards)} shards",
            )
        store = view.maintainer.store
        return ViewMembers(
            view,
            class_predicate,
            estimated_seconds=store.cost_model.statement_overhead
            + store.scan_cost_estimate(),
            detail="direct maintainer All Members read (view is not served)",
        )

    def _range_node(self, view, class_predicate, key_ranges, server) -> PlanNode:
        if server is not None:
            shards = server.shards
            estimate = self._served_statement_overhead(shards) + sum(
                shard.maintainer.store.scan_cost_estimate() for shard in shards.shards
            )
            return ServedRangeScan(
                view,
                class_predicate,
                key_ranges,
                estimated_seconds=estimate,
                detail=(
                    f"pushed-down read_range across {len(shards)} shards; "
                    "classifies only in-range candidates"
                ),
            )
        store = view.maintainer.store
        return ViewRangeRead(
            view,
            class_predicate,
            key_ranges,
            estimated_seconds=store.cost_model.statement_overhead
            + store.scan_cost_estimate(),
            detail="maintainer read_range (view is not served)",
        )

    def _contents_node(self, view, server) -> PlanNode:
        if server is not None:
            shards = server.shards
            overhead = self._served_statement_overhead(shards)
            estimate = overhead + sum(
                shard.maintainer.store.scan_cost_estimate()
                + shard.maintainer.store.count()
                * (overhead + shard.maintainer.store.point_read_cost_estimate())
                for shard in shards.shards
            )
            return ServedContentsScan(
                view,
                estimated_seconds=estimate,
                detail=(
                    f"materialize one coherent epoch via read_single per entity "
                    f"across {len(shards)} shards"
                ),
            )
        store = view.maintainer.store
        estimate = store.cost_model.statement_overhead + store.scan_cost_estimate()
        return ViewScan(
            view,
            estimated_seconds=estimate,
            detail="materialize the view through the direct maintainer",
        )

    # -- join planning --------------------------------------------------------------------

    def _plan_join(self, select: Select) -> SelectPlan:
        join = select.join
        left = self._resolve_source(select.table, select.table_position)
        right = self._resolve_source(join.table, join.table_position)
        for source, position in ((left, select.table_position), (right, join.table_position)):
            if source.kind not in ("table", "classification_view"):
                raise SQLPlanningError(
                    f"joins support base tables and classification views; "
                    f"{source.name!r} is a {source.kind.replace('_', ' ')}",
                    position=position,
                    token=source.name,
                )

        left_key = self._resolve_join_side(join.left_column, join.left_position, left, right)
        right_key = self._resolve_join_side(join.right_column, join.right_position, left, right)
        if {left_key[0], right_key[0]} != {"left", "right"}:
            raise SQLPlanningError(
                "JOIN ... ON must reference one column from each side",
                position=join.left_position,
                token=join.left_column,
            )
        if left_key[0] == "right":
            left_key, right_key = right_key, left_key

        counter = [0]
        left_predicates: list[Predicate] = []
        right_predicates: list[Predicate] = []
        for comparison in select.where:
            side, bare = self._resolve_column_side(
                comparison.column, comparison.position, left, right, "WHERE clause"
            )
            predicate = self._build_predicate(comparison, bare, counter)
            (left_predicates if side == "left" else right_predicates).append(predicate)

        left_node = self._plan_join_side(left, left_predicates)
        # The batched probe-lookup treats the probe side's join values as
        # entity ids, so it is only sound when the join key IS the view's
        # entity key; joins on any other column (e.g. ON t.topic = v.class)
        # must materialize the view instead.
        probe_ok = (
            right.kind == "classification_view"
            and right_key[1].lower() == right.obj.definition.view_key.lower()
        )
        right_node = self._plan_join_side(
            right, right_predicates, allow_probe_lookup=probe_ok
        )

        left_columns = {name.lower() for name in left.columns()}
        right_renames = {
            name.lower(): f"{right.name}.{name}"
            for name in right.columns()
            if name.lower() in left_columns
        }
        node: PlanNode = HashJoin(
            left_node,
            right_node,
            left_key[1],
            right_key[1],
            right_renames,
            estimated_seconds=0.0,
            detail=f"build on {right.name}, probe with {left.name}",
        )
        node = self._wrap_join_order_limit(node, select, left, right, right_renames)
        node = self._wrap_join_output(node, select, left, right, right_renames)
        views = [
            source.obj
            for source in (left, right)
            if source.kind == "classification_view"
        ]
        return SelectPlan(
            node, select, views, catalog_version=self._database.catalog.version
        )

    def _plan_join_side(
        self, source: _Source, predicates, allow_probe_lookup: bool = False
    ) -> PlanNode:
        if source.kind == "classification_view":
            node = self._plan_view_access(
                source.obj, predicates, allow_probe_lookup=allow_probe_lookup
            )
        else:
            node = self._plan_table_access(source.obj, predicates)
        if predicates:
            node = Filter(
                node,
                predicates,
                estimated_seconds=0.0,
                detail="residual re-check of every WHERE conjunct",
            )
        return node

    def _resolve_join_side(
        self, reference: str, position, left: _Source, right: _Source
    ) -> tuple[str, str]:
        side, bare = self._resolve_column_side(reference, position, left, right, "JOIN ON")
        return side, bare

    def _resolve_column_side(
        self, reference: str, position, left: _Source, right: _Source, clause: str
    ) -> tuple[str, str]:
        """Which side an (optionally qualified) column belongs to, plus its bare name."""
        qualifier, bare = self._split_reference(reference)
        if qualifier is not None:
            for side_name, source in (("left", left), ("right", right)):
                if qualifier.lower() == source.name.lower():
                    self._require_column(source, bare, position, clause)
                    return side_name, bare
            raise SQLPlanningError(
                f"unknown table qualifier {qualifier!r} in {reference!r}",
                position=position,
                token=reference,
            )
        in_left = left.has_column(bare)
        in_right = right.has_column(bare)
        if in_left and in_right:
            raise SQLPlanningError(
                f"ambiguous column {bare!r}: qualify it with "
                f"{left.name!r} or {right.name!r}",
                position=position,
                token=reference,
            )
        if in_left:
            return "left", bare
        if in_right:
            return "right", bare
        raise SQLPlanningError(
            f"unknown column {bare!r} in {clause} (neither {left.name!r} "
            f"nor {right.name!r} has it)",
            position=position,
            token=reference,
        )

    def _join_lookup(
        self, reference: str, position, left: _Source, right: _Source,
        right_renames: dict[str, str], clause: str,
    ) -> str:
        side, bare = self._resolve_column_side(reference, position, left, right, clause)
        if side == "right":
            return right_renames.get(bare.lower(), bare)
        return bare

    def _wrap_join_order_limit(
        self, node: PlanNode, select: Select, left: _Source, right: _Source,
        right_renames: dict[str, str],
    ) -> PlanNode:
        if select.order_by is None:
            if select.limit is not None:
                return Limit(node, select.limit, estimated_seconds=0.0)
            return node
        lookup = self._join_lookup(
            select.order_by, select.order_by_position, left, right, right_renames, "ORDER BY"
        )
        if select.limit is not None:
            return TopK(
                select.limit,
                lookup,
                select.descending,
                child=node,
                estimated_seconds=0.0,
                detail="stable sort + slice of the joined rows",
            )
        return Sort(node, lookup, select.descending, estimated_seconds=0.0)

    def _wrap_join_output(
        self, node: PlanNode, select: Select, left: _Source, right: _Source,
        right_renames: dict[str, str],
    ) -> PlanNode:
        if select.count:
            return Aggregate(node, estimated_seconds=0.0)
        if select.columns == ("*",):
            return node
        positions = select.column_positions or (None,) * len(select.columns)
        lookups = [
            self._join_lookup(column, position, left, right, right_renames, "SELECT list")
            for column, position in zip(select.columns, positions)
        ]
        return Project(node, lookups, estimated_seconds=0.0)
