"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.db.sql.ast import (
    PLACEHOLDER,
    CheckpointView,
    ColumnDefinition,
    Comparison,
    CreateClassificationView,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Explain,
    Insert,
    Join,
    RestoreView,
    Select,
    ServeView,
    Statement,
    StopServing,
    Update,
)
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.exceptions import SQLSyntaxError

__all__ = ["parse"]


def parse(sql: str) -> Statement:
    """Parse a single SQL statement into an AST node."""
    return _Parser(tokenize(sql)).parse_statement()


class _Parser:
    """A hand-written recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token utilities ----------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.type is not TokenType.END:
            self._position += 1
        return token

    def _expect_keyword(self, *keywords: str) -> Token:
        token = self._advance()
        if not token.matches_keyword(*keywords):
            raise SQLSyntaxError(
                f"expected {' or '.join(k.upper() for k in keywords)} "
                f"but found {token.value!r} at position {token.position}",
                position=token.position,
                token=token.value,
            )
        return token

    def _expect_punctuation(self, symbol: str) -> Token:
        token = self._advance()
        if token.type is not TokenType.PUNCTUATION or token.value != symbol:
            raise SQLSyntaxError(
                f"expected {symbol!r} but found {token.value!r} at position {token.position}",
                position=token.position,
                token=token.value,
            )
        return token

    def _expect_identifier(self) -> str:
        token = self._advance()
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise SQLSyntaxError(
                f"expected an identifier but found {token.value!r} at position {token.position}",
                position=token.position,
                token=token.value,
            )
        return token.value

    def _expect_string(self, what: str) -> str:
        token = self._advance()
        if token.type is not TokenType.STRING:
            raise SQLSyntaxError(
                f"expected a string literal ({what}) but found {token.value!r} "
                f"at position {token.position}",
                position=token.position,
                token=token.value,
            )
        return token.value

    def _parse_table_name(self) -> tuple[str, int]:
        """A table reference (``papers`` or the dotted ``system.metrics``)
        plus its position.  One dotted segment is allowed, matching the
        ``system.*`` virtual-table namespace; deeper nesting is a syntax
        error at the second dot's identifier."""
        token = self._peek()
        name = self._expect_identifier()
        if self._accept_punctuation("."):
            name = f"{name}.{self._expect_identifier()}"
        return name, token.position

    def _parse_column_reference(self) -> tuple[str, int]:
        """An optionally qualified column (``id`` or ``t.id``) plus its position."""
        token = self._peek()
        name = self._expect_identifier()
        if self._accept_punctuation("."):
            name = f"{name}.{self._expect_identifier()}"
        return name, token.position

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._peek().matches_keyword(*keywords):
            self._advance()
            return True
        return False

    def _accept_punctuation(self, symbol: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.value == symbol:
            self._advance()
            return True
        return False

    def _at_end(self) -> bool:
        token = self._peek()
        return token.type is TokenType.END or (
            token.type is TokenType.PUNCTUATION and token.value == ";"
        )

    # -- literals -----------------------------------------------------------------------

    def _parse_literal(self) -> object:
        token = self._advance()
        if token.type is TokenType.PLACEHOLDER:
            return PLACEHOLDER
        if token.type is TokenType.NUMBER:
            text = token.value
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        if token.type is TokenType.STRING:
            return token.value
        if token.matches_keyword("null"):
            return None
        if token.matches_keyword("true"):
            return True
        if token.matches_keyword("false"):
            return False
        raise SQLSyntaxError(
            f"expected a literal but found {token.value!r} at position {token.position}",
            position=token.position,
            token=token.value,
        )

    # -- statements ------------------------------------------------------------------------

    def parse_statement(self) -> Statement:
        """Parse exactly one statement and ensure nothing trails it."""
        statement = self._parse_statement_body()
        self._accept_punctuation(";")
        trailing = self._peek()
        if trailing.type is not TokenType.END:
            raise SQLSyntaxError(
                f"unexpected trailing input {trailing.value!r} at position {trailing.position}",
                position=trailing.position,
                token=trailing.value,
            )
        return statement

    def _parse_statement_body(self) -> Statement:
        token = self._peek()
        if token.matches_keyword("create"):
            return self._parse_create()
        if token.matches_keyword("drop"):
            return self._parse_drop()
        if token.matches_keyword("insert"):
            return self._parse_insert()
        if token.matches_keyword("select"):
            return self._parse_select()
        if token.matches_keyword("update"):
            return self._parse_update()
        if token.matches_keyword("delete"):
            return self._parse_delete()
        if token.matches_keyword("serve"):
            return self._parse_serve()
        if token.matches_keyword("stop"):
            return self._parse_stop_serving()
        if token.matches_keyword("checkpoint"):
            return self._parse_checkpoint()
        if token.matches_keyword("restore"):
            return self._parse_restore()
        if token.matches_keyword("explain"):
            self._advance()
            analyze = self._accept_keyword("analyze")
            return Explain(statement=self._parse_statement_body(), analyze=analyze)
        raise SQLSyntaxError(
            f"unsupported statement starting with {token.value!r} "
            f"at position {token.position}",
            position=token.position,
            token=token.value,
        )

    def _parse_create(self) -> Statement:
        self._expect_keyword("create")
        if self._peek().matches_keyword("classification"):
            return self._parse_create_classification_view()
        if self._peek().matches_keyword("index"):
            return self._parse_create_index()
        self._expect_keyword("table")
        table = self._expect_identifier()
        self._expect_punctuation("(")
        columns: list[ColumnDefinition] = []
        while True:
            name = self._expect_identifier()
            type_name = self._expect_identifier()
            nullable = True
            primary_key = False
            while True:
                if self._accept_keyword("not"):
                    self._expect_keyword("null")
                    nullable = False
                elif self._accept_keyword("primary"):
                    self._expect_keyword("key")
                    primary_key = True
                    nullable = False
                else:
                    break
            columns.append(ColumnDefinition(name, type_name, nullable, primary_key))
            if not self._accept_punctuation(","):
                break
        self._expect_punctuation(")")
        return CreateTable(table=table, columns=tuple(columns))

    def _parse_create_classification_view(self) -> CreateClassificationView:
        self._expect_keyword("classification")
        self._expect_keyword("view")
        view_name = self._expect_identifier()
        self._expect_keyword("key")
        view_key = self._expect_identifier()

        self._expect_keyword("entities")
        self._expect_keyword("from")
        entities_table = self._expect_identifier()
        self._expect_keyword("key")
        entities_key = self._expect_identifier()

        labels_table: str | None = None
        labels_column: str | None = None
        if self._accept_keyword("labels"):
            self._expect_keyword("from")
            labels_table = self._expect_identifier()
            self._expect_keyword("label")
            labels_column = self._expect_identifier()

        self._expect_keyword("examples")
        self._expect_keyword("from")
        examples_table = self._expect_identifier()
        self._expect_keyword("key")
        examples_key = self._expect_identifier()
        self._expect_keyword("label")
        examples_label = self._expect_identifier()

        self._expect_keyword("feature")
        self._expect_keyword("function")
        feature_function = self._expect_identifier()

        method: str | None = None
        if self._accept_keyword("using"):
            method = self._expect_identifier()

        return CreateClassificationView(
            view_name=view_name,
            view_key=view_key,
            entities_table=entities_table,
            entities_key=entities_key,
            labels_table=labels_table,
            labels_column=labels_column,
            examples_table=examples_table,
            examples_key=examples_key,
            examples_label=examples_label,
            feature_function=feature_function,
            method=method,
        )

    def _parse_create_index(self) -> CreateIndex:
        self._expect_keyword("index")
        name = self._expect_identifier()
        self._expect_keyword("on")
        table_token = self._peek()
        table = self._expect_identifier()
        self._expect_punctuation("(")
        columns: list[str] = []
        positions: list[int | None] = []
        while True:
            column_token = self._peek()
            columns.append(self._expect_identifier())
            positions.append(column_token.position)
            if not self._accept_punctuation(","):
                break
        self._expect_punctuation(")")
        return CreateIndex(
            name=name,
            table=table,
            columns=tuple(columns),
            table_position=table_token.position,
            column_positions=tuple(positions),
        )

    def _parse_drop(self) -> Statement:
        self._expect_keyword("drop")
        if self._accept_keyword("index"):
            return DropIndex(name=self._expect_identifier())
        self._expect_keyword("table")
        return DropTable(table=self._expect_identifier())

    def _parse_insert(self) -> Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_identifier()
        columns: list[str] = []
        if self._accept_punctuation("("):
            while True:
                columns.append(self._expect_identifier())
                if not self._accept_punctuation(","):
                    break
            self._expect_punctuation(")")
        self._expect_keyword("values")
        rows: list[tuple[object, ...]] = []
        while True:
            self._expect_punctuation("(")
            values: list[object] = []
            while True:
                values.append(self._parse_literal())
                if not self._accept_punctuation(","):
                    break
            self._expect_punctuation(")")
            rows.append(tuple(values))
            if not self._accept_punctuation(","):
                break
        return Insert(table=table, columns=tuple(columns), rows=tuple(rows))

    def _parse_where(self) -> tuple[Comparison, ...]:
        if not self._accept_keyword("where"):
            return ()
        comparisons: list[Comparison] = []
        while True:
            column, position = self._parse_column_reference()
            operator_token = self._advance()
            if operator_token.type is not TokenType.OPERATOR:
                raise SQLSyntaxError(
                    f"expected a comparison operator but found {operator_token.value!r} "
                    f"at position {operator_token.position}",
                    position=operator_token.position,
                    token=operator_token.value,
                )
            operator = "!=" if operator_token.value == "<>" else operator_token.value
            value = self._parse_literal()
            comparisons.append(
                Comparison(column=column, operator=operator, value=value, position=position)
            )
            if not self._accept_keyword("and"):
                break
        return tuple(comparisons)

    def _parse_select(self) -> Select:
        self._expect_keyword("select")
        count = False
        columns: list[str] = []
        column_positions: list[int] = []
        if self._peek().matches_keyword("count"):
            self._advance()
            self._expect_punctuation("(")
            self._expect_punctuation("*")
            self._expect_punctuation(")")
            count = True
        elif self._accept_punctuation("*"):
            columns = ["*"]
        else:
            while True:
                column, position = self._parse_column_reference()
                columns.append(column)
                column_positions.append(position)
                if not self._accept_punctuation(","):
                    break
        self._expect_keyword("from")
        table, table_position = self._parse_table_name()
        join = self._parse_join()
        where = self._parse_where()
        order_by: str | None = None
        order_by_position: int | None = None
        descending = False
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by, order_by_position = self._parse_column_reference()
            if self._accept_keyword("desc"):
                descending = True
            else:
                self._accept_keyword("asc")
        limit: int | None = None
        if self._accept_keyword("limit"):
            literal_token = self._peek()
            literal = self._parse_literal()
            if not isinstance(literal, int):
                raise SQLSyntaxError(
                    f"LIMIT expects an integer literal, found {literal_token.value!r} "
                    f"at position {literal_token.position}",
                    position=literal_token.position,
                    token=literal_token.value,
                )
            limit = literal
        return Select(
            table=table,
            columns=tuple(columns) if columns else ("*",),
            where=where,
            order_by=order_by,
            descending=descending,
            limit=limit,
            count=count,
            join=join,
            column_positions=tuple(column_positions) if not count and columns != ["*"] else (),
            order_by_position=order_by_position,
            table_position=table_position,
        )

    def _parse_join(self) -> Join | None:
        """``[INNER] JOIN table ON a.x = b.y`` — None when absent."""
        if self._accept_keyword("inner"):
            self._expect_keyword("join")
        elif not self._accept_keyword("join"):
            return None
        table, table_position = self._parse_table_name()
        self._expect_keyword("on")
        left_column, left_position = self._parse_column_reference()
        operator = self._advance()
        if operator.type is not TokenType.OPERATOR or operator.value != "=":
            raise SQLSyntaxError(
                f"JOIN supports equality conditions only; found {operator.value!r} "
                f"at position {operator.position}",
                position=operator.position,
                token=operator.value,
            )
        right_column, right_position = self._parse_column_reference()
        return Join(
            table=table,
            left_column=left_column,
            right_column=right_column,
            table_position=table_position,
            left_position=left_position,
            right_position=right_position,
        )

    def _parse_update(self) -> Update:
        self._expect_keyword("update")
        table = self._expect_identifier()
        self._expect_keyword("set")
        assignments: list[tuple[str, object]] = []
        while True:
            column = self._expect_identifier()
            operator = self._advance()
            if operator.type is not TokenType.OPERATOR or operator.value != "=":
                raise SQLSyntaxError(
                    f"expected '=' in SET clause but found {operator.value!r} "
                    f"at position {operator.position}",
                    position=operator.position,
                    token=operator.value,
                )
            assignments.append((column, self._parse_literal()))
            if not self._accept_punctuation(","):
                break
        where = self._parse_where()
        return Update(table=table, assignments=tuple(assignments), where=where)

    def _parse_delete(self) -> Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_identifier()
        where = self._parse_where()
        return Delete(table=table, where=where)

    # -- serving statements ------------------------------------------------------------------

    def _parse_with_options(self) -> dict[str, object]:
        """``WITH (name = literal, ...)`` — empty dict when absent."""
        if not self._accept_keyword("with"):
            return {}
        self._expect_punctuation("(")
        options: dict[str, object] = {}
        while True:
            name = self._expect_identifier()
            operator = self._advance()
            if operator.type is not TokenType.OPERATOR or operator.value != "=":
                raise SQLSyntaxError(
                    f"expected '=' in WITH clause but found {operator.value!r} "
                    f"at position {operator.position}",
                    position=operator.position,
                    token=operator.value,
                )
            options[name.lower()] = self._parse_literal()
            if not self._accept_punctuation(","):
                break
        self._expect_punctuation(")")
        return options

    def _parse_serve(self) -> ServeView:
        self._expect_keyword("serve")
        self._expect_keyword("view")
        view = self._expect_identifier()
        options = self._parse_with_options()
        return ServeView(view=view, options=options)

    def _parse_stop_serving(self) -> StopServing:
        self._expect_keyword("stop")
        self._expect_keyword("serving")
        return StopServing(view=self._expect_identifier())

    def _parse_checkpoint(self) -> CheckpointView:
        self._expect_keyword("checkpoint")
        self._expect_keyword("view")
        view = self._expect_identifier()
        self._expect_keyword("to")
        path = self._expect_string("checkpoint path")
        options = self._parse_with_options()
        return CheckpointView(view=view, path=path, options=options)

    def _parse_restore(self) -> RestoreView:
        self._expect_keyword("restore")
        self._expect_keyword("view")
        view = self._expect_identifier()
        self._expect_keyword("from")
        path = self._expect_string("checkpoint path")
        options = self._parse_with_options()
        return RestoreView(view=view, path=path, options=options)
