"""A small SQL dialect for the relational substrate.

The dialect covers what the paper's examples and experiments need:

* ``CREATE TABLE`` / ``DROP TABLE``
* ``INSERT INTO ... VALUES`` (with ``?`` placeholders for prepared statements)
* ``SELECT`` with ``*``, column lists or ``COUNT(*)``, ``WHERE`` conjunctions
  of simple comparisons, ``ORDER BY`` and ``LIMIT``
* ``UPDATE ... SET ... WHERE`` and ``DELETE FROM ... WHERE``
* ``CREATE CLASSIFICATION VIEW`` — the model-based view DDL of Example 2.1

Parsing produces plain dataclass AST nodes (:mod:`repro.db.sql.ast`); the
executor (:mod:`repro.db.sql.executor`) evaluates them against a
:class:`~repro.db.database.Database`.
"""

from repro.db.sql.ast import (
    ColumnDefinition,
    Comparison,
    CreateClassificationView,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Update,
)
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.db.sql.parser import parse
from repro.db.sql.executor import SQLExecutor

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "SQLExecutor",
    "CreateTable",
    "DropTable",
    "ColumnDefinition",
    "Insert",
    "Select",
    "Update",
    "Delete",
    "Comparison",
    "CreateClassificationView",
]
