"""A small SQL dialect for the relational substrate.

The dialect covers what the paper's examples and experiments need:

* ``CREATE TABLE`` / ``DROP TABLE``
* ``CREATE INDEX name ON table (column)`` and the composite form
  ``CREATE INDEX name ON table (col_a, col_b, ...)`` / ``DROP INDEX name`` —
  secondary B+-tree indexes on base-table columns, maintained inline on every
  write and chosen by the planner whenever the cost model prices the index
  probe below the sequential scan.  Composite indexes key on tuples and serve
  **leftmost-prefix** predicates (equalities pinning the leading columns plus
  at most one range on the next); a row with NULL in *any* key column is
  unindexed.  When the SELECT's columns all live inside the index key the
  planner emits the **covering** (index-only) variant, which skips the
  per-match heap fetch entirely
* ``INSERT INTO ... VALUES`` (with ``?`` placeholders for prepared statements)
* ``SELECT`` with ``*``, column lists or ``COUNT(*)``, ``WHERE`` conjunctions
  of simple comparisons (columns optionally qualified as ``t.col``),
  ``ORDER BY``, ``LIMIT``, and a single inner equi-join
  (``FROM t JOIN v ON t.id = v.id``)
* ``UPDATE ... SET ... WHERE`` and ``DELETE FROM ... WHERE``
* ``CREATE CLASSIFICATION VIEW`` — the model-based view DDL of Example 2.1
* the serving lifecycle verbs (``SERVE VIEW`` / ``STOP SERVING`` /
  ``CHECKPOINT VIEW ... TO [WITH (incremental = true, parent = '...')]`` /
  ``RESTORE VIEW ... FROM``), all taking ``WITH (...)`` options
* ``EXPLAIN`` and ``EXPLAIN ANALYZE`` (the latter also reports buffer-pool
  pages read/written by the statement)
* the virtual ``system.*`` observability tables, readable with plain
  ``SELECT`` (filters/ORDER BY/LIMIT apply; joins are rejected):

  - ``system.metrics`` — every registry sample as ``(name, kind, value)``
  - ``system.served_views`` — one dashboard row per live ``SERVE VIEW``
  - ``system.connections`` — one row per live wire connection when a
    :class:`repro.net.server.SQLServer` fronts this database (empty otherwise)
  - ``system.plan_cache`` — per-connection plan-cache hit/miss/invalidation
  - ``system.slow_queries`` — statements whose simulated cost met
    ``Observability.slow_query_seconds``, with span counts
  - ``system.traces`` — the recent-statement ring flattened to one row per
    span (parse → plan → execute → plan nodes / batcher rounds / shards)

  System-table scans cost zero simulated seconds by construction —
  observability reads must never perturb the cost model they report on.

The read path is **plan-first**; the pipeline is::

    SQL text --tokenize/parse--> AST            (lexer.py, parser.py, ast.py)
        --Planner.plan_select--> logical plan    (planner.py: access-path choice,
                                                  predicate pushdown, validation)
        --cost annotation-----> physical plan    (plan.py: SeqScan, IndexRange,
                                                  SecondaryIndexRange,
                                                  ServedPointRead, ServedScatterGather,
                                                  ServedRangeScan, TopK, Filter,
                                                  Project, HashJoin, Limit, ...)
        --SQLExecutor---------> rows             (executor.py walks the tree)

Execution is **batched by default**: the executor walks the same tree
chunk-to-chunk (columnar :class:`~repro.db.sql.plan.Chunk` batches, NumPy
predicate kernels in ``Filter``), materializing rows only at the root; the
explicit ``execution_mode="row"`` runs tuple-at-a-time and charges the cost
model's ``row_interpret_cpu`` per tuple per operator.  Every access node's
``EXPLAIN`` detail carries a ``mode=batched|row`` flag (and
``covering=true`` for index-only scans).

``EXPLAIN`` prints exactly the tree the executor would walk; ``EXPLAIN
ANALYZE`` walks it and reports actual vs estimated simulated seconds per
node.  Planning errors (unknown columns, ambiguous join references,
unsupported read shapes) surface at plan time as
:class:`~repro.exceptions.SQLPlanningError` carrying the parser's
machine-readable ``position``/``token`` diagnostics.  The connection layer
(:mod:`repro.connection`) caches ``SelectPlan`` objects per SQL text, so
repeated statements re-bind ``?`` parameters without re-parsing or
re-planning.

The dialect is also servable over TCP (:mod:`repro.net`).  The wire format is
deliberately boring: every frame is a 4-byte big-endian length followed by
that many bytes of UTF-8 JSON, capped at 64 MiB.  The server greets with
``{"server": "repro-serve", "protocol": 1, "connection": <name>}``; requests
are ``{"op": "query", "sql": ..., "params": [...]}`` (plus ``executemany`` /
``ping`` / ``goodbye``), responses ``{"ok": true, "rows": ..., "rowcount":
..., "statement_type": ...}`` or ``{"ok": false, "error": {...}}`` where the
error object names the exception class and carries the same
``position``/``token`` diagnostics described above, so network clients see
exactly the errors in-process callers do.
"""

from repro.db.sql.ast import (
    ColumnDefinition,
    Comparison,
    CreateClassificationView,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Explain,
    Insert,
    Join,
    Select,
    Update,
)
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.db.sql.parser import parse
from repro.db.sql.plan import PlanNode
from repro.db.sql.planner import Planner, SelectPlan
from repro.db.sql.executor import SQLExecutor

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "SQLExecutor",
    "Planner",
    "SelectPlan",
    "PlanNode",
    "CreateTable",
    "DropTable",
    "CreateIndex",
    "DropIndex",
    "ColumnDefinition",
    "Insert",
    "Select",
    "Update",
    "Delete",
    "Comparison",
    "Join",
    "Explain",
    "CreateClassificationView",
]
