"""AST node dataclasses for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Statement",
    "ColumnDefinition",
    "CreateTable",
    "DropTable",
    "CreateIndex",
    "DropIndex",
    "Insert",
    "Comparison",
    "Join",
    "Select",
    "Update",
    "Delete",
    "CreateClassificationView",
    "ServeView",
    "StopServing",
    "CheckpointView",
    "RestoreView",
    "Explain",
]


class Statement:
    """Marker base class for parsed statements."""


@dataclass(frozen=True)
class ColumnDefinition:
    """One column in a ``CREATE TABLE``: name, SQL type name, constraints."""

    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    """``CREATE TABLE name (columns...)``."""

    table: str
    columns: tuple[ColumnDefinition, ...]


@dataclass(frozen=True)
class DropTable(Statement):
    """``DROP TABLE name``."""

    table: str


@dataclass(frozen=True)
class CreateIndex(Statement):
    """``CREATE INDEX name ON table (col[, col...])`` — a secondary B+-tree index.

    A single column builds a value-keyed index; multiple columns build a
    composite index keyed on the tuple of values (leftmost-prefix matching in
    the planner).  ``table_position``/``column_positions`` carry the source
    offsets of the table and column tokens for machine-readable execution
    diagnostics.
    """

    name: str
    table: str
    columns: tuple[str, ...]
    table_position: int | None = field(default=None, compare=False)
    column_positions: tuple[int | None, ...] = field(default=(), compare=False)

    @property
    def column(self) -> str:
        """Leading indexed column (the whole key for single-column indexes)."""
        return self.columns[0]


@dataclass(frozen=True)
class DropIndex(Statement):
    """``DROP INDEX name`` — detach a secondary index (maintenance stops)."""

    name: str


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO table (columns) VALUES (...), (...)``.

    Values may contain the sentinel :data:`PLACEHOLDER` for prepared-statement
    parameters bound at execution time.
    """

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]


#: Sentinel used in Insert/Comparison values for ``?`` placeholders.
PLACEHOLDER = object()


@dataclass(frozen=True)
class Comparison:
    """A simple predicate ``column op literal`` (op in =, !=, <, <=, >, >=).

    ``column`` may be qualified (``t.id``) in join queries.  ``position`` is
    the character offset of the column token in the source text (excluded
    from equality) so the planner can attach machine-readable diagnostics to
    semantic errors, mirroring :class:`~repro.exceptions.SQLSyntaxError`.
    """

    column: str
    operator: str
    value: object
    position: int | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Join:
    """``JOIN table ON left = right`` — a single inner equi-join.

    The two ON references may be qualified with either source's name; the
    planner resolves which side each belongs to.
    """

    table: str
    left_column: str
    right_column: str
    table_position: int | None = field(default=None, compare=False)
    left_position: int | None = field(default=None, compare=False)
    right_position: int | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Select(Statement):
    """``SELECT columns FROM table [JOIN t ON ...] [WHERE ...] [ORDER BY ...] [LIMIT n]``.

    ``column_positions`` parallels ``columns`` with each column token's
    character offset (empty for ``*`` / COUNT); positions are excluded from
    equality and exist only for plan-time diagnostics.
    """

    table: str
    columns: tuple[str, ...]  # ("*",) or explicit column names
    where: tuple[Comparison, ...] = ()
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    count: bool = False  # True for SELECT COUNT(*)
    join: Join | None = None
    column_positions: tuple[int, ...] = field(default=(), compare=False)
    order_by_position: int | None = field(default=None, compare=False)
    table_position: int | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = value, ... [WHERE ...]``."""

    table: str
    assignments: tuple[tuple[str, object], ...]
    where: tuple[Comparison, ...] = ()


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: tuple[Comparison, ...] = ()


@dataclass(frozen=True)
class CreateClassificationView(Statement):
    """The model-based view DDL of the paper's Example 2.1.

    ::

        CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
        ENTITIES FROM Papers KEY id
        LABELS FROM Paper_Area LABEL l
        EXAMPLES FROM Example_Papers KEY id LABEL l
        FEATURE FUNCTION tf_bag_of_words
        USING SVM
    """

    view_name: str
    view_key: str
    entities_table: str
    entities_key: str
    labels_table: str | None
    labels_column: str | None
    examples_table: str
    examples_key: str
    examples_label: str
    feature_function: str
    method: str | None = None
    options: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ServeView(Statement):
    """``SERVE VIEW name [WITH (option = literal, ...)]``.

    Puts a classification view behind the concurrent serving front-end;
    ``options`` carries the ``WITH`` clause verbatim (``shards``,
    ``max_read_batch``, ``max_wait_s``, ``adaptive_batching``, ...).
    """

    view: str
    options: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class StopServing(Statement):
    """``STOP SERVING name`` — quiesce the server and hand the view back."""

    view: str


@dataclass(frozen=True)
class CheckpointView(Statement):
    """``CHECKPOINT VIEW name TO 'path' [WITH (...)]`` — consistent snapshot of a served view.

    Options: ``incremental = true`` rewrites only shards whose epoch moved
    since the parent checkpoint; ``parent = 'path'`` overrides the default
    parent (the server's last checkpoint).
    """

    view: str
    path: str
    options: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class RestoreView(Statement):
    """``RESTORE VIEW name FROM 'path' [WITH (...)]`` — warm-start serving."""

    view: str
    path: str
    options: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN [ANALYZE] <statement>``.

    Plain EXPLAIN prints the deterministic cost-model plan without executing
    anything; EXPLAIN ANALYZE executes the plan and reports actual next to
    estimated simulated seconds per plan node (SELECT only).
    """

    statement: Statement
    analyze: bool = False
