"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SQLSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    """Lexical categories produced by :func:`tokenize`."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PLACEHOLDER = "placeholder"
    END = "end"


#: Words treated as keywords (case-insensitive). Everything else is an identifier.
KEYWORDS = frozenset(
    {
        "create", "table", "drop", "insert", "into", "values", "select", "from",
        "where", "and", "or", "not", "null", "primary", "key", "update", "set",
        "delete", "order", "by", "asc", "desc", "limit", "count", "classification",
        "view", "entities", "labels", "label", "examples", "feature", "function",
        "using", "as", "true", "false", "serve", "serving", "stop", "checkpoint",
        "restore", "to", "with", "explain", "analyze", "join", "inner", "on",
        "index",
    }
)

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")
_PUNCTUATION = "(),;*."


@dataclass(frozen=True)
class Token:
    """One lexical token: its type, normalized text, and position in the input."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        """True when this token is one of the given keywords (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value.lower() in {
            k.lower() for k in keywords
        }


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SQLSyntaxError` on unknown characters."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and index + 1 < length and sql[index + 1] == "-":
            # SQL comment: skip to end of line.
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char == "?":
            tokens.append(Token(TokenType.PLACEHOLDER, "?", index))
            index += 1
            continue
        if char in ("'", '"'):
            end = index + 1
            pieces: list[str] = []
            while end < length:
                if sql[end] == char:
                    if end + 1 < length and sql[end + 1] == char:
                        pieces.append(char)
                        end += 2
                        continue
                    break
                pieces.append(sql[end])
                end += 1
            if end >= length:
                raise SQLSyntaxError(
                    f"unterminated string literal at position {index}",
                    position=index,
                    token=sql[index],
                )
            tokens.append(Token(TokenType.STRING, "".join(pieces), index))
            index = end + 1
            continue
        matched_operator = next((op for op in _OPERATORS if sql.startswith(op, index)), None)
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, index))
            index += len(matched_operator)
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue
        if char.isdigit() or (
            char in "+-" and index + 1 < length and (sql[index + 1].isdigit() or sql[index + 1] == ".")
        ):
            end = index + 1
            while end < length and (sql[end].isdigit() or sql[end] in ".eE+-"):
                # Stop a numeric token when +/- is not part of an exponent.
                if sql[end] in "+-" and sql[end - 1] not in "eE":
                    break
                end += 1
            tokens.append(Token(TokenType.NUMBER, sql[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            token_type = TokenType.KEYWORD if word.lower() in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(token_type, word, index))
            index = end
            continue
        raise SQLSyntaxError(
            f"unexpected character {char!r} at position {index}",
            position=index,
            token=char,
        )
    tokens.append(Token(TokenType.END, "", length))
    return tokens
