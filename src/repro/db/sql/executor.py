"""Execution of parsed SQL statements against a Database.

Reads are **plan-first**: every ``SELECT`` — base table, unserved view,
served view, joins — is compiled by the :class:`~repro.db.sql.planner.Planner`
into a :class:`~repro.db.sql.planner.SelectPlan` of typed
:mod:`~repro.db.sql.plan` nodes and executed by walking that tree; the
executor itself contains no statement-shape dispatch.  ``EXPLAIN`` prints the
same plan the executor would run; ``EXPLAIN ANALYZE`` runs it and reports
actual vs estimated simulated seconds per node.  DML and DDL execute directly
(their cost is dominated by triggers and maintained views, not access-path
choice).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.db.schema import Column, TableSchema
from repro.db.sql.ast import (
    PLACEHOLDER,
    CheckpointView,
    Comparison,
    CreateClassificationView,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Explain,
    Insert,
    RestoreView,
    Select,
    ServeView,
    Statement,
    StopServing,
    Update,
)
from repro.db.sql.plan import compare_values
from repro.db.sql.planner import Planner, SelectPlan
from repro.db.types import DataType
from repro.exceptions import SQLExecutionError, SQLPlanningError
from repro.obs import current_trace

__all__ = ["ResultSet", "SQLExecutor"]


#: Statement types handled by the serving extension (the Hazy engine).
_SERVING_STATEMENTS = (ServeView, StopServing, CheckpointView, RestoreView)


@dataclass
class ResultSet:
    """The result of executing one SQL statement.

    ``rows`` holds the result rows for SELECT (a single ``{"count": n}`` row
    for COUNT queries); ``rowcount`` is the number of rows affected for DML
    and the number of rows returned for queries.
    """

    rows: list[dict[str, object]] = field(default_factory=list)
    rowcount: int = 0
    statement_type: str = ""

    def scalar(self) -> object:
        """First column of the first row (e.g. the COUNT(*) value)."""
        if not self.rows:
            raise SQLExecutionError("result set is empty")
        first = self.rows[0]
        return next(iter(first.values()))


#: Handler invoked for CREATE CLASSIFICATION VIEW; installed by the Hazy engine.
ClassificationViewHandler = Callable[[CreateClassificationView], None]
#: Handler for SERVE VIEW / STOP SERVING / CHECKPOINT VIEW / RESTORE VIEW.
ServingStatementHandler = Callable[[Statement], "ResultSet"]


class SQLExecutor:
    """Evaluates AST statements against a :class:`~repro.db.database.Database`."""

    def __init__(self, database) -> None:  # Database; untyped to avoid an import cycle
        self._database = database
        self._planner = Planner(database)
        self._classification_view_handler: ClassificationViewHandler | None = None
        self._serving_handler: ServingStatementHandler | None = None

    # -- extension hooks (the Hazy engine registers these) -----------------------------

    def set_classification_view_handler(self, handler: ClassificationViewHandler) -> None:
        """Install the callback that materializes ``CREATE CLASSIFICATION VIEW``."""
        self._classification_view_handler = handler

    def set_serving_handler(self, handler: ServingStatementHandler) -> None:
        """Install the callback executing the serving lifecycle statements."""
        self._serving_handler = handler

    # -- planning ------------------------------------------------------------------------

    def plan_select(self, statement: Select) -> SelectPlan:
        """Compile one SELECT into its plan (the prepared-statement cache hook)."""
        return self._planner.plan_select(statement)

    # -- entry point ---------------------------------------------------------------------

    def execute(
        self,
        statement: Statement,
        parameters: tuple | list | None = None,
        context: object = None,
        plan: SelectPlan | None = None,
    ) -> ResultSet:
        """Execute one parsed statement, binding ``?`` placeholders from ``parameters``.

        ``context`` is an opaque per-connection object (see
        :class:`repro.connection.Connection`) threaded through to served-view
        plan nodes so that reads against served views get that connection's
        monotonic read-your-writes session.  ``plan`` short-circuits planning
        for SELECT statements (the prepared-statement cache passes the plan it
        already built; parameters are re-bound without re-planning).
        """
        parameters = list(parameters or [])
        if isinstance(statement, CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTable):
            return self._execute_drop_table(statement)
        if isinstance(statement, CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, DropIndex):
            return self._execute_drop_index(statement)
        if isinstance(statement, CreateClassificationView):
            return self._execute_create_classification_view(statement)
        if isinstance(statement, Insert):
            return self._execute_insert(statement, parameters)
        if isinstance(statement, Select):
            return self._execute_select(statement, parameters, context, plan)
        if isinstance(statement, Update):
            return self._execute_update(statement, parameters)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, parameters)
        if isinstance(statement, _SERVING_STATEMENTS):
            return self._execute_serving_statement(statement)
        if isinstance(statement, Explain):
            return self._execute_explain(statement, parameters, context, plan)
        raise SQLExecutionError(f"unsupported statement type {type(statement).__name__}")

    def execute_many(
        self,
        statement: Statement,
        parameter_rows,
        context: object = None,
        plan: SelectPlan | None = None,
    ) -> int:
        """Execute one statement per parameter row; returns the total rowcount.

        The shared prepared-execution loop behind ``Database.executemany`` and
        ``Connection.executemany``: the statement is already parsed (and, for
        SELECTs, optionally planned) — each iteration only re-binds ``?``.
        """
        if plan is None and isinstance(statement, Select):
            plan = self.plan_select(statement)
        total = 0
        for parameters in parameter_rows:
            total += self.execute(statement, parameters, context, plan=plan).rowcount
        return total

    # -- DDL ----------------------------------------------------------------------------

    def _execute_create_table(self, statement: CreateTable) -> ResultSet:
        columns = [
            Column(defn.name, DataType.from_name(defn.type_name), nullable=defn.nullable)
            for defn in statement.columns
        ]
        primary_keys = [defn.name for defn in statement.columns if defn.primary_key]
        if len(primary_keys) > 1:
            raise SQLExecutionError("composite primary keys are not supported")
        schema = TableSchema(
            statement.table, columns, primary_key=primary_keys[0] if primary_keys else None
        )
        self._database.create_table(schema)
        return ResultSet(statement_type="CREATE TABLE")

    def _execute_drop_table(self, statement: DropTable) -> ResultSet:
        self._database.drop_table(statement.table)
        return ResultSet(statement_type="DROP TABLE")

    def _execute_create_index(self, statement: CreateIndex) -> ResultSet:
        """``CREATE INDEX``: build + backfill the tree, then bump the catalog
        version so every cached plan re-costs its access paths."""
        catalog = self._database.catalog
        if catalog.has_index(statement.name):
            raise SQLExecutionError(f"index {statement.name!r} already exists")
        if catalog.object_kind(statement.table) != "table":
            raise SQLPlanningError(
                f"CREATE INDEX target {statement.table!r} is not a base table",
                position=statement.table_position,
                token=statement.table,
            )
        table = catalog.table(statement.table)
        positions = statement.column_positions or (None,) * len(statement.columns)
        seen: set[str] = set()
        for column, position in zip(statement.columns, positions):
            if not table.schema.has_column(column):
                raise SQLPlanningError(
                    f"table {table.name!r} has no column {column!r}",
                    position=position,
                    token=column,
                )
            if column.lower() in seen:
                raise SQLPlanningError(
                    f"index {statement.name!r} lists column {column!r} more than once",
                    position=position,
                    token=column,
                )
            seen.add(column.lower())
        table.create_secondary_index(statement.name, statement.columns)
        catalog.register_index(statement.name, table.name)
        return ResultSet(statement_type="CREATE INDEX")

    def _execute_drop_index(self, statement: DropIndex) -> ResultSet:
        """``DROP INDEX``: detach the tree (maintenance stops) and bump the
        catalog version so cached ``SecondaryIndexRange`` plans re-plan rather
        than read through a no-longer-maintained index."""
        table = self._database.catalog.index_table(statement.name)
        table.drop_secondary_index(statement.name)
        self._database.catalog.unregister_index(statement.name)
        return ResultSet(statement_type="DROP INDEX")

    def _execute_create_classification_view(
        self, statement: CreateClassificationView
    ) -> ResultSet:
        if self._classification_view_handler is None:
            raise SQLExecutionError(
                "CREATE CLASSIFICATION VIEW requires a Hazy engine; "
                "construct repro.core.HazyEngine over this database first"
            )
        self._classification_view_handler(statement)
        return ResultSet(statement_type="CREATE CLASSIFICATION VIEW")

    # -- DML ----------------------------------------------------------------------------

    def _execute_insert(self, statement: Insert, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        columns = list(statement.columns) or table.schema.column_names()
        inserted = 0
        cursor = 0
        for literal_row in statement.rows:
            if len(literal_row) != len(columns):
                raise SQLExecutionError(
                    f"INSERT expects {len(columns)} values per row, got {len(literal_row)}"
                )
            bound_row: dict[str, object] = {}
            for column, literal in zip(columns, literal_row):
                value = literal
                if literal is PLACEHOLDER:
                    if cursor >= len(parameters):
                        raise SQLExecutionError("not enough parameters for placeholders")
                    value = parameters[cursor]
                    cursor += 1
                bound_row[column] = value
            table.insert(bound_row)
            inserted += 1
        return ResultSet(rowcount=inserted, statement_type="INSERT")

    def _bind_where(
        self, where: tuple[Comparison, ...], parameters: list, cursor: int
    ) -> tuple[list[Comparison], int]:
        bound: list[Comparison] = []
        for comparison in where:
            value = comparison.value
            if value is PLACEHOLDER:
                if cursor >= len(parameters):
                    raise SQLExecutionError("not enough parameters for placeholders")
                value = parameters[cursor]
                cursor += 1
            bound.append(Comparison(comparison.column, comparison.operator, value))
        return bound, cursor

    @staticmethod
    def _matches(row: Mapping[str, object], comparisons: Iterable[Comparison]) -> bool:
        for comparison in comparisons:
            matched_key = next(
                (key for key in row if key.lower() == comparison.column.lower()), None
            )
            if matched_key is None:
                raise SQLExecutionError(f"unknown column {comparison.column!r} in WHERE clause")
            if not compare_values(row[matched_key], comparison.operator, comparison.value):
                return False
        return True

    # -- SELECT (plan-first) -------------------------------------------------------------

    def _execute_select(
        self,
        statement: Select,
        parameters: list,
        context: object = None,
        plan: SelectPlan | None = None,
    ) -> ResultSet:
        if plan is None or plan.catalog_version != self._database.catalog.version:
            # A supplied plan is only honoured while the catalog it was built
            # against is unchanged: DDL on *any* connection sharing this
            # database bumps the version, and a stale plan holding a dropped
            # or replaced table/view object must be rebuilt, not walked.
            plan = self._planner.plan_select(statement)
        rows, runtime = plan.run(self._database, parameters, context)
        trace = current_trace()
        if trace is not None:
            # Mirror the executed tree's per-node actuals as spans; the same
            # numbers EXPLAIN ANALYZE would report for this statement.
            trace.add_plan_tree(plan, runtime, trace.cross_thread_parent_id)
        return ResultSet(rows=rows, rowcount=len(rows), statement_type="SELECT")

    def _execute_update(self, statement: Update, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        cursor = 0
        assignments: list[tuple[str, object]] = []
        for column, literal in statement.assignments:
            value = literal
            if literal is PLACEHOLDER:
                if cursor >= len(parameters):
                    raise SQLExecutionError("not enough parameters for placeholders")
                value = parameters[cursor]
                cursor += 1
            assignments.append((column, value))
        where, cursor = self._bind_where(statement.where, parameters, cursor)
        if table.schema.primary_key is None:
            raise SQLExecutionError(f"UPDATE requires a primary key on {statement.table!r}")
        pk = table.schema.primary_key
        keys_to_update = [
            row[pk] for row in table.scan() if self._matches(row, where)
        ]
        for key in keys_to_update:
            table.update_by_key(key, dict(assignments))
        return ResultSet(rowcount=len(keys_to_update), statement_type="UPDATE")

    def _execute_delete(self, statement: Delete, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        where, _ = self._bind_where(statement.where, parameters, 0)
        if table.schema.primary_key is None:
            raise SQLExecutionError(f"DELETE requires a primary key on {statement.table!r}")
        pk = table.schema.primary_key
        keys_to_delete = [row[pk] for row in table.scan() if self._matches(row, where)]
        for key in keys_to_delete:
            table.delete_by_key(key)
        return ResultSet(rowcount=len(keys_to_delete), statement_type="DELETE")

    # -- serving lifecycle ---------------------------------------------------------------

    def _execute_serving_statement(self, statement: Statement) -> ResultSet:
        if self._serving_handler is None:
            raise SQLExecutionError(
                f"{type(statement).__name__} requires a Hazy engine; "
                "construct repro.core.HazyEngine over this database (or use "
                "repro.connect()) first"
            )
        return self._serving_handler(statement)

    # -- EXPLAIN [ANALYZE] ---------------------------------------------------------------

    def _execute_explain(
        self,
        statement: Explain,
        parameters: list,
        context: object = None,
        plan: SelectPlan | None = None,
    ) -> ResultSet:
        """Print the plan (and, under ANALYZE, execute it and report actuals).

        A cached ``plan`` (the connection layer prepares ``EXPLAIN <select>``
        like any SELECT) is honoured under the same catalog-version guard as
        execution: DDL anywhere — including ``CREATE INDEX``/``DROP INDEX``,
        which change access paths without changing the namespace — must make
        EXPLAIN report the re-planned tree, never a stale one.
        """
        inner = statement.statement
        if isinstance(inner, Select):
            if plan is None or plan.catalog_version != self._database.catalog.version:
                plan = self._planner.plan_select(inner)
            if statement.analyze:
                before = self._database.stats.snapshot()
                _, runtime = plan.run(self._database, parameters, context)
                io_delta = self._database.stats.diff(before)
                rows = plan.explain_rows(runtime, io_delta)
                return ResultSet(
                    rows=rows, rowcount=len(rows), statement_type="EXPLAIN ANALYZE"
                )
            rows = plan.explain_rows()
            return ResultSet(rows=rows, rowcount=len(rows), statement_type="EXPLAIN")
        if statement.analyze:
            raise SQLExecutionError(
                "EXPLAIN ANALYZE supports SELECT statements only "
                "(executing DML under EXPLAIN would mutate the database)"
            )
        if isinstance(inner, (Insert, Update, Delete)):
            row = {
                "node": f"{type(inner).__name__.upper()}({inner.table})",
                "estimated_seconds": None,
                "detail": "DML statements run triggers; cost depends on attached views",
            }
        else:
            target = getattr(
                inner, "table", getattr(inner, "view", getattr(inner, "name", None))
            )
            row = {
                "node": f"{type(inner).__name__}({target})",
                "estimated_seconds": None,
                "detail": "no cost estimate for this statement type",
            }
        return ResultSet(rows=[row], rowcount=1, statement_type="EXPLAIN")
