"""Execution of parsed SQL statements against a Database."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.db.schema import Column, TableSchema
from repro.db.sql.ast import (
    PLACEHOLDER,
    CheckpointView,
    Comparison,
    CreateClassificationView,
    CreateTable,
    Delete,
    DropTable,
    Explain,
    Insert,
    RestoreView,
    Select,
    ServeView,
    Statement,
    StopServing,
    Update,
)
from repro.db.types import DataType
from repro.exceptions import SQLExecutionError

__all__ = ["ResultSet", "SQLExecutor", "classify_view_read"]


#: Statement types handled by the serving extension (the Hazy engine).
_SERVING_STATEMENTS = (ServeView, StopServing, CheckpointView, RestoreView)


def classify_view_read(
    select: Select, where: Sequence[Comparison], key_column: str
) -> tuple[str, object]:
    """Decide how a SELECT against a classification view should be answered.

    Returns one of ``("point", key)`` — a Single Entity read on the view key;
    ``("members", class_value)`` — an All Members read; ``("topk", k)`` — a
    ranked read (``ORDER BY margin DESC LIMIT k``; ascending order asks for
    the *lowest* margins, which ``top_k`` cannot answer, so it stays a scan);
    or ``("scan", None)`` — a full materialization.  Shared by the served-read
    router and ``EXPLAIN`` so the plan printed is the plan executed.
    """
    if (
        select.order_by is not None
        and select.order_by.lower() == "margin"
        and select.descending
        and select.limit is not None
        and not where
    ):
        return ("topk", select.limit)
    if len(where) == 1 and where[0].operator == "=":
        column = where[0].column.lower()
        if column == key_column.lower():
            return ("point", where[0].value)
        if column == "class":
            return ("members", where[0].value)
    return ("scan", None)


@dataclass
class ResultSet:
    """The result of executing one SQL statement.

    ``rows`` holds the result rows for SELECT (a single ``{"count": n}`` row
    for COUNT queries); ``rowcount`` is the number of rows affected for DML
    and the number of rows returned for queries.
    """

    rows: list[dict[str, object]] = field(default_factory=list)
    rowcount: int = 0
    statement_type: str = ""

    def scalar(self) -> object:
        """First column of the first row (e.g. the COUNT(*) value)."""
        if not self.rows:
            raise SQLExecutionError("result set is empty")
        first = self.rows[0]
        return next(iter(first.values()))


#: Handler invoked for CREATE CLASSIFICATION VIEW; installed by the Hazy engine.
ClassificationViewHandler = Callable[[CreateClassificationView], None]
#: Row provider for SELECTs against a classification view (installed by the engine).
ClassificationViewReader = Callable[[str], Iterable[Mapping[str, object]]]
#: Handler for SERVE VIEW / STOP SERVING / CHECKPOINT VIEW / RESTORE VIEW.
ServingStatementHandler = Callable[[Statement], "ResultSet"]
#: Router for SELECTs against *served* views: (name, bound select, context)
#: -> rows, or None to fall back to the full-materialization reader.
ServedReadHandler = Callable[[str, Select, object], list | None]


class SQLExecutor:
    """Evaluates AST statements against a :class:`~repro.db.database.Database`."""

    def __init__(self, database) -> None:  # Database; untyped to avoid an import cycle
        self._database = database
        self._classification_view_handler: ClassificationViewHandler | None = None
        self._classification_view_reader: ClassificationViewReader | None = None
        self._serving_handler: ServingStatementHandler | None = None
        self._served_read_handler: ServedReadHandler | None = None

    # -- extension hooks (the Hazy engine registers these) -----------------------------

    def set_classification_view_handler(self, handler: ClassificationViewHandler) -> None:
        """Install the callback that materializes ``CREATE CLASSIFICATION VIEW``."""
        self._classification_view_handler = handler

    def set_classification_view_reader(self, reader: ClassificationViewReader) -> None:
        """Install the callback that produces rows for classification views."""
        self._classification_view_reader = reader

    def set_serving_handler(self, handler: ServingStatementHandler) -> None:
        """Install the callback executing the serving lifecycle statements."""
        self._serving_handler = handler

    def set_served_read_handler(self, handler: ServedReadHandler) -> None:
        """Install the router answering SELECTs against served views."""
        self._served_read_handler = handler

    # -- entry point ---------------------------------------------------------------------

    def execute(
        self,
        statement: Statement,
        parameters: tuple | list | None = None,
        context: object = None,
    ) -> ResultSet:
        """Execute one parsed statement, binding ``?`` placeholders from ``parameters``.

        ``context`` is an opaque per-connection object (see
        :class:`repro.connection.Connection`) threaded through to the served
        read router so that reads against served views get that connection's
        monotonic read-your-writes session.
        """
        parameters = list(parameters or [])
        if isinstance(statement, CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTable):
            return self._execute_drop_table(statement)
        if isinstance(statement, CreateClassificationView):
            return self._execute_create_classification_view(statement)
        if isinstance(statement, Insert):
            return self._execute_insert(statement, parameters)
        if isinstance(statement, Select):
            return self._execute_select(statement, parameters, context)
        if isinstance(statement, Update):
            return self._execute_update(statement, parameters)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, parameters)
        if isinstance(statement, _SERVING_STATEMENTS):
            return self._execute_serving_statement(statement)
        if isinstance(statement, Explain):
            return self._execute_explain(statement, parameters)
        raise SQLExecutionError(f"unsupported statement type {type(statement).__name__}")

    # -- DDL ----------------------------------------------------------------------------

    def _execute_create_table(self, statement: CreateTable) -> ResultSet:
        columns = [
            Column(defn.name, DataType.from_name(defn.type_name), nullable=defn.nullable)
            for defn in statement.columns
        ]
        primary_keys = [defn.name for defn in statement.columns if defn.primary_key]
        if len(primary_keys) > 1:
            raise SQLExecutionError("composite primary keys are not supported")
        schema = TableSchema(
            statement.table, columns, primary_key=primary_keys[0] if primary_keys else None
        )
        self._database.create_table(schema)
        return ResultSet(statement_type="CREATE TABLE")

    def _execute_drop_table(self, statement: DropTable) -> ResultSet:
        self._database.drop_table(statement.table)
        return ResultSet(statement_type="DROP TABLE")

    def _execute_create_classification_view(
        self, statement: CreateClassificationView
    ) -> ResultSet:
        if self._classification_view_handler is None:
            raise SQLExecutionError(
                "CREATE CLASSIFICATION VIEW requires a Hazy engine; "
                "construct repro.core.HazyEngine over this database first"
            )
        self._classification_view_handler(statement)
        return ResultSet(statement_type="CREATE CLASSIFICATION VIEW")

    # -- DML ----------------------------------------------------------------------------

    def _execute_insert(self, statement: Insert, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        columns = list(statement.columns) or table.schema.column_names()
        inserted = 0
        cursor = 0
        for literal_row in statement.rows:
            if len(literal_row) != len(columns):
                raise SQLExecutionError(
                    f"INSERT expects {len(columns)} values per row, got {len(literal_row)}"
                )
            bound_row: dict[str, object] = {}
            for column, literal in zip(columns, literal_row):
                value = literal
                if literal is PLACEHOLDER:
                    if cursor >= len(parameters):
                        raise SQLExecutionError("not enough parameters for placeholders")
                    value = parameters[cursor]
                    cursor += 1
                bound_row[column] = value
            table.insert(bound_row)
            inserted += 1
        return ResultSet(rowcount=inserted, statement_type="INSERT")

    def _bind_where(
        self, where: tuple[Comparison, ...], parameters: list, cursor: int
    ) -> tuple[list[Comparison], int]:
        bound: list[Comparison] = []
        for comparison in where:
            value = comparison.value
            if value is PLACEHOLDER:
                if cursor >= len(parameters):
                    raise SQLExecutionError("not enough parameters for placeholders")
                value = parameters[cursor]
                cursor += 1
            bound.append(Comparison(comparison.column, comparison.operator, value))
        return bound, cursor

    @staticmethod
    def _matches(row: Mapping[str, object], comparisons: Iterable[Comparison]) -> bool:
        for comparison in comparisons:
            matched_key = next(
                (key for key in row if key.lower() == comparison.column.lower()), None
            )
            if matched_key is None:
                raise SQLExecutionError(f"unknown column {comparison.column!r} in WHERE clause")
            actual = row[matched_key]
            expected = comparison.value
            op = comparison.operator
            if op == "=":
                ok = actual == expected
            elif op == "!=":
                ok = actual != expected
            else:
                if actual is None or expected is None:
                    ok = False
                elif op == "<":
                    ok = actual < expected
                elif op == "<=":
                    ok = actual <= expected
                elif op == ">":
                    ok = actual > expected
                elif op == ">=":
                    ok = actual >= expected
                else:  # pragma: no cover - parser restricts operators
                    raise SQLExecutionError(f"unsupported operator {op!r}")
            if not ok:
                return False
        return True

    def _rows_for(self, table_name: str) -> Iterable[Mapping[str, object]]:
        catalog = self._database.catalog
        kind = catalog.object_kind(table_name)
        if kind == "table":
            return catalog.table(table_name).scan()
        if kind == "classification_view":
            if self._classification_view_reader is None:
                raise SQLExecutionError(
                    f"classification view {table_name!r} exists but no engine is attached"
                )
            return self._classification_view_reader(table_name)
        if kind == "view":
            return catalog.view(table_name)()
        raise SQLExecutionError(f"no table or view named {table_name!r}")

    def _execute_select(
        self, statement: Select, parameters: list, context: object = None
    ) -> ResultSet:
        where, _ = self._bind_where(statement.where, parameters, 0)
        source: Iterable[Mapping[str, object]] | None = None
        if (
            self._served_read_handler is not None
            and self._database.catalog.has_classification_view(statement.table)
        ):
            bound = Select(
                table=statement.table,
                columns=statement.columns,
                where=tuple(where),
                order_by=statement.order_by,
                descending=statement.descending,
                limit=statement.limit,
                count=statement.count,
            )
            source = self._served_read_handler(statement.table, bound, context)
        if source is None:
            source = self._rows_for(statement.table)
        matching = [dict(row) for row in source if self._matches(row, where)]
        if statement.order_by is not None:
            column = statement.order_by

            def sort_key(row: dict[str, object]):
                matched = next((key for key in row if key.lower() == column.lower()), None)
                if matched is None:
                    raise SQLExecutionError(f"unknown ORDER BY column {column!r}")
                value = row[matched]
                return (value is None, value)

            matching.sort(key=sort_key, reverse=statement.descending)
        if statement.limit is not None:
            matching = matching[: statement.limit]
        if statement.count:
            return ResultSet(
                rows=[{"count": len(matching)}], rowcount=1, statement_type="SELECT"
            )
        if statement.columns != ("*",):
            projected = []
            for row in matching:
                out: dict[str, object] = {}
                for wanted in statement.columns:
                    matched = next((key for key in row if key.lower() == wanted.lower()), None)
                    if matched is None:
                        raise SQLExecutionError(f"unknown column {wanted!r} in SELECT list")
                    out[matched] = row[matched]
                projected.append(out)
            matching = projected
        return ResultSet(rows=matching, rowcount=len(matching), statement_type="SELECT")

    def _execute_update(self, statement: Update, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        cursor = 0
        assignments: list[tuple[str, object]] = []
        for column, literal in statement.assignments:
            value = literal
            if literal is PLACEHOLDER:
                if cursor >= len(parameters):
                    raise SQLExecutionError("not enough parameters for placeholders")
                value = parameters[cursor]
                cursor += 1
            assignments.append((column, value))
        where, cursor = self._bind_where(statement.where, parameters, cursor)
        if table.schema.primary_key is None:
            raise SQLExecutionError(f"UPDATE requires a primary key on {statement.table!r}")
        pk = table.schema.primary_key
        keys_to_update = [
            row[pk] for row in table.scan() if self._matches(row, where)
        ]
        for key in keys_to_update:
            table.update_by_key(key, dict(assignments))
        return ResultSet(rowcount=len(keys_to_update), statement_type="UPDATE")

    def _execute_delete(self, statement: Delete, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        where, _ = self._bind_where(statement.where, parameters, 0)
        if table.schema.primary_key is None:
            raise SQLExecutionError(f"DELETE requires a primary key on {statement.table!r}")
        pk = table.schema.primary_key
        keys_to_delete = [row[pk] for row in table.scan() if self._matches(row, where)]
        for key in keys_to_delete:
            table.delete_by_key(key)
        return ResultSet(rowcount=len(keys_to_delete), statement_type="DELETE")

    # -- serving lifecycle ---------------------------------------------------------------

    def _execute_serving_statement(self, statement: Statement) -> ResultSet:
        if self._serving_handler is None:
            raise SQLExecutionError(
                f"{type(statement).__name__} requires a Hazy engine; "
                "construct repro.core.HazyEngine over this database (or use "
                "repro.connect()) first"
            )
        return self._serving_handler(statement)

    # -- EXPLAIN -------------------------------------------------------------------------

    def _execute_explain(self, statement: Explain, parameters: list) -> ResultSet:
        """Print the deterministic cost-model plan for a statement, executing nothing."""
        inner = statement.statement
        if isinstance(inner, Select):
            row = self._explain_select(inner, parameters)
        elif isinstance(inner, (Insert, Update, Delete)):
            row = {
                "statement": type(inner).__name__.upper(),
                "target": inner.table,
                "access_path": "dml",
                "choice": None,
                "estimated_seconds": None,
                "detail": "DML statements run triggers; cost depends on attached views",
            }
        else:
            row = {
                "statement": type(inner).__name__,
                "target": getattr(inner, "table", getattr(inner, "view", None)),
                "access_path": "ddl",
                "choice": None,
                "estimated_seconds": None,
                "detail": "no cost estimate for this statement type",
            }
        return ResultSet(rows=[row], rowcount=1, statement_type="EXPLAIN")

    def _explain_select(self, statement: Select, parameters: list) -> dict[str, object]:
        where, _ = self._bind_where(statement.where, parameters, 0)
        catalog = self._database.catalog
        name = statement.table
        kind = catalog.object_kind(name)
        if kind == "classification_view":
            return self._explain_view_read(
                name, catalog.classification_view(name), statement, where
            )
        if kind == "table":
            table = catalog.table(name)
            cost_model = self._database.cost_model
            pk = table.schema.primary_key
            point = (
                pk is not None
                and len(where) == 1
                and where[0].operator == "="
                and where[0].column.lower() == pk.lower()
            )
            if point:
                estimate = cost_model.statement_overhead + cost_model.random_page_read
                return {
                    "statement": "SELECT",
                    "target": table.name,
                    "access_path": "table-point",
                    "choice": "point",
                    "estimated_seconds": estimate,
                    "detail": f"primary-key hash lookup on {pk!r} (1 random page)",
                }
            estimate = cost_model.statement_overhead + cost_model.scan_cost(
                table.page_count(), table.row_count()
            )
            return {
                "statement": "SELECT",
                "target": table.name,
                "access_path": "table-scan",
                "choice": "scan",
                "estimated_seconds": estimate,
                "detail": (
                    f"sequential scan of {table.page_count()} pages / "
                    f"{table.row_count()} tuples"
                ),
            }
        if kind == "view":
            return {
                "statement": "SELECT",
                "target": name,
                "access_path": "logical-view",
                "choice": "scan",
                "estimated_seconds": None,
                "detail": "logical views materialize through an opaque callable",
            }
        raise SQLExecutionError(f"no table or view named {name!r}")

    def _explain_view_read(
        self, name: str, view, statement: Select, where: list[Comparison]
    ) -> dict[str, object]:
        """Cost-model estimate for a read against a classification view.

        Mirrors :func:`classify_view_read` (so the printed plan matches the
        executed one) and the point-vs-scan choice of
        :meth:`~repro.core.maintainers.base.ViewMaintainer.read_many`.
        """
        kind, operand = classify_view_read(statement, where, view.definition.view_key)
        server = view.server
        if server is None:
            store = view.maintainer.store
            cost_model = store.cost_model
            if kind == "point":
                point_cost = store.point_read_cost_estimate()
                scan_cost = store.scan_cost_estimate()
                choice = "point" if point_cost <= scan_cost else "scan"
                estimate = cost_model.statement_overhead + min(point_cost, scan_cost)
                detail = "direct maintainer read_single (view is not served)"
            else:
                choice = "scan"
                estimate = cost_model.statement_overhead + store.scan_cost_estimate()
                detail = f"direct maintainer {kind} read (view is not served)"
            return {
                "statement": "SELECT",
                "target": name,
                "access_path": f"view-{kind}",
                "choice": choice,
                "estimated_seconds": estimate,
                "detail": detail,
            }
        shards = server.shards
        cost_model = shards.shards[0].maintainer.store.cost_model
        if kind == "point":
            store = shards.shard_for(operand).maintainer.store
            point_cost = store.point_read_cost_estimate()
            scan_cost = store.scan_cost_estimate()
            choice = "point" if point_cost <= scan_cost else "scan"
            estimate = cost_model.statement_overhead + min(point_cost, scan_cost)
            detail = (
                f"batched read on shard {shards.shard_for(operand).index} "
                f"of {len(shards)}; statement overhead amortized per coalesced batch"
            )
        else:
            scan_total = sum(
                shard.maintainer.store.scan_cost_estimate() for shard in shards.shards
            )
            choice = "scan"
            estimate = cost_model.statement_overhead + scan_total
            detail = f"scatter/gather {kind} across {len(shards)} shards"
        return {
            "statement": "SELECT",
            "target": name,
            "access_path": f"served-{kind}",
            "choice": choice,
            "estimated_seconds": estimate,
            "detail": detail,
        }
