"""Execution of parsed SQL statements against a Database."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.db.schema import Column, TableSchema
from repro.db.sql.ast import (
    PLACEHOLDER,
    Comparison,
    CreateClassificationView,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Statement,
    Update,
)
from repro.db.types import DataType
from repro.exceptions import SQLExecutionError

__all__ = ["ResultSet", "SQLExecutor"]


@dataclass
class ResultSet:
    """The result of executing one SQL statement.

    ``rows`` holds the result rows for SELECT (a single ``{"count": n}`` row
    for COUNT queries); ``rowcount`` is the number of rows affected for DML
    and the number of rows returned for queries.
    """

    rows: list[dict[str, object]] = field(default_factory=list)
    rowcount: int = 0
    statement_type: str = ""

    def scalar(self) -> object:
        """First column of the first row (e.g. the COUNT(*) value)."""
        if not self.rows:
            raise SQLExecutionError("result set is empty")
        first = self.rows[0]
        return next(iter(first.values()))


#: Handler invoked for CREATE CLASSIFICATION VIEW; installed by the Hazy engine.
ClassificationViewHandler = Callable[[CreateClassificationView], None]
#: Row provider for SELECTs against a classification view (installed by the engine).
ClassificationViewReader = Callable[[str], Iterable[Mapping[str, object]]]


class SQLExecutor:
    """Evaluates AST statements against a :class:`~repro.db.database.Database`."""

    def __init__(self, database) -> None:  # Database; untyped to avoid an import cycle
        self._database = database
        self._classification_view_handler: ClassificationViewHandler | None = None
        self._classification_view_reader: ClassificationViewReader | None = None

    # -- extension hooks (the Hazy engine registers these) -----------------------------

    def set_classification_view_handler(self, handler: ClassificationViewHandler) -> None:
        """Install the callback that materializes ``CREATE CLASSIFICATION VIEW``."""
        self._classification_view_handler = handler

    def set_classification_view_reader(self, reader: ClassificationViewReader) -> None:
        """Install the callback that produces rows for classification views."""
        self._classification_view_reader = reader

    # -- entry point ---------------------------------------------------------------------

    def execute(self, statement: Statement, parameters: tuple | list | None = None) -> ResultSet:
        """Execute one parsed statement, binding ``?`` placeholders from ``parameters``."""
        parameters = list(parameters or [])
        if isinstance(statement, CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTable):
            return self._execute_drop_table(statement)
        if isinstance(statement, CreateClassificationView):
            return self._execute_create_classification_view(statement)
        if isinstance(statement, Insert):
            return self._execute_insert(statement, parameters)
        if isinstance(statement, Select):
            return self._execute_select(statement, parameters)
        if isinstance(statement, Update):
            return self._execute_update(statement, parameters)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, parameters)
        raise SQLExecutionError(f"unsupported statement type {type(statement).__name__}")

    # -- DDL ----------------------------------------------------------------------------

    def _execute_create_table(self, statement: CreateTable) -> ResultSet:
        columns = [
            Column(defn.name, DataType.from_name(defn.type_name), nullable=defn.nullable)
            for defn in statement.columns
        ]
        primary_keys = [defn.name for defn in statement.columns if defn.primary_key]
        if len(primary_keys) > 1:
            raise SQLExecutionError("composite primary keys are not supported")
        schema = TableSchema(
            statement.table, columns, primary_key=primary_keys[0] if primary_keys else None
        )
        self._database.create_table(schema)
        return ResultSet(statement_type="CREATE TABLE")

    def _execute_drop_table(self, statement: DropTable) -> ResultSet:
        self._database.drop_table(statement.table)
        return ResultSet(statement_type="DROP TABLE")

    def _execute_create_classification_view(
        self, statement: CreateClassificationView
    ) -> ResultSet:
        if self._classification_view_handler is None:
            raise SQLExecutionError(
                "CREATE CLASSIFICATION VIEW requires a Hazy engine; "
                "construct repro.core.HazyEngine over this database first"
            )
        self._classification_view_handler(statement)
        return ResultSet(statement_type="CREATE CLASSIFICATION VIEW")

    # -- DML ----------------------------------------------------------------------------

    def _execute_insert(self, statement: Insert, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        columns = list(statement.columns) or table.schema.column_names()
        inserted = 0
        cursor = 0
        for literal_row in statement.rows:
            if len(literal_row) != len(columns):
                raise SQLExecutionError(
                    f"INSERT expects {len(columns)} values per row, got {len(literal_row)}"
                )
            bound_row: dict[str, object] = {}
            for column, literal in zip(columns, literal_row):
                value = literal
                if literal is PLACEHOLDER:
                    if cursor >= len(parameters):
                        raise SQLExecutionError("not enough parameters for placeholders")
                    value = parameters[cursor]
                    cursor += 1
                bound_row[column] = value
            table.insert(bound_row)
            inserted += 1
        return ResultSet(rowcount=inserted, statement_type="INSERT")

    def _bind_where(
        self, where: tuple[Comparison, ...], parameters: list, cursor: int
    ) -> tuple[list[Comparison], int]:
        bound: list[Comparison] = []
        for comparison in where:
            value = comparison.value
            if value is PLACEHOLDER:
                if cursor >= len(parameters):
                    raise SQLExecutionError("not enough parameters for placeholders")
                value = parameters[cursor]
                cursor += 1
            bound.append(Comparison(comparison.column, comparison.operator, value))
        return bound, cursor

    @staticmethod
    def _matches(row: Mapping[str, object], comparisons: Iterable[Comparison]) -> bool:
        for comparison in comparisons:
            matched_key = next(
                (key for key in row if key.lower() == comparison.column.lower()), None
            )
            if matched_key is None:
                raise SQLExecutionError(f"unknown column {comparison.column!r} in WHERE clause")
            actual = row[matched_key]
            expected = comparison.value
            op = comparison.operator
            if op == "=":
                ok = actual == expected
            elif op == "!=":
                ok = actual != expected
            else:
                if actual is None or expected is None:
                    ok = False
                elif op == "<":
                    ok = actual < expected
                elif op == "<=":
                    ok = actual <= expected
                elif op == ">":
                    ok = actual > expected
                elif op == ">=":
                    ok = actual >= expected
                else:  # pragma: no cover - parser restricts operators
                    raise SQLExecutionError(f"unsupported operator {op!r}")
            if not ok:
                return False
        return True

    def _rows_for(self, table_name: str) -> Iterable[Mapping[str, object]]:
        catalog = self._database.catalog
        if catalog.has_table(table_name):
            return catalog.table(table_name).scan()
        if catalog.has_classification_view(table_name):
            if self._classification_view_reader is None:
                raise SQLExecutionError(
                    f"classification view {table_name!r} exists but no engine is attached"
                )
            return self._classification_view_reader(table_name)
        if catalog.has_view(table_name):
            return catalog.view(table_name)()
        raise SQLExecutionError(f"no table or view named {table_name!r}")

    def _execute_select(self, statement: Select, parameters: list) -> ResultSet:
        where, _ = self._bind_where(statement.where, parameters, 0)
        matching = [dict(row) for row in self._rows_for(statement.table) if self._matches(row, where)]
        if statement.order_by is not None:
            column = statement.order_by

            def sort_key(row: dict[str, object]):
                matched = next((key for key in row if key.lower() == column.lower()), None)
                if matched is None:
                    raise SQLExecutionError(f"unknown ORDER BY column {column!r}")
                value = row[matched]
                return (value is None, value)

            matching.sort(key=sort_key, reverse=statement.descending)
        if statement.limit is not None:
            matching = matching[: statement.limit]
        if statement.count:
            return ResultSet(
                rows=[{"count": len(matching)}], rowcount=1, statement_type="SELECT"
            )
        if statement.columns != ("*",):
            projected = []
            for row in matching:
                out: dict[str, object] = {}
                for wanted in statement.columns:
                    matched = next((key for key in row if key.lower() == wanted.lower()), None)
                    if matched is None:
                        raise SQLExecutionError(f"unknown column {wanted!r} in SELECT list")
                    out[matched] = row[matched]
                projected.append(out)
            matching = projected
        return ResultSet(rows=matching, rowcount=len(matching), statement_type="SELECT")

    def _execute_update(self, statement: Update, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        cursor = 0
        assignments: list[tuple[str, object]] = []
        for column, literal in statement.assignments:
            value = literal
            if literal is PLACEHOLDER:
                if cursor >= len(parameters):
                    raise SQLExecutionError("not enough parameters for placeholders")
                value = parameters[cursor]
                cursor += 1
            assignments.append((column, value))
        where, cursor = self._bind_where(statement.where, parameters, cursor)
        if table.schema.primary_key is None:
            raise SQLExecutionError(f"UPDATE requires a primary key on {statement.table!r}")
        pk = table.schema.primary_key
        keys_to_update = [
            row[pk] for row in table.scan() if self._matches(row, where)
        ]
        for key in keys_to_update:
            table.update_by_key(key, dict(assignments))
        return ResultSet(rowcount=len(keys_to_update), statement_type="UPDATE")

    def _execute_delete(self, statement: Delete, parameters: list) -> ResultSet:
        table = self._database.catalog.table(statement.table)
        where, _ = self._bind_where(statement.where, parameters, 0)
        if table.schema.primary_key is None:
            raise SQLExecutionError(f"DELETE requires a primary key on {statement.table!r}")
        pk = table.schema.primary_key
        keys_to_delete = [row[pk] for row in table.scan() if self._matches(row, where)]
        for key in keys_to_delete:
            table.delete_by_key(key)
        return ResultSet(rowcount=len(keys_to_delete), statement_type="DELETE")
