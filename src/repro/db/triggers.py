"""Row-level triggers.

Hazy "monitors the relevant views for updates" using standard triggers: an
``AFTER INSERT`` trigger on the training-example table is what drives the
incremental maintenance loop.  This module provides exactly that mechanism for
the substrate's tables.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["TriggerEvent", "Trigger", "TriggerSet", "TriggerDispatcher"]


class TriggerEvent(enum.Enum):
    """The row-level events a trigger can fire on."""

    AFTER_INSERT = "after_insert"
    AFTER_UPDATE = "after_update"
    AFTER_DELETE = "after_delete"


#: A trigger callback receives (table_name, new_row_or_None, old_row_or_None).
TriggerCallback = Callable[[str, dict[str, object] | None, dict[str, object] | None], None]

@dataclass(frozen=True)
class Trigger:
    """A named trigger: an event plus a callback."""

    name: str
    event: TriggerEvent
    callback: TriggerCallback


#: A dispatcher intercepts trigger firings.  It receives the trigger plus the
#: full event context and returns True when it *consumed* the firing (e.g. by
#: enqueuing it for asynchronous maintenance) or False to let the trigger's
#: callback run inline as usual.
TriggerDispatcher = Callable[
    [Trigger, TriggerEvent, str, dict[str, object] | None, dict[str, object] | None], bool
]


@dataclass
class TriggerSet:
    """The triggers attached to one table, indexed by event.

    A :data:`TriggerDispatcher` may be installed to divert firings away from
    the inline callback — the serving subsystem uses this to *enqueue*
    maintenance work onto its background pipeline instead of retraining inside
    the user's ``INSERT`` statement.
    """

    _triggers: dict[TriggerEvent, list[Trigger]] = field(default_factory=dict)
    _dispatcher: TriggerDispatcher | None = None

    def add(self, trigger: Trigger) -> None:
        """Attach a trigger."""
        self._triggers.setdefault(trigger.event, []).append(trigger)

    def remove(self, name: str) -> bool:
        """Detach the trigger called ``name``; returns True if found."""
        removed = False
        for event, triggers in self._triggers.items():
            kept = [t for t in triggers if t.name != name]
            if len(kept) != len(triggers):
                removed = True
                self._triggers[event] = kept
        return removed

    def set_dispatcher(self, dispatcher: TriggerDispatcher) -> None:
        """Divert firings through ``dispatcher`` (see :data:`TriggerDispatcher`)."""
        self._dispatcher = dispatcher

    def clear_dispatcher(self) -> None:
        """Restore inline trigger execution."""
        self._dispatcher = None

    @property
    def has_dispatcher(self) -> bool:
        """Whether a dispatcher is currently installed."""
        return self._dispatcher is not None

    def fire(
        self,
        event: TriggerEvent,
        table_name: str,
        new_row: dict[str, object] | None,
        old_row: dict[str, object] | None,
    ) -> None:
        """Invoke every trigger registered for ``event`` in registration order.

        When a dispatcher is installed it sees each trigger first and may
        consume the firing (return True); unconsumed firings run inline.
        """
        for trigger in self._triggers.get(event, []):
            if self._dispatcher is not None and self._dispatcher(
                trigger, event, table_name, new_row, old_row
            ):
                continue
            trigger.callback(table_name, new_row, old_row)

    def names(self) -> list[str]:
        """Names of all attached triggers."""
        return [t.name for triggers in self._triggers.values() for t in triggers]
