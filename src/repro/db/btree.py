"""An in-memory B+-tree used as the clustered index on ``eps``.

Hazy keeps the scratch table ``H`` clustered on ``eps = w(s)·f − b(s)`` and
maintains a clustered B+-tree over that column so the tuples inside the water
band ``[lw, hw]`` can be found without scanning the whole table.  The tree
maps a float key to a list of opaque values (record ids); duplicate keys are
allowed because distinct entities can share an ``eps`` value.

The same structure backs the *secondary* indexes that ``CREATE INDEX``
attaches to base tables (:mod:`repro.db.secondary_index`).  Those trees hold
whatever type the indexed column carries, so the float coercion the eps index
wants is a constructor option (``coerce``) rather than hard-wired.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.exceptions import DatabaseError

__all__ = ["BPlusTree"]


class _Node:
    """Internal representation shared by leaf and interior nodes."""

    __slots__ = ("is_leaf", "keys", "children", "values", "next_leaf", "prev_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[float] = []
        # Interior nodes: children[i] covers keys < keys[i]; len(children) == len(keys)+1.
        self.children: list["_Node"] = []
        # Leaf nodes: values[i] is the list of payloads stored under keys[i].
        self.values: list[list[object]] = []
        self.next_leaf: "_Node | None" = None
        self.prev_leaf: "_Node | None" = None


class BPlusTree:
    """A B+-tree over float keys with duplicate support and range scans.

    Parameters
    ----------
    order:
        Maximum number of keys per node before it splits (>= 3).
    coerce:
        Applied to every key on insert/delete.  The eps index keeps the
        default (``float``); secondary indexes pass ``None`` so the tree
        stores the column's values as-is (ints, floats or strings — any
        mutually comparable type).
    """

    def __init__(self, order: int = 64, coerce=float):
        if order < 3:
            raise DatabaseError("B+-tree order must be >= 3")
        self.order = order
        self._coerce = coerce
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._distinct = 0
        self._height = 1

    # -- basic properties ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def distinct_keys(self) -> int:
        """Number of distinct keys currently stored (selectivity statistics)."""
        return self._distinct

    @property
    def height(self) -> int:
        """Number of levels from root to leaves."""
        return self._height

    # -- search ----------------------------------------------------------------------

    def _find_leaf(self, key: float) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: float) -> list[object]:
        """All payloads stored under exactly ``key`` (empty list if none)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def range_scan(
        self, low: float | None = None, high: float | None = None
    ) -> Iterator[tuple[float, object]]:
        """Yield ``(key, payload)`` pairs with ``low <= key <= high`` in key order.

        ``None`` bounds are unbounded on that side.  This is the access path
        the incremental step uses to enumerate the water band.
        """
        if low is not None and high is not None and low > high:
            return
        leaf = self._find_leaf(low) if low is not None else self._leftmost_leaf()
        start = bisect.bisect_left(leaf.keys, low) if low is not None else 0
        node: _Node | None = leaf
        index = start
        while node is not None:
            while index < len(node.keys):
                key = node.keys[index]
                if high is not None and key > high:
                    return
                for payload in node.values[index]:
                    yield key, payload
                index += 1
            node = node.next_leaf
            index = 0

    def range_scan_reversed(
        self, low: float | None = None, high: float | None = None
    ) -> Iterator[tuple[float, object]]:
        """Yield ``(key, payload)`` pairs with ``low <= key <= high`` in
        *descending* key order.

        Walks the doubly-linked leaf chain backwards from the last leaf that
        can hold ``high``, so ``ORDER BY col DESC LIMIT k`` consumers can
        early-exit after k entries exactly like the ascending walk.  Payloads
        under a shared key come out in reverse insertion order (the mirror of
        the forward scan).
        """
        if low is not None and high is not None and low > high:
            return
        if high is not None:
            leaf = self._find_leaf(high)
            # bisect_right - 1 lands on the last key <= high in this leaf; if
            # every key here is > high the walk starts in the previous leaf.
            index = bisect.bisect_right(leaf.keys, high) - 1
        else:
            leaf = self._rightmost_leaf()
            index = len(leaf.keys) - 1
        node: _Node | None = leaf
        while node is not None:
            while index >= 0:
                key = node.keys[index]
                if low is not None and key < low:
                    return
                for payload in reversed(node.values[index]):
                    yield key, payload
                index -= 1
            node = node.prev_leaf
            index = len(node.keys) - 1 if node is not None else -1

    def items(self) -> Iterator[tuple[float, object]]:
        """Every ``(key, payload)`` pair in key order."""
        return self.range_scan(None, None)

    def min_key(self) -> float | None:
        """Smallest key in the tree, or None when empty."""
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def max_key(self) -> float | None:
        """Largest key in the tree, or None when empty."""
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1] if node.keys else None

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _rightmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node

    # -- mutation -----------------------------------------------------------------------

    def insert(self, key: float, payload: object) -> None:
        """Insert ``payload`` under ``key`` (duplicates allowed)."""
        if self._coerce is not None:
            key = self._coerce(key)
        split = self._insert_recursive(self._root, key, payload)
        if split is not None:
            separator, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert_recursive(
        self, node: _Node, key: float, payload: object
    ) -> tuple[float, _Node] | None:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(payload)
            else:
                node.keys.insert(index, key)
                node.values.insert(index, [payload])
                self._distinct += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert_recursive(node.children[index], key, payload)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) > self.order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[float, _Node]:
        middle = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        right.prev_leaf = node
        if right.next_leaf is not None:
            right.next_leaf.prev_leaf = right
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node) -> tuple[float, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    def delete(self, key: float, payload: object) -> bool:
        """Remove one occurrence of ``payload`` under ``key``.

        Returns True when something was removed.  The tree uses lazy deletion
        (no rebalancing); Hazy rebuilds the index wholesale at reorganization
        time, so sustained deletes never accumulate.
        """
        if self._coerce is not None:
            key = self._coerce(key)
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        bucket = leaf.values[index]
        try:
            bucket.remove(payload)
        except ValueError:
            return False
        if not bucket:
            leaf.keys.pop(index)
            leaf.values.pop(index)
            self._distinct -= 1
        self._size -= 1
        return True

    def clear(self) -> None:
        """Remove everything."""
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._distinct = 0
        self._height = 1

    @classmethod
    def bulk_load(
        cls, items: Iterable[tuple[float, object]], order: int = 64, coerce=float
    ) -> "BPlusTree":
        """Build a tree from (not necessarily sorted) ``(key, payload)`` pairs."""
        tree = cls(order=order, coerce=coerce)
        for key, payload in sorted(items, key=lambda pair: pair[0]):
            tree.insert(key, payload)
        return tree

    # -- invariant checking (used by property tests) ----------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`DatabaseError` if structural invariants are violated."""
        self._check_node(self._root, low=None, high=None)
        keys = [key for key, _ in self.items()]
        if keys != sorted(keys):
            raise DatabaseError("leaf chain is not in sorted order")
        # The prev_leaf chain must be the exact mirror of next_leaf.
        leaf = self._leftmost_leaf()
        if leaf.prev_leaf is not None:
            raise DatabaseError("leftmost leaf has a prev_leaf")
        while leaf.next_leaf is not None:
            if leaf.next_leaf.prev_leaf is not leaf:
                raise DatabaseError("leaf back-chain does not mirror the forward chain")
            leaf = leaf.next_leaf
        if leaf is not self._rightmost_leaf():
            raise DatabaseError("forward leaf chain does not end at the rightmost leaf")
        reverse_keys = [key for key, _ in self.range_scan_reversed()]
        if reverse_keys != keys[::-1]:
            raise DatabaseError("reverse scan disagrees with the forward scan")

    def _check_node(self, node: _Node, low: float | None, high: float | None) -> None:
        if node.keys != sorted(node.keys):
            raise DatabaseError("node keys out of order")
        for key in node.keys:
            if low is not None and key < low:
                raise DatabaseError("key below subtree lower bound")
            if high is not None and key > high:
                raise DatabaseError("key above subtree upper bound")
        if node.is_leaf:
            if len(node.keys) != len(node.values):
                raise DatabaseError("leaf keys/values length mismatch")
            return
        if len(node.children) != len(node.keys) + 1:
            raise DatabaseError("interior fan-out mismatch")
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            self._check_node(child, bounds[i], bounds[i + 1])
