"""A disk manager plus LRU buffer pool with deterministic cost accounting.

The buffer pool is where "on-disk" and "in-memory" architectures diverge in
this reproduction: every page fetched that is not resident charges the cost
model's page-read price, every dirty eviction charges a page write, and all of
it is accumulated in :class:`IOStatistics`.  A pool with ``capacity_pages``
large enough to hold the whole table behaves exactly like the main-memory
architecture (after warm-up), which is how Hazy-MM is modeled.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.db.costmodel import CostModel
from repro.db.page import Page
from repro.exceptions import PageError

__all__ = ["IOStatistics", "DiskManager", "BufferPool"]


@dataclass
class IOStatistics:
    """Counters for simulated I/O and CPU work, plus the accumulated cost."""

    page_reads: int = 0
    page_writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0
    tuples_read: int = 0
    tuples_written: int = 0
    dot_products: int = 0
    simulated_seconds: float = 0.0
    detail: dict[str, float] = field(default_factory=dict)

    def charge(self, seconds: float, category: str | None = None) -> None:
        """Add ``seconds`` of simulated cost, optionally tagged by category."""
        self.simulated_seconds += seconds
        if category:
            self.detail[category] = self.detail.get(category, 0.0) + seconds

    def snapshot(self) -> "IOStatistics":
        """Copy of the current counters (detail dict copied shallowly)."""
        clone = IOStatistics(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            sequential_reads=self.sequential_reads,
            random_reads=self.random_reads,
            buffer_hits=self.buffer_hits,
            buffer_misses=self.buffer_misses,
            evictions=self.evictions,
            tuples_read=self.tuples_read,
            tuples_written=self.tuples_written,
            dot_products=self.dot_products,
            simulated_seconds=self.simulated_seconds,
        )
        clone.detail = dict(self.detail)
        return clone

    def diff(self, earlier: "IOStatistics") -> "IOStatistics":
        """Counters accumulated since ``earlier`` (a snapshot taken before)."""
        result = IOStatistics(
            page_reads=self.page_reads - earlier.page_reads,
            page_writes=self.page_writes - earlier.page_writes,
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            random_reads=self.random_reads - earlier.random_reads,
            buffer_hits=self.buffer_hits - earlier.buffer_hits,
            buffer_misses=self.buffer_misses - earlier.buffer_misses,
            evictions=self.evictions - earlier.evictions,
            tuples_read=self.tuples_read - earlier.tuples_read,
            tuples_written=self.tuples_written - earlier.tuples_written,
            dot_products=self.dot_products - earlier.dot_products,
            simulated_seconds=self.simulated_seconds - earlier.simulated_seconds,
        )
        result.detail = {
            key: value - earlier.detail.get(key, 0.0) for key, value in self.detail.items()
        }
        return result


class DiskManager:
    """Owns every page ever allocated; the "disk" below the buffer pool."""

    def __init__(self, page_size_bytes: int):
        self.page_size_bytes = page_size_bytes
        self._pages: dict[int, Page] = {}
        self._next_page_id = 0

    def allocate(self) -> Page:
        """Allocate a fresh empty page."""
        page = Page(self._next_page_id, self.page_size_bytes)
        self._pages[page.page_id] = page
        self._next_page_id += 1
        return page

    def get(self, page_id: int) -> Page:
        """Fetch a page by id (no cost accounting — that is the pool's job)."""
        if page_id not in self._pages:
            raise PageError(f"unknown page id {page_id}")
        return self._pages[page_id]

    def deallocate(self, page_id: int) -> None:
        """Drop a page (used when heap files are rewritten)."""
        self._pages.pop(page_id, None)

    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)


class BufferPool:
    """LRU page cache charging the cost model for misses and dirty evictions.

    Parameters
    ----------
    cost_model:
        Prices for page reads/writes and CPU work.
    capacity_pages:
        How many pages may be resident at once.  ``None`` means unbounded,
        which (after warm-up) behaves like a pure main-memory system.
    statistics:
        Shared :class:`IOStatistics` instance; one per database so all tables
        account into the same ledger.
    """

    def __init__(
        self,
        cost_model: CostModel,
        capacity_pages: int | None = None,
        statistics: IOStatistics | None = None,
    ):
        if capacity_pages is not None and capacity_pages < 1:
            raise PageError("buffer pool capacity must be >= 1 page")
        self.cost_model = cost_model
        self.capacity_pages = capacity_pages
        self.stats = statistics if statistics is not None else IOStatistics()
        self.disk = DiskManager(cost_model.page_size_bytes)
        self._resident: OrderedDict[int, Page] = OrderedDict()

    # -- page lifecycle --------------------------------------------------------

    def allocate_page(self) -> Page:
        """Allocate a new page and make it resident (no read charge)."""
        page = self.disk.allocate()
        self._make_resident(page, charge_read=False, sequential=True)
        return page

    def fetch(self, page_id: int, sequential: bool = False) -> Page:
        """Return the page, charging a read if it is not resident."""
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self.stats.buffer_hits += 1
            return self._resident[page_id]
        self.stats.buffer_misses += 1
        page = self.disk.get(page_id)
        self._make_resident(page, charge_read=True, sequential=sequential)
        return page

    def mark_dirty(self, page_id: int) -> None:
        """Record that a resident page has been modified."""
        page = self.disk.get(page_id)
        page.dirty = True

    def drop_page(self, page_id: int) -> None:
        """Remove a page entirely (heap rewrite); dirty data is charged as a write."""
        page = self._resident.pop(page_id, None)
        if page is not None and page.dirty:
            self._charge_write(sequential=True)
        self.disk.deallocate(page_id)

    def flush_all(self) -> None:
        """Write back every dirty resident page (sequential pricing)."""
        for page in self._resident.values():
            if page.dirty:
                self._charge_write(sequential=True)
                page.dirty = False

    def resident_page_count(self) -> int:
        """Number of pages currently cached."""
        return len(self._resident)

    def is_resident(self, page_id: int) -> bool:
        """Whether a page is currently cached (no cost, no LRU update)."""
        return page_id in self._resident

    # -- internals --------------------------------------------------------------

    def _make_resident(self, page: Page, charge_read: bool, sequential: bool) -> None:
        if charge_read:
            self._charge_read(sequential)
        self._resident[page.page_id] = page
        self._resident.move_to_end(page.page_id)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        if self.capacity_pages is None:
            return
        while len(self._resident) > self.capacity_pages:
            evicted_id, evicted = self._resident.popitem(last=False)
            self.stats.evictions += 1
            if evicted.dirty:
                self._charge_write(sequential=False)
                evicted.dirty = False
            # The page data itself stays in the DiskManager; only residency is lost.
            del evicted_id

    def _charge_read(self, sequential: bool) -> None:
        self.stats.page_reads += 1
        if sequential:
            self.stats.sequential_reads += 1
            self.stats.charge(self.cost_model.sequential_page_read, "page_read")
        else:
            self.stats.random_reads += 1
            self.stats.charge(self.cost_model.random_page_read, "page_read")

    def _charge_write(self, sequential: bool) -> None:
        self.stats.page_writes += 1
        cost = (
            self.cost_model.sequential_page_write
            if sequential
            else self.cost_model.random_page_write
        )
        self.stats.charge(cost, "page_write")
