"""A small relational substrate standing in for PostgreSQL.

The Hazy paper runs inside PostgreSQL 8.4; this package provides the pieces of
an RDBMS that the view-maintenance algorithms actually exercise:

* slotted pages, heap files and an LRU buffer pool with an explicit,
  deterministic I/O **cost model** (:mod:`repro.db.costmodel`) so that on-disk
  vs. in-memory comparisons are meaningful without real disks;
* a clustered B+-tree (:mod:`repro.db.btree`) used to index the scratch table
  ``H`` on ``eps``, and a hash index for primary-key lookups;
* tables with schemas, a catalog, and triggers — the mechanism Hazy uses to
  watch the training-example table for inserts;
* a small SQL dialect (:mod:`repro.db.sql`) including the
  ``CREATE CLASSIFICATION VIEW`` statement of the paper's Example 2.1.

Everything lives in process memory; "disk" is simulated by the buffer pool's
cost accounting, which the benchmarks report alongside wall-clock time.
"""

from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.catalog import Catalog
from repro.db.costmodel import CostModel
from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.triggers import Trigger, TriggerEvent
from repro.db.types import DataType

__all__ = [
    "DataType",
    "Column",
    "TableSchema",
    "Table",
    "Catalog",
    "Trigger",
    "TriggerEvent",
    "BufferPool",
    "IOStatistics",
    "CostModel",
    "Database",
]
