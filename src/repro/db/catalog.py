"""The system catalog: tables, views, classification views, system tables."""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping

from repro.db.table import Table
from repro.exceptions import CatalogError

__all__ = ["Catalog"]

#: A logical (non-materialized) view: a callable producing rows on demand.
ViewFunction = Callable[[], Iterator[Mapping[str, object]]]


class Catalog:
    """Name -> object mapping for tables, logical views and classification views.

    Names are case-insensitive, as in PostgreSQL's default folding.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, ViewFunction] = {}
        self._classification_views: dict[str, object] = {}
        self._system_tables: dict[str, ViewFunction] = {}
        self._indexes: dict[str, str] = {}  # index name -> owning table name (lowered)
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every namespace or access-path change.

        Cached query plans record the version they were built against; the
        executor re-plans when it moved, so a plan cached by one connection
        can never silently read a table or view another connection dropped
        or replaced.  Index DDL bumps it too: ``CREATE INDEX`` opens an
        access path cached plans should re-cost, and ``DROP INDEX`` kills one
        a cached :class:`~repro.db.sql.plan.SecondaryIndexRange` would
        otherwise keep reading through a no-longer-maintained tree.
        """
        return self._version

    # -- tables ---------------------------------------------------------------------

    def register_table(self, table: Table) -> None:
        """Add a table; duplicate names are an error."""
        key = table.name.lower()
        if key in self._tables or key in self._views or key in self._classification_views:
            raise CatalogError(f"object {table.name!r} already exists")
        self._tables[key] = table
        self._version += 1

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        table = self._tables.get(name.lower())
        if table is None:
            raise CatalogError(f"no table named {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name.lower() in self._tables

    def drop_table(self, name: str) -> None:
        """Remove a table (and its index registrations) from the catalog."""
        if name.lower() not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[name.lower()]
        self._indexes = {
            index: table for index, table in self._indexes.items() if table != name.lower()
        }
        self._version += 1

    def table_names(self) -> list[str]:
        """Sorted table names."""
        return sorted(table.name for table in self._tables.values())

    # -- secondary indexes -------------------------------------------------------------

    def register_index(self, name: str, table_name: str) -> None:
        """Record a secondary index (its tree lives on the owning Table)."""
        key = name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        self._indexes[key] = table_name.lower()
        self._version += 1

    def unregister_index(self, name: str) -> None:
        """Forget a secondary index registration."""
        if name.lower() not in self._indexes:
            raise CatalogError(f"no index named {name!r}")
        del self._indexes[name.lower()]
        self._version += 1

    def has_index(self, name: str) -> bool:
        """Whether a secondary index with this name exists."""
        return name.lower() in self._indexes

    def index_table(self, name: str) -> Table:
        """The table owning the index called ``name``."""
        table_key = self._indexes.get(name.lower())
        if table_key is None:
            raise CatalogError(f"no index named {name!r}")
        return self._tables[table_key]

    def index_names(self) -> list[str]:
        """Sorted secondary-index names."""
        return sorted(self._indexes)

    # -- logical views -----------------------------------------------------------------

    def register_view(self, name: str, producer: ViewFunction) -> None:
        """Add a logical view backed by a row-producing callable."""
        key = name.lower()
        if key in self._tables or key in self._views or key in self._classification_views:
            raise CatalogError(f"object {name!r} already exists")
        self._views[key] = producer
        self._version += 1

    def view(self, name: str) -> ViewFunction:
        """Look up a logical view by name."""
        producer = self._views.get(name.lower())
        if producer is None:
            raise CatalogError(f"no view named {name!r}")
        return producer

    def has_view(self, name: str) -> bool:
        """Whether a logical view with this name exists."""
        return name.lower() in self._views

    # -- classification views -------------------------------------------------------------

    def register_classification_view(self, name: str, view: object) -> None:
        """Add a classification view (maintained by the Hazy engine)."""
        key = name.lower()
        if key in self._tables or key in self._views or key in self._classification_views:
            raise CatalogError(f"object {name!r} already exists")
        self._classification_views[key] = view
        self._version += 1

    def unregister_classification_view(self, name: str) -> bool:
        """Remove a classification view registration (engine rollback path)."""
        removed = self._classification_views.pop(name.lower(), None) is not None
        if removed:
            self._version += 1
        return removed

    def classification_view(self, name: str) -> object:
        """Look up a classification view by name."""
        view = self._classification_views.get(name.lower())
        if view is None:
            raise CatalogError(f"no classification view named {name!r}")
        return view

    def has_classification_view(self, name: str) -> bool:
        """Whether a classification view with this name exists."""
        return name.lower() in self._classification_views

    def classification_view_names(self) -> list[str]:
        """Sorted classification view names."""
        return sorted(self._classification_views)

    # -- system tables ---------------------------------------------------------------------

    def register_system_table(self, name: str, producer: ViewFunction) -> None:
        """Add (or replace) a virtual ``system.*`` table.

        System tables are observability surfaces (``system.metrics``,
        ``system.traces``, ...) backed by row-producing callables; unlike user
        namespaces, re-registration silently replaces — rebuilding an engine
        on the same database re-binds ``system.served_views`` rather than
        erroring.  The version still bumps so cached plans re-resolve.
        """
        self._system_tables[name.lower()] = producer
        self._version += 1

    def system_table(self, name: str) -> ViewFunction:
        """Look up a system table's row producer by name."""
        producer = self._system_tables.get(name.lower())
        if producer is None:
            raise CatalogError(f"no system table named {name!r}")
        return producer

    def has_system_table(self, name: str) -> bool:
        """Whether a system table with this name exists."""
        return name.lower() in self._system_tables

    def system_table_names(self) -> list[str]:
        """Sorted system table names."""
        return sorted(self._system_tables)

    def object_kind(self, name: str) -> str | None:
        """Which namespace a name lives in: ``"table"``, ``"view"``,
        ``"classification_view"``, ``"system_table"``, or None when unknown.
        Used by the SQL front-end to pick an access path without
        trial-and-error lookups."""
        key = name.lower()
        if key in self._tables:
            return "table"
        if key in self._views:
            return "view"
        if key in self._classification_views:
            return "classification_view"
        if key in self._system_tables:
            return "system_table"
        return None

    def resolve(self, name: str) -> object:
        """Return whichever catalog object (table/view/classification view/
        system table) matches."""
        key = name.lower()
        if key in self._tables:
            return self._tables[key]
        if key in self._views:
            return self._views[key]
        if key in self._classification_views:
            return self._classification_views[key]
        if key in self._system_tables:
            return self._system_tables[key]
        raise CatalogError(f"no catalog object named {name!r}")
