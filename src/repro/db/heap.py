"""Heap files: an append-ordered collection of slotted pages behind the buffer pool."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.db.buffer_pool import BufferPool
from repro.db.page import RecordId
from repro.exceptions import PageError

__all__ = ["HeapFile"]


class HeapFile:
    """Rows stored in insertion order across pages allocated from a buffer pool.

    A heap file does not know about schemas — callers pass a ``row_size``
    function so the file can pack pages.  The Hazy on-disk architecture
    *rewrites* its heap file in ``eps`` order at each reorganization, which is
    what makes range scans over the water band touch few, contiguous pages.
    """

    def __init__(self, pool: BufferPool, sizer: Callable[[dict[str, object]], int]):
        self.pool = pool
        self.sizer = sizer
        self._page_ids: list[int] = []
        self._row_count = 0

    # -- write path --------------------------------------------------------------

    def insert(self, row: dict[str, object]) -> RecordId:
        """Append a row, allocating a new page when the last one is full."""
        row_size = self.sizer(row)
        if row_size > self.pool.cost_model.page_size_bytes:
            raise PageError(
                f"row of {row_size} bytes exceeds the page size "
                f"{self.pool.cost_model.page_size_bytes}"
            )
        page = None
        if self._page_ids:
            last = self.pool.fetch(self._page_ids[-1], sequential=True)
            if last.fits(row_size):
                page = last
        if page is None:
            page = self.pool.allocate_page()
            self._page_ids.append(page.page_id)
        slot = page.insert(row, row_size)
        self.pool.mark_dirty(page.page_id)
        self.pool.stats.tuples_written += 1
        self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "tuple_write")
        self._row_count += 1
        return RecordId(page.page_id, slot)

    def update(self, rid: RecordId, row: dict[str, object], sequential: bool = False) -> None:
        """Overwrite the row at ``rid`` in place."""
        page = self.pool.fetch(rid.page_id, sequential=sequential)
        page.update(rid.slot, row, self.sizer(row))
        self.pool.mark_dirty(rid.page_id)
        self.pool.stats.tuples_written += 1
        self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "tuple_write")

    def delete(self, rid: RecordId) -> None:
        """Tombstone the row at ``rid``."""
        page = self.pool.fetch(rid.page_id)
        page.delete(rid.slot)
        self.pool.mark_dirty(rid.page_id)
        self._row_count -= 1

    def truncate(self) -> None:
        """Drop every page (used when the file is rebuilt in a new order)."""
        for page_id in self._page_ids:
            self.pool.drop_page(page_id)
        self._page_ids = []
        self._row_count = 0

    def bulk_rebuild(self, rows: Iterable[dict[str, object]]) -> list[RecordId]:
        """Replace the file's contents with ``rows`` in the given order.

        Returns the new record id of each row, in order.  This is the physical
        half of a Hazy reorganization: rewrite the heap sorted by ``eps``.
        """
        self.truncate()
        return [self.insert(row) for row in rows]

    # -- read path ----------------------------------------------------------------

    def read(self, rid: RecordId, sequential: bool = False) -> dict[str, object]:
        """Return the row stored at ``rid``."""
        page = self.pool.fetch(rid.page_id, sequential=sequential)
        self.pool.stats.tuples_read += 1
        self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "tuple_read")
        return page.read(rid.slot)

    def scan(self) -> Iterator[tuple[RecordId, dict[str, object]]]:
        """Full sequential scan in physical order."""
        for page_id in self._page_ids:
            page = self.pool.fetch(page_id, sequential=True)
            for slot, row in page.rows():
                self.pool.stats.tuples_read += 1
                self.pool.stats.charge(self.pool.cost_model.tuple_cpu, "tuple_read")
                yield RecordId(page_id, slot), row

    # -- stats ---------------------------------------------------------------------

    def page_count(self) -> int:
        """Number of pages the file spans."""
        return len(self._page_ids)

    def row_count(self) -> int:
        """Number of live rows."""
        return self._row_count

    def page_ids(self) -> list[int]:
        """The file's page ids in physical order."""
        return list(self._page_ids)
