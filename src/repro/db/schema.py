"""Table schemas: column definitions, validation, and row sizing."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.db.types import DataType, coerce_value, estimate_value_size
from repro.exceptions import SchemaError

__all__ = ["Column", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """One column: a name, a data type, and a nullability flag."""

    name: str
    data_type: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


class TableSchema:
    """An ordered set of columns plus an optional primary-key column.

    Rows are plain dictionaries keyed by column name; :meth:`validate_row`
    coerces values to the declared types and fills missing columns with NULL.
    """

    def __init__(self, name: str, columns: Sequence[Column], primary_key: str | None = None):
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for column in columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            seen.add(lowered)
        self.name = name
        self.columns = tuple(columns)
        self._by_name = {column.name.lower(): column for column in columns}
        if primary_key is not None:
            if primary_key.lower() not in self._by_name:
                raise SchemaError(
                    f"primary key {primary_key!r} is not a column of table {name!r}"
                )
            primary_key = self._by_name[primary_key.lower()].name
        self.primary_key = primary_key

    # -- introspection -------------------------------------------------------

    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        """Case-insensitive column existence check."""
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        column = self._by_name.get(name.lower())
        if column is None:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return column

    # -- row handling ---------------------------------------------------------

    def validate_row(self, row: Mapping[str, object]) -> dict[str, object]:
        """Return a coerced row dict containing exactly the schema's columns."""
        unknown = [key for key in row if not self.has_column(key)]
        if unknown:
            raise SchemaError(f"table {self.name!r} has no column(s) {unknown}")
        validated: dict[str, object] = {}
        for column in self.columns:
            value = None
            for key, candidate in row.items():
                if key.lower() == column.name.lower():
                    value = candidate
                    break
            coerced = coerce_value(value, column.data_type, column.name)
            if coerced is None and not column.nullable:
                raise SchemaError(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )
            validated[column.name] = coerced
        if self.primary_key is not None and validated[self.primary_key] is None:
            raise SchemaError(f"primary key {self.primary_key!r} may not be NULL")
        return validated

    def row_size(self, row: Mapping[str, object]) -> int:
        """Approximate serialized size of a row in bytes."""
        return sum(estimate_value_size(row.get(column.name)) for column in self.columns) + 8

    def project(self, row: Mapping[str, object], column_names: Iterable[str]) -> dict[str, object]:
        """Project a row onto a subset of columns (validating their existence)."""
        return {self.column(name).name: row.get(self.column(name).name) for name in column_names}

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.data_type.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols}, pk={self.primary_key!r})"
