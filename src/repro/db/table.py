"""Tables: schema + heap file + primary-key hash index + secondary indexes + triggers."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence

from repro.db.buffer_pool import BufferPool
from repro.db.hash_index import HashIndex
from repro.db.heap import HeapFile
from repro.db.page import RecordId
from repro.db.schema import TableSchema
from repro.db.secondary_index import SecondaryIndex
from repro.db.triggers import Trigger, TriggerEvent, TriggerSet
from repro.exceptions import DuplicateKeyError, KeyNotFoundError, SchemaError

__all__ = ["Table"]


class Table:
    """A heap-backed table with an optional unique primary-key index.

    All reads and writes go through the buffer pool so the database-wide
    :class:`~repro.db.buffer_pool.IOStatistics` ledger reflects every access.
    ``CREATE INDEX`` attaches :class:`~repro.db.secondary_index.SecondaryIndex`
    B+-trees which every write maintains inline, so index scans never observe
    ghost or missing rows.
    """

    def __init__(self, schema: TableSchema, pool: BufferPool):
        self.schema = schema
        self.pool = pool
        self.heap = HeapFile(pool, sizer=schema.row_size)
        self.primary_index = HashIndex(schema.primary_key) if schema.primary_key else None
        self.secondary_indexes: dict[str, SecondaryIndex] = {}
        self.triggers = TriggerSet()

    @property
    def name(self) -> str:
        """The table's name (from its schema)."""
        return self.schema.name

    # -- write path -----------------------------------------------------------------

    def insert(self, row: Mapping[str, object]) -> RecordId:
        """Validate, store and index a new row, then fire AFTER INSERT triggers."""
        validated = self.schema.validate_row(row)
        if self.primary_index is not None:
            key = validated[self.schema.primary_key]
            if key in self.primary_index:
                raise DuplicateKeyError(
                    f"table {self.name!r}: duplicate primary key {key!r}"
                )
        rid = self.heap.insert(validated)
        if self.primary_index is not None:
            self.primary_index.insert(validated[self.schema.primary_key], rid)
        for index in self.secondary_indexes.values():
            index.insert(validated, rid)
        self.triggers.fire(TriggerEvent.AFTER_INSERT, self.name, validated, None)
        return rid

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def update_by_key(self, key: object, changes: Mapping[str, object]) -> dict[str, object]:
        """Update the row with primary key ``key`` in place; returns the new row."""
        if self.primary_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        rid = self.primary_index.lookup(key)
        old_row = dict(self.heap.read(rid))
        merged = dict(old_row)
        merged.update(changes)
        validated = self.schema.validate_row(merged)
        new_key = validated[self.schema.primary_key]
        if new_key != key and new_key in self.primary_index:
            raise DuplicateKeyError(f"table {self.name!r}: duplicate primary key {new_key!r}")
        self.heap.update(rid, validated)
        if new_key != key:
            self.primary_index.delete(key)
            self.primary_index.insert(new_key, rid)
        for index in self.secondary_indexes.values():
            index.replace(old_row, validated, rid)
        self.triggers.fire(TriggerEvent.AFTER_UPDATE, self.name, validated, old_row)
        return validated

    def delete_by_key(self, key: object) -> dict[str, object]:
        """Delete the row with primary key ``key``; returns the deleted row."""
        if self.primary_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        rid = self.primary_index.lookup(key)
        old_row = dict(self.heap.read(rid))
        self.heap.delete(rid)
        self.primary_index.delete(key)
        for index in self.secondary_indexes.values():
            index.delete(old_row, rid)
        self.triggers.fire(TriggerEvent.AFTER_DELETE, self.name, None, old_row)
        return old_row

    def truncate(self) -> None:
        """Remove every row (no triggers fire; secondary indexes empty with the heap)."""
        self.heap.truncate()
        if self.primary_index is not None:
            self.primary_index.clear()
        for index in self.secondary_indexes.values():
            index.clear()

    # -- read path ---------------------------------------------------------------------

    def get_by_key(self, key: object) -> dict[str, object]:
        """Point lookup through the primary-key hash index (random page access)."""
        if self.primary_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        rid = self.primary_index.lookup(key)
        return dict(self.heap.read(rid, sequential=False))

    def try_get_by_key(self, key: object) -> dict[str, object] | None:
        """Point lookup returning None when the key is absent."""
        try:
            return self.get_by_key(key)
        except KeyNotFoundError:
            return None

    def scan(
        self, predicate: Callable[[dict[str, object]], bool] | None = None
    ) -> Iterator[dict[str, object]]:
        """Sequential scan, optionally filtered by ``predicate``."""
        for _, row in self.heap.scan():
            row_copy = dict(row)
            if predicate is None or predicate(row_copy):
                yield row_copy

    def count(self, predicate: Callable[[dict[str, object]], bool] | None = None) -> int:
        """Number of rows (matching ``predicate`` when given)."""
        return sum(1 for _ in self.scan(predicate))

    def row_count(self) -> int:
        """Live row count without touching pages (catalog metadata)."""
        return self.heap.row_count()

    def page_count(self) -> int:
        """Number of heap pages."""
        return self.heap.page_count()

    def approximate_size_bytes(self) -> int:
        """Approximate table size (pages x page size)."""
        return self.page_count() * self.pool.cost_model.page_size_bytes

    # -- secondary indexes --------------------------------------------------------------

    def create_secondary_index(
        self, name: str, columns: str | Sequence[str]
    ) -> SecondaryIndex:
        """Build a B+-tree index over ``columns``, backfilled from a full scan.

        A single column name builds a classic value-keyed index; a sequence of
        names builds a composite index keyed on the tuple of values.  The
        backfill prices like the physical operation it models: one sequential
        heap scan (charged by the scan itself) plus an n·log n sort charge for
        building the tree, tagged ``index_build``.
        """
        key = name.lower()
        if key in self.secondary_indexes:
            raise DuplicateKeyError(
                f"table {self.name!r} already has an index named {name!r}"
            )
        if isinstance(columns, str):
            columns = (columns,)
        # raises SchemaError if any column is unknown
        canonical = tuple(self.schema.column(column).name for column in columns)
        seen: set[str] = set()
        for column in canonical:
            if column.lower() in seen:
                raise SchemaError(
                    f"index {name!r} lists column {column!r} more than once"
                )
            seen.add(column.lower())
        index = SecondaryIndex(name, canonical, self.pool)
        for rid, row in self.heap.scan():
            index.insert(row, rid)
        self.pool.stats.charge(
            self.pool.cost_model.sort_cost(len(index)), "index_build"
        )
        self.secondary_indexes[key] = index
        return index

    def drop_secondary_index(self, name: str) -> bool:
        """Detach (and stop maintaining) the index called ``name``."""
        return self.secondary_indexes.pop(name.lower(), None) is not None

    def secondary_index(self, name: str) -> SecondaryIndex | None:
        """The index called ``name``, or None."""
        return self.secondary_indexes.get(name.lower())

    def indexes_on(self, column: str) -> list[SecondaryIndex]:
        """Every secondary index whose *leading* key column is ``column``
        (case-insensitive) — the ones whose key order sorts by it."""
        return [
            index
            for index in self.secondary_indexes.values()
            if index.column.lower() == column.lower()
        ]

    def secondary_index_names(self) -> list[str]:
        """Sorted names of this table's secondary indexes."""
        return sorted(index.name for index in self.secondary_indexes.values())

    # -- triggers -----------------------------------------------------------------------

    def add_trigger(self, trigger: Trigger) -> None:
        """Attach a row-level trigger."""
        self.triggers.add(trigger)

    def drop_trigger(self, name: str) -> bool:
        """Detach the trigger called ``name``."""
        return self.triggers.remove(name)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.row_count()}, pages={self.page_count()})"
