"""The Database facade: catalog + buffer pool + SQL front-end."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.catalog import Catalog
from repro.db.costmodel import CostModel
from repro.db.schema import Column, TableSchema
from repro.db.sql.executor import ResultSet, SQLExecutor
from repro.db.sql.parser import parse
from repro.db.table import Table
from repro.db.types import DataType
from repro.obs import Observability

__all__ = ["Database"]


class Database:
    """An embedded relational database with simulated I/O accounting.

    Parameters
    ----------
    cost_model:
        Prices for the simulated storage operations; default models an
        on-disk system.  Use :meth:`repro.db.costmodel.CostModel.main_memory`
        for an in-memory database.
    buffer_pool_pages:
        How many pages the buffer pool may cache (None = unbounded).
    observability:
        The :class:`repro.obs.Observability` context every layer above this
        database shares (metrics registry, trace ring, slow-query log).
        Default constructs an enabled one; pass
        ``Observability(enabled=False)`` for the zero-overhead null path.
    execution_mode:
        ``"batched"`` (default) runs plan nodes over columnar chunks;
        ``"row"`` forces the row-at-a-time path and charges
        ``row_interpret_cpu`` per tuple per operator, modeling Volcano-style
        interpretation overhead.  Both modes produce identical rows.

    Examples
    --------
    >>> db = Database()
    >>> db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    >>> db.execute("INSERT INTO papers (id, title) VALUES (1, 'Hazy')").rowcount
    1
    >>> db.execute("SELECT COUNT(*) FROM papers").scalar()
    1
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        buffer_pool_pages: int | None = None,
        observability: Observability | None = None,
        execution_mode: str = "batched",
    ):
        if execution_mode not in ("batched", "row"):
            raise ValueError(f"unknown execution_mode {execution_mode!r}; use 'batched' or 'row'")
        self.execution_mode = execution_mode
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.stats = IOStatistics()
        self.pool = BufferPool(self.cost_model, buffer_pool_pages, self.stats)
        self.catalog = Catalog()
        self.executor = SQLExecutor(self)
        self.obs = observability if observability is not None else Observability()
        self.obs.registry.provider("db", self._db_metrics)
        self._register_system_tables()

    # -- observability -----------------------------------------------------------------

    def _db_metrics(self) -> dict[str, float]:
        """Buffer-pool and cost-ledger counters, mirrored into the registry."""
        stats = self.stats
        metrics: dict[str, float] = {
            "buffer.hits_total": stats.buffer_hits,
            "buffer.misses_total": stats.buffer_misses,
            "buffer.evictions_total": stats.evictions,
            "buffer.resident_pages": self.pool.resident_page_count(),
            "io.page_reads_total": stats.page_reads,
            "io.page_writes_total": stats.page_writes,
            "io.sequential_reads_total": stats.sequential_reads,
            "io.random_reads_total": stats.random_reads,
            "io.tuples_read_total": stats.tuples_read,
            "io.tuples_written_total": stats.tuples_written,
            "io.dot_products_total": stats.dot_products,
            "cost.simulated_seconds_total": stats.simulated_seconds,
        }
        for tag, seconds in stats.detail.items():
            metrics[f"cost.{tag}_simulated_seconds_total"] = seconds
        return metrics

    def _register_system_tables(self) -> None:
        """Expose the observability surfaces as virtual ``system.*`` tables."""
        obs = self.obs
        catalog = self.catalog

        def metrics_rows():
            return [
                {"name": sample.name, "kind": sample.kind, "value": sample.value}
                for sample in obs.registry.collect()
            ]

        def trace_summary(trace):
            return {
                "trace_id": trace.trace_id,
                "sql": trace.sql,
                "simulated_seconds": trace.simulated_seconds,
                "wall_seconds": trace.wall_seconds,
                "spans": len(trace.spans()),
            }

        def slow_query_rows():
            rows = []
            for trace in obs.slow_queries.snapshot():
                row = trace_summary(trace)
                row["threshold_seconds"] = obs.slow_query_seconds
                rows.append(row)
            return rows

        def trace_rows():
            return [row for trace in obs.traces.snapshot() for row in trace.to_rows()]

        catalog.register_system_table("system.metrics", metrics_rows)
        catalog.register_system_table("system.slow_queries", slow_query_rows)
        catalog.register_system_table("system.traces", trace_rows)
        catalog.register_system_table("system.plan_cache", obs.plan_cache_rows)
        # system.served_views starts empty; a HazyEngine re-registers it with
        # a live producer the moment one is built on this database.
        catalog.register_system_table("system.served_views", list)
        # Likewise system.connections: a repro.net.SQLServer fronting this
        # database re-registers it with its live wire-connection roster.
        catalog.register_system_table("system.connections", list)

    # -- schema management ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from a schema object and register it in the catalog."""
        table = Table(schema, self.pool)
        self.catalog.register_table(table)
        return table

    def create_table_from_columns(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType | str]],
        primary_key: str | None = None,
    ) -> Table:
        """Convenience: create a table from ``(name, type)`` pairs."""
        schema_columns = [
            Column(
                column_name,
                data_type if isinstance(data_type, DataType) else DataType.from_name(data_type),
            )
            for column_name, data_type in columns
        ]
        return self.create_table(TableSchema(name, schema_columns, primary_key=primary_key))

    def drop_table(self, name: str) -> None:
        """Drop a table and release its pages."""
        table = self.catalog.table(name)
        table.truncate()
        self.catalog.drop_table(name)

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        return self.catalog.table(name)

    # -- SQL -------------------------------------------------------------------------------

    def execute(
        self,
        sql: str,
        parameters: tuple | list | None = None,
        context: object = None,
    ) -> ResultSet:
        """Parse and execute one SQL statement.

        ``context`` is an opaque per-connection object (see
        :func:`repro.connect`) giving served-view reads that connection's
        session semantics; plain ``Database.execute`` calls leave it None and
        read served views without session tracking.
        """
        return self.executor.execute(parse(sql), parameters, context)

    def executemany(
        self,
        sql: str,
        parameter_rows: Sequence[Sequence[object]],
        context: object = None,
    ) -> int:
        """Execute a prepared statement once per parameter row; returns total rowcount.

        The statement is parsed once and (for SELECTs) planned once; each
        execution only re-binds the ``?`` parameters.
        """
        return self.executor.execute_many(parse(sql), parameter_rows, context)

    # -- convenience ------------------------------------------------------------------------

    def insert_row(self, table_name: str, row: Mapping[str, object]) -> None:
        """Insert a row dict directly (bypasses SQL parsing, keeps triggers/costs)."""
        self.catalog.table(table_name).insert(row)

    def io_snapshot(self) -> IOStatistics:
        """Copy of the database-wide I/O statistics."""
        return self.stats.snapshot()

    def reset_statistics(self) -> None:
        """Zero the I/O ledger (used between benchmark phases)."""
        fresh = IOStatistics()
        self.stats.page_reads = fresh.page_reads
        self.stats.page_writes = fresh.page_writes
        self.stats.sequential_reads = fresh.sequential_reads
        self.stats.random_reads = fresh.random_reads
        self.stats.buffer_hits = fresh.buffer_hits
        self.stats.buffer_misses = fresh.buffer_misses
        self.stats.evictions = fresh.evictions
        self.stats.tuples_read = fresh.tuples_read
        self.stats.tuples_written = fresh.tuples_written
        self.stats.dot_products = fresh.dot_products
        self.stats.simulated_seconds = 0.0
        self.stats.detail.clear()
