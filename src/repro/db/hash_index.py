"""Hash index on a single column (the paper's primary-key lookup path).

Both the eager and lazy architectures "maintain a hash index to efficiently
locate the tuple corresponding to the single entity" — that index is this
class: an equality-only map from key value to record id.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.db.page import RecordId
from repro.exceptions import DuplicateKeyError, KeyNotFoundError

__all__ = ["HashIndex"]


class HashIndex:
    """Unique hash index: key value -> :class:`~repro.db.page.RecordId`."""

    def __init__(self, column: str):
        self.column = column
        self._entries: dict[object, RecordId] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def insert(self, key: object, rid: RecordId) -> None:
        """Register ``key`` -> ``rid``; duplicate keys are an error."""
        if key in self._entries:
            raise DuplicateKeyError(f"duplicate key {key!r} on column {self.column!r}")
        self._entries[key] = rid

    def lookup(self, key: object) -> RecordId:
        """Return the record id for ``key`` or raise :class:`KeyNotFoundError`."""
        rid = self._entries.get(key)
        if rid is None:
            raise KeyNotFoundError(f"no row with {self.column} = {key!r}")
        return rid

    def get(self, key: object) -> RecordId | None:
        """Return the record id for ``key`` or None."""
        return self._entries.get(key)

    def update(self, key: object, rid: RecordId) -> None:
        """Repoint an existing key at a new record id (used after heap rewrites)."""
        if key not in self._entries:
            raise KeyNotFoundError(f"no row with {self.column} = {key!r}")
        self._entries[key] = rid

    def delete(self, key: object) -> None:
        """Remove ``key`` from the index (no-op if absent)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def keys(self) -> Iterator[object]:
        """Iterate over the indexed key values."""
        return iter(self._entries)
