"""The unit of analysis output: one structured finding."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Findings sort by (path, line, rule) so reports and baselines are stable
    across runs regardless of pass execution order.
    """

    path: str  #: repo-relative POSIX path of the offending file
    line: int  #: 1-based line number
    rule: str  #: rule identifier, e.g. ``LAY001``
    message: str  #: human-readable explanation

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
