"""``repro-lint``: run the analysis passes and gate on new findings.

Exit status is 0 when every finding is suppressed or baselined, 1 when new
findings exist, 2 on usage errors.  The default invocation from the repo
root (``repro-lint``) scans ``src/repro`` against ``analysis-baseline.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, split_by_baseline
from repro.analysis.runner import DEFAULT_PASSES, analyze_paths

__all__ = ["main"]

_DEFAULT_SCAN = "src/repro"
_DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to scan (default: {_DEFAULT_SCAN})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: {_DEFAULT_BASELINE}; missing file = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings (notes preserved) and exit 0",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by `# repro: noqa(...)` directives",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    passes = DEFAULT_PASSES()

    if args.list_rules:
        for analysis_pass in passes:
            for rule, description in sorted(analysis_pass.rules.items()):
                print(f"{rule}  [{analysis_pass.name}] {description}")
        return 0

    repo_root = Path.cwd()
    scan_paths = args.paths or [Path(_DEFAULT_SCAN)]
    for path in scan_paths:
        if not path.exists():
            print(f"repro-lint: path does not exist: {path}", file=sys.stderr)
            return 2

    active, suppressed = analyze_paths(scan_paths, passes=passes, repo_root=repo_root)

    baseline_path = args.baseline or Path(_DEFAULT_BASELINE)
    baseline = Baseline.empty() if args.no_baseline else Baseline.load(baseline_path)

    if args.write_baseline:
        Baseline.from_findings(active, notes=baseline.notes).write(baseline_path)
        print(f"repro-lint: wrote {len(active)} finding(s) to {baseline_path}")
        return 0

    new, known = split_by_baseline(active, baseline)

    if args.show_suppressed:
        for finding in suppressed:
            print(f"{finding.render()}  [suppressed]")
    for finding in new:
        print(finding.render())

    summary = (
        f"repro-lint: {len(new)} new finding(s), {len(known)} baselined, "
        f"{len(suppressed)} suppressed"
    )
    print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
