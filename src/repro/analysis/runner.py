"""The pass runner: parse files once, run every pass, apply suppressions.

Directives
----------

Three line comments steer the analyzer, all under the ``repro:`` prefix so
they can't collide with ruff/flake8 syntax:

``# repro: noqa(RULE[, RULE...])``
    Suppress the named rules on this line.  ``noqa(ALL)`` suppresses every
    rule.  Unlike bare ``# noqa`` a rule list is mandatory — blanket
    suppressions hide future findings.

``# repro: module(dotted.name)``
    Override the module name derived from the file path.  Used by test
    fixtures so a snippet in ``tests/analysis/fixtures/`` can pose as
    ``repro.db.table`` for the layering pass.

``# repro: locked(lock_attr)``
    On a ``def`` line: every statement in this function runs with
    ``self.<lock_attr>`` already held by the caller (the documented
    "called-with-lock-held" convention).  Consumed by the lock pass.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol

from repro.analysis.findings import Finding

__all__ = ["ModuleContext", "AnalysisPass", "load_module", "analyze_paths", "DEFAULT_PASSES"]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\(\s*([A-Z0-9_,\s]+?)\s*\)")
_MODULE_RE = re.compile(r"#\s*repro:\s*module\(\s*([\w.]+)\s*\)")
_LOCKED_RE = re.compile(r"#\s*repro:\s*locked\(\s*(\w+)\s*\)")


@dataclass
class ModuleContext:
    """One parsed source file plus everything passes need to inspect it."""

    path: str  #: repo-relative POSIX path
    module: str  #: dotted module name (possibly overridden by a directive)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line number -> set of suppressed rule names ("ALL" suppresses all)
    noqa: dict[int, set[str]] = field(default_factory=dict)
    #: line number of a ``def`` -> lock attribute held by the caller
    locked_markers: dict[int, str] = field(default_factory=dict)


class AnalysisPass(Protocol):
    """A pass sees the whole project and yields findings."""

    name: str
    rules: dict[str, str]  #: rule id -> one-line description

    def run(self, modules: list[ModuleContext]) -> Iterable[Finding]: ...


def _derive_module_name(path: Path) -> str:
    """Best-effort dotted name from a file path (``src/repro/x/y.py``)."""
    parts = list(path.parts)
    if "repro" in parts:
        rel = parts[parts.index("repro") :]
    else:
        rel = [path.stem]
    if rel[-1].endswith(".py"):
        rel[-1] = rel[-1][: -len(".py")]
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel) or path.stem


def load_module(path: Path, repo_root: Path | None = None) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext`.

    Raises SyntaxError if the file does not parse; the CLI turns that into
    a finding rather than a crash.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    noqa: dict[int, set[str]] = {}
    locked: dict[int, str] = {}
    module = _derive_module_name(path)
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text or "repro:" not in text:
            continue
        noqa_match = _NOQA_RE.search(text)
        if noqa_match:
            rules = {rule.strip() for rule in noqa_match.group(1).split(",") if rule.strip()}
            noqa.setdefault(lineno, set()).update(rules)
        locked_match = _LOCKED_RE.search(text)
        if locked_match:
            locked[lineno] = locked_match.group(1)
        module_match = _MODULE_RE.search(text)
        if module_match:
            module = module_match.group(1)
    display = path
    if repo_root is not None:
        try:
            display = path.resolve().relative_to(repo_root.resolve())
        except ValueError:
            display = path
    return ModuleContext(
        path=display.as_posix(),
        module=module,
        source=source,
        tree=tree,
        lines=lines,
        noqa=noqa,
        locked_markers=locked,
    )


def _suppressed(finding: Finding, contexts: dict[str, ModuleContext]) -> bool:
    ctx = contexts.get(finding.path)
    if ctx is None:
        return False
    rules = ctx.noqa.get(finding.line)
    return bool(rules) and ("ALL" in rules or finding.rule in rules)


def _default_passes() -> list[AnalysisPass]:
    # Imported lazily so ``repro.analysis.runner`` can be imported by the
    # passes' own tests without a cycle.
    from repro.analysis.passes.costs import CostChargingPass
    from repro.analysis.passes.layering import LayeringPass
    from repro.analysis.passes.locks import LockDisciplinePass
    from repro.analysis.passes.statnames import StatsNamingPass
    from repro.analysis.passes.wire import WireErrorPass

    return [
        LayeringPass(),
        LockDisciplinePass(),
        CostChargingPass(),
        StatsNamingPass(),
        WireErrorPass(),
    ]


DEFAULT_PASSES = _default_passes


def analyze_paths(
    paths: Iterable[Path],
    passes: list[AnalysisPass] | None = None,
    repo_root: Path | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Run every pass over every ``.py`` file under ``paths``.

    Returns ``(active, suppressed)``: findings that stand, and findings
    silenced by a ``# repro: noqa(...)`` directive (reported separately so a
    ``--show-suppressed`` listing stays possible).  Baseline filtering is the
    caller's concern — see :mod:`repro.analysis.baseline`.
    """
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    contexts: dict[str, ModuleContext] = {}
    parse_failures: list[Finding] = []
    for file_path in files:
        try:
            ctx = load_module(file_path, repo_root=repo_root)
        except SyntaxError as error:
            parse_failures.append(
                Finding(
                    path=file_path.as_posix(),
                    line=error.lineno or 1,
                    rule="PARSE001",
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        contexts[ctx.path] = ctx
    modules = list(contexts.values())
    all_findings: list[Finding] = list(parse_failures)
    for analysis_pass in passes if passes is not None else _default_passes():
        all_findings.extend(analysis_pass.run(modules))
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(set(all_findings)):
        (suppressed if _suppressed(finding, contexts) else active).append(finding)
    return active, suppressed
