"""The committed debt ledger: known findings that do not fail CI.

A baseline entry matches on ``(path, rule, message)`` — deliberately *not*
on line number, so unrelated edits above a known finding don't churn the
file.  Each entry carries a count: two identical findings in one file need a
count of 2, and a *third* one is new debt that fails the build.  Entries may
carry a free-form ``note`` explaining why the debt is kept; the CLI preserves
notes across ``--write-baseline`` regenerations.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding

__all__ = ["Baseline", "split_by_baseline"]

_HEADER = [
    "Known findings tolerated by repro-lint.  Matching ignores line numbers;",
    "each entry's count bounds how many identical findings may exist.",
    "Regenerate with: repro-lint --write-baseline  (notes are preserved).",
]


def _key(path: str, rule: str, message: str) -> tuple[str, str, str]:
    return (path, rule, message)


@dataclass
class Baseline:
    """Parsed baseline file: (path, rule, message) -> allowed count."""

    counts: Counter[tuple[str, str, str]]
    notes: dict[tuple[str, str, str], str]

    @classmethod
    def empty(cls) -> Baseline:
        return cls(counts=Counter(), notes={})

    @classmethod
    def load(cls, path: Path) -> Baseline:
        if not path.exists():
            return cls.empty()
        raw = json.loads(path.read_text(encoding="utf-8"))
        counts: Counter[tuple[str, str, str]] = Counter()
        notes: dict[tuple[str, str, str], str] = {}
        for entry in raw.get("entries", []):
            key = _key(entry["path"], entry["rule"], entry["message"])
            counts[key] += int(entry.get("count", 1))
            if entry.get("note"):
                notes[key] = str(entry["note"])
        return cls(counts=counts, notes=notes)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], notes: dict[tuple[str, str, str], str] | None = None
    ) -> Baseline:
        counts: Counter[tuple[str, str, str]] = Counter(
            _key(f.path, f.rule, f.message) for f in findings
        )
        kept_notes = {
            key: note for key, note in (notes or {}).items() if key in counts
        }
        return cls(counts=counts, notes=kept_notes)

    def write(self, path: Path) -> None:
        entries = []
        for (entry_path, rule, message), count in sorted(self.counts.items()):
            entry: dict[str, object] = {"path": entry_path, "rule": rule, "message": message}
            if count != 1:
                entry["count"] = count
            note = self.notes.get((entry_path, rule, message))
            if note:
                entry["note"] = note
            entries.append(entry)
        payload = {"_comment": _HEADER, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(
    findings: Iterable[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined).

    When a file holds more identical findings than the baseline allows, the
    *later* occurrences (by line) are the new ones — the stable sort keeps
    the report deterministic.
    """
    budget = Counter(baseline.counts)
    new: list[Finding] = []
    known: list[Finding] = []
    for finding in sorted(findings):
        key = _key(finding.path, finding.rule, finding.message)
        if budget[key] > 0:
            budget[key] -= 1
            known.append(finding)
        else:
            new.append(finding)
    return new, known
