"""Project-invariant static analysis for the repro codebase.

The serving stack's load-bearing invariants — the downward-only import DAG,
lock discipline around shared mutable state, CostModel charging for every
storage touch, the stats-key grammar, and wire-error round-trippability —
are structural properties of the *source*, not of any one execution.  This
package checks them with a small AST pass runner (`repro-lint`) so whole bug
classes (deadlocks, torn counters, uncharged I/O, layering erosion) are
caught before a test ever runs.

The framework is intentionally tiny and dependency-free: findings are
(path, line, rule, message) tuples, suppression is a ``# repro: noqa(RULE)``
line comment, and pre-existing debt lives in a committed baseline file so a
new rule can land strict without blocking CI on history.
"""

from repro.analysis.findings import Finding
from repro.analysis.runner import analyze_paths, load_module

__all__ = ["Finding", "analyze_paths", "load_module"]
