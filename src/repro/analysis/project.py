"""The repo's invariants, declared as data.

Everything a pass needs to know about *this* codebase lives here — the
layered import DAG from ROADMAP's architecture section, which modules own
CostModel charging, the stats-key grammar — so the passes themselves stay
generic AST walkers and a layering change is a one-line data edit reviewed
like any other interface change.
"""

from __future__ import annotations

__all__ = [
    "FACADE",
    "LAYER_DEPENDENCIES",
    "layer_of",
    "COST_OWNER_MODULES",
    "STORAGE_MODULES",
    "BLOCKING_SOCKET_METHODS",
    "CANONICAL_SUFFIXES",
    "DEPRECATED_SUFFIXES",
    "EXCEPTIONS_MODULE",
    "WIRE_ROOT_CLASS",
    "WIRE_DIAGNOSTIC_FIELDS",
]

#: Pseudo-layer for the root ``repro`` facade (``repro/__init__.py``).  It
#: re-exports the public API and therefore sits *above* everything: no module
#: inside ``src/repro`` may import it (directly or as ``import repro``).
FACADE = "__facade__"

#: The allowed import DAG, bottom-up, mirroring ROADMAP's architecture
#: section.  ``layer -> set of layers it may import``.  A layer may always
#: import itself; absence from a value set means the edge is a violation,
#: whether the import is top-level or lazy/function-local.
LAYER_DEPENDENCIES: dict[str, frozenset[str]] = {
    # Foundations: no intra-project dependencies.
    "exceptions": frozenset(),
    "linalg": frozenset({"exceptions"}),
    "obs": frozenset({"exceptions"}),
    # Model/feature layers over the foundations.
    "learn": frozenset({"exceptions", "linalg"}),
    "features": frozenset({"exceptions", "linalg"}),
    "workloads": frozenset({"exceptions", "linalg", "learn"}),
    "persist": frozenset({"exceptions", "linalg", "learn"}),
    # The storage engine.
    "db": frozenset({"exceptions", "linalg", "obs"}),
    # The incremental-maintenance core composes storage, models and features.
    "core": frozenset({"exceptions", "linalg", "obs", "learn", "features", "db", "persist"}),
    # The serving layer drives the core.
    "serve": frozenset(
        {"exceptions", "linalg", "obs", "learn", "features", "db", "persist", "core"}
    ),
    # The embedded client API (repro/connection.py).
    "connection": frozenset(
        {"exceptions", "linalg", "obs", "learn", "features", "db", "persist", "core", "serve"}
    ),
    # The network front door wraps the embedded API.
    "net": frozenset(
        {
            "exceptions",
            "linalg",
            "obs",
            "learn",
            "features",
            "db",
            "persist",
            "core",
            "serve",
            "connection",
        }
    ),
    # Benchmarks drive everything below the wire.
    "bench": frozenset(
        {
            "exceptions",
            "linalg",
            "obs",
            "learn",
            "features",
            "workloads",
            "db",
            "persist",
            "core",
            "serve",
            "connection",
        }
    ),
    # The analyzer is a dev tool over the stdlib only.
    "analysis": frozenset(),
    # The facade re-exports the world.
    FACADE: frozenset(
        {
            "exceptions",
            "linalg",
            "obs",
            "learn",
            "features",
            "workloads",
            "db",
            "persist",
            "core",
            "serve",
            "connection",
            "net",
            "bench",
        }
    ),
}


def layer_of(module: str) -> str | None:
    """Map a dotted module name to its layer, or None if out of scope."""
    if module == "repro":
        return FACADE
    if not module.startswith("repro."):
        return None
    head = module.split(".")[1]
    return head if head in LAYER_DEPENDENCIES else None


#: Modules allowed to call heap/btree/buffer-pool read-write surfaces
#: directly: the storage structures themselves plus the access paths that
#: charge the CostModel (table/index/database) and the stores that own their
#: pools.  Everything else must go through these so I/O is never free.
COST_OWNER_MODULES: frozenset[str] = frozenset(
    {
        "repro.db.heap",
        "repro.db.btree",
        "repro.db.buffer_pool",
        "repro.db.page",
        "repro.db.table",
        "repro.db.secondary_index",
        "repro.db.hash_index",
        "repro.db.database",
        "repro.db.costmodel",
        # The physical-operator layer is an access path in its own right:
        # SeqScan/IndexRange read through table.heap, and charging happens
        # inside HeapFile/BufferPool on every touch.
        "repro.db.sql.plan",
        "repro.core.stores.ondisk",
        "repro.core.stores.hybrid",
    }
)

#: The storage-structure modules whose import outside the owner set is a
#: violation in itself (you cannot hold a HeapFile/BPlusTree without being
#: able to bypass charging).  ``buffer_pool`` is importable anywhere because
#: constructing a pool / reading ``IOStatistics`` is charge-neutral; only its
#: page surfaces (COST002) are restricted.
STORAGE_MODULES: frozenset[str] = frozenset({"repro.db.heap", "repro.db.btree"})

#: socket methods that block the calling thread.
BLOCKING_SOCKET_METHODS: frozenset[str] = frozenset(
    {"recv", "recv_into", "send", "sendall", "sendto", "accept", "connect", "makefile"}
)

#: Canonical unit suffixes for stats keys and instrument names.
CANONICAL_SUFFIXES: tuple[str, ...] = ("_total", "_seconds", "_bytes")

#: Unit suffixes that have a canonical spelling and are therefore banned.
DEPRECATED_SUFFIXES: dict[str, str] = {
    "_count": "_total",
    "_cnt": "_total",
    "_num": "_total",
    "_secs": "_seconds",
    "_sec": "_seconds",
    "_ms": "_seconds",
    "_millis": "_seconds",
    "_micros": "_seconds",
    "_time": "_seconds",
    "_kb": "_bytes",
    "_mb": "_bytes",
    "_size": "_bytes",
}

#: Where the wire-visible exception hierarchy lives.
EXCEPTIONS_MODULE = "repro.exceptions"

#: Root of the hierarchy that must round-trip through net.protocol.
WIRE_ROOT_CLASS = "HazyError"

#: Keyword diagnostics the error codec can carry (net.protocol's
#: _DIAGNOSTIC_FIELDS); an ``__init__`` may require nothing beyond the
#: message and may only *optionally* accept these.
WIRE_DIAGNOSTIC_FIELDS: frozenset[str] = frozenset({"position", "token"})
