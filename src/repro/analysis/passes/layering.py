"""LAY001/LAY002: enforce the downward-only import DAG.

The allowed edges live in :data:`repro.analysis.project.LAYER_DEPENDENCIES`.
Every ``import``/``from ... import`` anywhere in a module counts — including
lazy, function-local imports, which is exactly where upward edges hide
(``core.engine`` importing ``serve`` inside a method body would pass any
top-level-only checker).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import FACADE, LAYER_DEPENDENCIES, layer_of
from repro.analysis.runner import ModuleContext

__all__ = ["LayeringPass"]


def _package_of(ctx: ModuleContext) -> str:
    """The package a relative import resolves against."""
    if ctx.path.endswith("__init__.py"):
        return ctx.module
    head, _, _ = ctx.module.rpartition(".")
    return head


def _import_targets(ctx: ModuleContext, node: ast.Import | ast.ImportFrom) -> Iterator[str]:
    """Dotted module names this import statement binds, project-scope only.

    ``from repro import X`` resolves to ``repro.X`` when ``X`` is a known
    layer (the submodule is what's being imported); any other name pulls an
    attribute off the executed facade and resolves to ``repro`` itself.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                yield alias.name
        return
    if node.level:
        base_parts = _package_of(ctx).split(".") if _package_of(ctx) else []
        if node.level - 1:
            base_parts = base_parts[: -(node.level - 1)] if node.level - 1 <= len(base_parts) else []
        base = ".".join(base_parts)
        if node.module:
            yield f"{base}.{node.module}" if base else node.module
        else:
            for alias in node.names:
                yield f"{base}.{alias.name}" if base else alias.name
        return
    if node.module == "repro":
        for alias in node.names:
            if alias.name in LAYER_DEPENDENCIES and alias.name != FACADE:
                yield f"repro.{alias.name}"
            else:
                yield "repro"
    elif node.module and node.module.startswith("repro."):
        yield node.module


class LayeringPass:
    name = "layering"
    rules = {
        "LAY001": "import crosses the layer DAG upward or laterally",
        "LAY002": "module imports the root repro facade",
    }

    def run(self, modules: list[ModuleContext]) -> Iterable[Finding]:
        for ctx in modules:
            source_layer = layer_of(ctx.module)
            if source_layer is None:
                continue
            allowed = LAYER_DEPENDENCIES[source_layer] | {source_layer}
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.Import, ast.ImportFrom)):
                    continue
                for target in _import_targets(ctx, node):
                    target_layer = layer_of(target)
                    if target_layer is None or target_layer in allowed:
                        continue
                    if target_layer == FACADE:
                        yield Finding(
                            path=ctx.path,
                            line=node.lineno,
                            rule="LAY002",
                            message=(
                                f"{ctx.module} imports the root repro facade; "
                                "import the concrete submodule instead"
                            ),
                        )
                    else:
                        yield Finding(
                            path=ctx.path,
                            line=node.lineno,
                            rule="LAY001",
                            message=(
                                f"{ctx.module} (layer '{source_layer}') imports {target} "
                                f"(layer '{target_layer}'), which is not below it in the DAG"
                            ),
                        )
