"""The project-specific analysis passes.

Each pass is a small AST walker parameterized by the data in
:mod:`repro.analysis.project`:

========  =====================================================
LAY001    import crosses the layer DAG upward or laterally
LAY002    module imports the root ``repro`` facade
LOCK001   ``_GUARDED_BY`` attribute mutated without its lock
LOCK002   blocking call while syntactically under a held lock
COST001   heap/btree imported outside the CostModel owner set
COST002   storage read/write surface called outside the owners
STAT001   stats key / instrument name violates the grammar
STAT002   stats key uses a deprecated unit suffix
WIRE001   HazyError subclass cannot round-trip the error codec
WIRE002   protocol diagnostic fields drifted from the contract
========  =====================================================
"""

from repro.analysis.passes.costs import CostChargingPass
from repro.analysis.passes.layering import LayeringPass
from repro.analysis.passes.locks import LockDisciplinePass
from repro.analysis.passes.statnames import StatsNamingPass
from repro.analysis.passes.wire import WireErrorPass

__all__ = [
    "LayeringPass",
    "LockDisciplinePass",
    "CostChargingPass",
    "StatsNamingPass",
    "WireErrorPass",
]
