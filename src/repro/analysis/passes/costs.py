"""COST001/COST002: every storage touch must flow through CostModel owners.

The I/O cost model is only honest if page reads and writes cannot happen
behind its back.  The modules in
:data:`repro.analysis.project.COST_OWNER_MODULES` (the storage structures
plus the access paths that charge ``IOStatistics``) are the only places
allowed to (a) import the raw ``heap``/``btree`` structures and (b) call the
page-level read/write surfaces.  Constructing a ``BufferPool`` or reading
``IOStatistics`` is charge-neutral and allowed anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import COST_OWNER_MODULES, STORAGE_MODULES
from repro.analysis.runner import ModuleContext

__all__ = ["CostChargingPass"]

#: receiver-name hint -> methods that read or write pages through it.
_SURFACES: tuple[tuple[tuple[str, ...], frozenset[str]], ...] = (
    (
        ("pool", "buffer"),
        frozenset({"fetch", "allocate_page", "mark_dirty", "drop_page", "flush_all"}),
    ),
    (
        ("heap",),
        frozenset(
            {"insert", "update", "delete", "read", "scan", "bulk_rebuild", "truncate"}
        ),
    ),
    (
        ("btree", "tree"),
        frozenset(
            {"insert", "delete", "search", "bulk_load", "range_scan", "range_scan_reversed"}
        ),
    ),
)


def _terminal_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class CostChargingPass:
    name = "costs"
    rules = {
        "COST001": "heap/btree imported outside the CostModel owner modules",
        "COST002": "storage read/write surface called outside the owner modules",
    }

    def run(self, modules: list[ModuleContext]) -> Iterable[Finding]:
        for ctx in modules:
            if ctx.module in COST_OWNER_MODULES:
                continue
            if not ctx.module.startswith("repro"):
                continue
            yield from self._check_imports(ctx)
            yield from self._check_calls(ctx)

    def _check_imports(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: list[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                targets = [node.module]
                if node.module == "repro.db":
                    targets += [f"repro.db.{alias.name}" for alias in node.names]
            for target in targets:
                if target in STORAGE_MODULES:
                    yield Finding(
                        path=ctx.path,
                        line=node.lineno,
                        rule="COST001",
                        message=(
                            f"{ctx.module} imports {target}; raw storage structures are "
                            "reserved for the CostModel owner modules"
                        ),
                    )

    def _check_calls(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            receiver = _terminal_name(node.func.value)
            if receiver is None:
                continue
            lowered = receiver.lower()
            for hints, methods in _SURFACES:
                if node.func.attr in methods and any(hint in lowered for hint in hints):
                    yield Finding(
                        path=ctx.path,
                        line=node.lineno,
                        rule="COST002",
                        message=(
                            f"{receiver}.{node.func.attr}() touches storage outside the "
                            "CostModel owner modules; route it through db.table / the stores"
                        ),
                    )
                    break
