"""LOCK001/LOCK002: lock discipline over shared mutable state.

The convention this pass enforces is declared in the code under test::

    class SQLServer:
        _GUARDED_BY = {"statements_total": "_lock", "_handlers": "_lock"}

LOCK001 fires when a guarded attribute is rebound, augmented, subscript-
assigned, deleted, or mutated through a known mutator method (``append``,
``update``, ``clear``...) outside a ``with self.<lock>`` block.  ``__init__``
and ``__new__`` are exempt (no concurrency before construction completes),
and a method the caller locks for can carry ``# repro: locked(<lock>)`` on
its ``def`` line.

LOCK002 fires when a known-blocking call — socket I/O, a blocking
``Queue.get``/``put``, ``Future.result``, thread joins, ``time.sleep``,
featurization — happens while *any* lock is syntactically held.  Holding a
lock across a block is how PRs 6-8's tail-latency bugs happened; the rule
makes the pattern opt-in via noqa instead of silent.

The analysis is syntactic and intra-procedural on purpose: it tracks ``with``
nesting inside one method body and does not chase calls.  That misses locks
held across helper calls (the ``locked`` marker covers the common case) but
never misfires on code it cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import BLOCKING_SOCKET_METHODS
from repro.analysis.runner import ModuleContext

__all__ = ["LockDisciplinePass"]

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
    }
)

#: Calls on a lock object itself are not "blocking work under the lock":
#: Condition.wait releases the lock while sleeping, notify is O(1).
_LOCK_METHODS = frozenset(
    {"wait", "wait_for", "notify", "notify_all", "acquire", "release", "locked"}
)

#: Substrings that make an attribute name read as a lock.
_LOCKLIKE = ("lock", "condition", "mutex")


def _is_locklike(name: str) -> bool:
    lowered = name.lower()
    return any(token in lowered for token in _LOCKLIKE)


def _terminal_name(expr: ast.expr) -> str | None:
    """The last identifier in a receiver chain (``self.a.b`` -> ``b``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Call):
        return _terminal_name(expr.func)
    return None


def _locks_in_expr(expr: ast.expr, known_locks: frozenset[str]) -> set[str]:
    """Lock attribute names appearing anywhere in a with-item expression."""
    held: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and (
            node.attr in known_locks or _is_locklike(node.attr)
        ):
            held.add(node.attr)
        elif isinstance(node, ast.Name) and (
            node.id in known_locks or _is_locklike(node.id)
        ):
            held.add(node.id)
    return held


def _self_attr(expr: ast.expr) -> str | None:
    """``self.X`` -> ``X``; also unwraps one subscript (``self.X[k]``)."""
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _walk_skipping_scopes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression/simple statement without entering deferred scopes."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _guarded_map(class_node: ast.ClassDef) -> dict[str, str]:
    """Parse a class-level ``_GUARDED_BY = {"attr": "lock"}`` literal."""
    for stmt in class_node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(isinstance(t, ast.Name) and t.id == "_GUARDED_BY" for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            return {}
        guarded: dict[str, str] = {}
        for key, lock in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(lock, ast.Constant)
                and isinstance(lock.value, str)
            ):
                guarded[key.value] = lock.value
        return guarded
    return {}


def _blocking_reason(call: ast.Call, held: frozenset[str]) -> str | None:
    """Why this call is considered blocking, or None if it is not."""
    func = call.func
    if isinstance(func, ast.Name):
        if "featurize" in func.id or func.id == "compute_feature":
            return f"featurization call {func.id}()"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    receiver = _terminal_name(func.value)
    if receiver is not None and (receiver in held or _is_locklike(receiver)):
        # Operations on a lock object (wait/notify/...) are lock protocol,
        # not work performed under the lock.
        if method in _LOCK_METHODS:
            return None
    if method == "result":
        return "Future.result()"
    if method in BLOCKING_SOCKET_METHODS and receiver is not None:
        return f"socket {receiver}.{method}()"
    if method in {"get", "put"} and receiver is not None and "queue" in receiver.lower():
        return f"blocking {receiver}.{method}()"
    if method == "join" and receiver is not None and (
        "thread" in receiver.lower() or "worker" in receiver.lower()
    ):
        return f"{receiver}.join()"
    if method == "sleep" and isinstance(func.value, ast.Name) and func.value.id == "time":
        return "time.sleep()"
    if "featurize" in method or method == "compute_feature":
        return f"featurization call .{method}()"
    return None


class LockDisciplinePass:
    name = "locks"
    rules = {
        "LOCK001": "_GUARDED_BY attribute mutated without holding its lock",
        "LOCK002": "blocking call while syntactically under a held lock",
    }

    def run(self, modules: list[ModuleContext]) -> Iterable[Finding]:
        for ctx in modules:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext, class_node: ast.ClassDef) -> Iterator[Finding]:
        guarded = _guarded_map(class_node)
        known_locks = frozenset(guarded.values())
        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in {"__init__", "__new__"}:
                continue
            held: set[str] = set()
            marker = ctx.locked_markers.get(item.lineno)
            if marker:
                held.add(marker)
            yield from self._check_block(ctx, item.body, frozenset(held), guarded, known_locks)

    def _check_block(
        self,
        ctx: ModuleContext,
        statements: list[ast.stmt],
        held: frozenset[str],
        guarded: dict[str, str],
        known_locks: frozenset[str],
    ) -> Iterator[Finding]:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # deferred scope: lock state does not carry in
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: set[str] = set()
                for with_item in stmt.items:
                    yield from self._check_expr(ctx, with_item.context_expr, held, guarded)
                    acquired |= _locks_in_expr(with_item.context_expr, known_locks)
                yield from self._check_block(
                    ctx, stmt.body, held | frozenset(acquired), guarded, known_locks
                )
                continue
            for header in self._header_exprs(stmt):
                yield from self._check_expr(ctx, header, held, guarded)
            for block in self._child_blocks(stmt):
                yield from self._check_block(ctx, block, held, guarded, known_locks)

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
        """Expressions evaluated by a statement itself (not its sub-blocks)."""
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter, stmt.target]
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return []
        return [stmt]  # simple statement: check the whole thing

    @staticmethod
    def _child_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    def _check_expr(
        self,
        ctx: ModuleContext,
        root: ast.AST,
        held: frozenset[str],
        guarded: dict[str, str],
    ) -> Iterator[Finding]:
        for node in _walk_skipping_scopes(root):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    for element in self._flatten_target(target):
                        attr = _self_attr(element)
                        if attr in guarded and guarded[attr] not in held:
                            yield Finding(
                                path=ctx.path,
                                line=node.lineno,
                                rule="LOCK001",
                                message=(
                                    f"self.{attr} mutated without holding "
                                    f"self.{guarded[attr]} (declared in _GUARDED_BY)"
                                ),
                            )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
                    attr = _self_attr(node.func.value)
                    if attr in guarded and guarded[attr] not in held:
                        yield Finding(
                            path=ctx.path,
                            line=node.lineno,
                            rule="LOCK001",
                            message=(
                                f"self.{attr}.{node.func.attr}() mutates without holding "
                                f"self.{guarded[attr]} (declared in _GUARDED_BY)"
                            ),
                        )
                if held:
                    reason = _blocking_reason(node, held)
                    if reason is not None:
                        yield Finding(
                            path=ctx.path,
                            line=node.lineno,
                            rule="LOCK002",
                            message=(
                                f"{reason} while holding "
                                f"{', '.join(sorted(held))}"
                            ),
                        )

    @staticmethod
    def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from LockDisciplinePass._flatten_target(element)
        elif isinstance(target, ast.Starred):
            yield from LockDisciplinePass._flatten_target(target.value)
        else:
            yield target
