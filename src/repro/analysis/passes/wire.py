"""WIRE001/WIRE002: every HazyError must round-trip the network codec.

``net.protocol.decode_error`` rebuilds a server-side exception client-side
as ``cls(message, **diagnostics)`` with a ``cls(message)`` fallback.  A
``HazyError`` subclass whose ``__init__`` *requires* anything beyond the
message therefore cannot cross the wire as itself — ``except ThatError``
would behave differently over a socket than in-process.  WIRE001 flags such
classes at their ``__init__``.

WIRE002 guards the contract from the other side: if ``net.protocol``'s
``_DIAGNOSTIC_FIELDS`` drifts from the declared
:data:`repro.analysis.project.WIRE_DIAGNOSTIC_FIELDS`, the analyzer's model
of the codec is stale and must be updated in the same PR.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import (
    EXCEPTIONS_MODULE,
    WIRE_DIAGNOSTIC_FIELDS,
    WIRE_ROOT_CLASS,
)
from repro.analysis.runner import ModuleContext

__all__ = ["WireErrorPass"]


def _wire_subclasses(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Module-level classes descending (transitively) from the root class."""
    classes = {
        node.name: node for node in tree.body if isinstance(node, ast.ClassDef)
    }
    bases = {
        name: {b.id for b in node.bases if isinstance(b, ast.Name)}
        for name, node in classes.items()
    }
    wire: set[str] = {WIRE_ROOT_CLASS}
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in wire and parents & wire:
                wire.add(name)
                changed = True
    for name in wire - {WIRE_ROOT_CLASS}:
        if name in classes:
            yield classes[name]


def _init_of(node: ast.ClassDef) -> ast.FunctionDef | None:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            return item
    return None


def _rebuild_problem(init: ast.FunctionDef) -> str | None:
    """Why ``cls(message)`` would fail for this ``__init__``, or None."""
    args = init.args
    positional = list(args.posonlyargs) + list(args.args)
    if positional and positional[0].arg in {"self", "cls"}:
        positional = positional[1:]
    required = len(positional) - len(args.defaults)
    if required > 1:
        names = ", ".join(arg.arg for arg in positional[1:required])
        return f"requires extra positional argument(s) {names} beyond the message"
    if required < 1 and not positional and args.vararg is None:
        return "accepts no message argument"
    for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is None:
            return f"requires keyword-only argument '{kwarg.arg}'"
    return None


class WireErrorPass:
    name = "wire"
    rules = {
        "WIRE001": "HazyError subclass cannot be rebuilt by net.protocol.decode_error",
        "WIRE002": "net.protocol diagnostic fields drifted from the declared contract",
    }

    def run(self, modules: list[ModuleContext]) -> Iterable[Finding]:
        for ctx in modules:
            if ctx.module == EXCEPTIONS_MODULE:
                yield from self._check_exceptions(ctx)
            elif ctx.module == "repro.net.protocol":
                yield from self._check_protocol(ctx)

    def _check_exceptions(self, ctx: ModuleContext) -> Iterator[Finding]:
        for class_node in _wire_subclasses(ctx.tree):
            init = _init_of(class_node)
            if init is None:
                continue  # inherits a message-only __init__
            problem = _rebuild_problem(init)
            if problem is not None:
                yield Finding(
                    path=ctx.path,
                    line=init.lineno,
                    rule="WIRE001",
                    message=(
                        f"{class_node.name}.__init__ {problem}; decode_error cannot "
                        "reconstruct it client-side"
                    ),
                )

    def _check_protocol(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == "_DIAGNOSTIC_FIELDS"):
                continue
            if not isinstance(node.value, (ast.Tuple, ast.List)):
                return
            declared = {
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            }
            if declared != set(WIRE_DIAGNOSTIC_FIELDS):
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    rule="WIRE002",
                    message=(
                        f"_DIAGNOSTIC_FIELDS {sorted(declared)} != declared contract "
                        f"{sorted(WIRE_DIAGNOSTIC_FIELDS)}; update analysis/project.py "
                        "and the exceptions audit together"
                    ),
                )
            return
