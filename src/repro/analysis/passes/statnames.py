"""STAT001/STAT002: the stats-key and instrument-name grammar.

``tests/serve/test_stats_keys.py`` pins the serving layer's stats contract;
this pass makes it a whole-repo guarantee.  Checked sites:

* string keys of dict literals (and string subscript-assignments) inside any
  function named ``stats``/``metrics`` or ending in ``_stats``/``_metrics``;
* the literal first argument of ``counter``/``gauge``/``gauge_fn``/
  ``histogram``/``provider`` calls on a registry-like receiver.

Grammar: dot-separated segments, each ``[a-z][a-z0-9_]*``, no double or
trailing underscores (STAT001).  Unit-bearing names must use the canonical
suffixes ``_total``/``_seconds``/``_bytes``; the deprecated spellings in
:data:`repro.analysis.project.DEPRECATED_SUFFIXES` fire STAT002 with the
canonical replacement.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import DEPRECATED_SUFFIXES
from repro.analysis.runner import ModuleContext

__all__ = ["StatsNamingPass"]

_SEGMENT_RE = re.compile(r"[a-z][a-z0-9_]*\Z")
_REGISTRY_METHODS = frozenset({"counter", "gauge", "gauge_fn", "histogram", "provider"})
_REGISTRY_HINTS = ("registry", "metrics")


def _is_stats_function(name: str) -> bool:
    return name in {"stats", "metrics"} or name.endswith(("_stats", "_metrics"))


def _grammar_error(key: str) -> str | None:
    """Why ``key`` violates the naming grammar, or None."""
    if not key:
        return "empty key"
    for segment in key.split("."):
        if "__" in segment or segment.endswith("_") or not _SEGMENT_RE.match(segment):
            return f"segment '{segment}' is not snake_case ([a-z][a-z0-9_]*)"
    return None


def _deprecated_suffix(key: str) -> tuple[str, str] | None:
    final = key.rsplit(".", 1)[-1]
    for suffix, canonical in DEPRECATED_SUFFIXES.items():
        if final.endswith(suffix):
            return suffix, canonical
    return None


def _terminal_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class StatsNamingPass:
    name = "statnames"
    rules = {
        "STAT001": "stats key / instrument name violates the snake_case grammar",
        "STAT002": "stats key uses a deprecated unit suffix",
    }

    def run(self, modules: list[ModuleContext]) -> Iterable[Finding]:
        for ctx in modules:
            if not ctx.module.startswith("repro"):
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_stats_function(node.name):
                        yield from self._check_stats_function(ctx, node)
                elif isinstance(node, ast.Call):
                    yield from self._check_instrument_call(ctx, node)

    def _check_stats_function(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        yield from self._check_key(ctx, key.lineno, key.value)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        yield from self._check_key(ctx, target.lineno, target.slice.value)

    def _check_instrument_call(self, ctx: ModuleContext, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in _REGISTRY_METHODS):
            return
        receiver = _terminal_name(func.value)
        if receiver is None or not any(hint in receiver.lower() for hint in _REGISTRY_HINTS):
            return
        if not call.args:
            return
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield from self._check_key(ctx, first.lineno, first.value)

    def _check_key(self, ctx: ModuleContext, line: int, key: str) -> Iterator[Finding]:
        grammar = _grammar_error(key)
        if grammar is not None:
            yield Finding(
                path=ctx.path,
                line=line,
                rule="STAT001",
                message=f"stats key '{key}': {grammar}",
            )
            return
        deprecated = _deprecated_suffix(key)
        if deprecated is not None:
            suffix, canonical = deprecated
            yield Finding(
                path=ctx.path,
                line=line,
                rule="STAT002",
                message=f"stats key '{key}' uses deprecated suffix '{suffix}'; use '{canonical}'",
            )
