"""The main-memory architecture, Hazy-MM (paper §3.5.1).

The classification view is a pure function of the entities and training
examples, so it never needs to be written back to disk — Hazy keeps the whole
structure in RAM.  The data is still *clustered* on ``eps`` (a sorted array)
because sequential access to the water band is what makes the incremental step
cheap even in memory; the Skiing strategy still decides when to re-sort.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.core.stores.base import EntityRecord, EntityStore
from repro.db.buffer_pool import IOStatistics
from repro.db.costmodel import CostModel
from repro.exceptions import DuplicateKeyError, KeyNotFoundError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector

__all__ = ["InMemoryEntityStore"]


class InMemoryEntityStore(EntityStore):
    """All entities in RAM, kept sorted by the stored-model ``eps``.

    The clustering arrays are treated as **copy-on-write**: structural changes
    (insert, delete, reorganize) publish fresh list objects instead of mutating
    the ones in place, and every scan captures the arrays once at iteration
    start.  Concurrent readers therefore always walk a coherent snapshot of the
    clustering, which is what lets the serving subsystem drive this store from
    many threads without locks (``supports_concurrent_reads``).
    """

    supports_concurrent_reads = True

    def __init__(
        self,
        cost_model: CostModel | None = None,
        stats: IOStatistics | None = None,
        feature_norm_q: float = 1.0,
    ):
        cost_model = cost_model if cost_model is not None else CostModel.main_memory()
        stats = stats if stats is not None else IOStatistics()
        super().__init__(cost_model, stats, feature_norm_q)
        self._records: dict[object, EntityRecord] = {}
        # Sorted list of (eps, entity_id) pairs defining the clustering order,
        # with a parallel eps-only list for O(log n) binary searches.
        self._order: list[tuple[float, object]] = []
        self._order_eps: list[float] = []
        self._label_counts: dict[int, int] = {1: 0, -1: 0}

    # -- lifecycle -----------------------------------------------------------------------

    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> float:
        """Load every entity, computing eps and label under ``model``."""
        start = self.cost_snapshot()
        self._records.clear()
        self._order.clear()
        self._label_counts = {1: 0, -1: 0}
        for entity_id, features in entities:
            self._observe_features(features)
            self.charge_dot_product(features)
            eps = model.margin(features)
            label = 1 if eps >= 0 else -1
            record = EntityRecord(entity_id, features, eps, label)
            if entity_id in self._records:
                raise DuplicateKeyError(f"duplicate entity id {entity_id!r}")
            self._records[entity_id] = record
            self._label_counts[label] += 1
            self.stats.tuples_written += 1
            self.stats.charge(self.cost_model.tuple_cpu, "tuple_write")
        self._rebuild_order()
        return self.cost_snapshot() - start

    def insert(self, entity_id: object, features: SparseVector, eps: float, label: int) -> None:
        """Insert one entity at its sorted position (publishing fresh arrays)."""
        if entity_id in self._records:
            raise DuplicateKeyError(f"duplicate entity id {entity_id!r}")
        self._observe_features(features)
        record = EntityRecord(entity_id, features, eps, label)
        self._records[entity_id] = record
        index = bisect.bisect_left(self._order_eps, eps)
        # Copy-on-write: in-flight scans keep iterating the old arrays.
        self._order = self._order[:index] + [(eps, entity_id)] + self._order[index:]
        self._order_eps = self._order_eps[:index] + [eps] + self._order_eps[index:]
        self._label_counts[label] = self._label_counts.get(label, 0) + 1
        self.stats.tuples_written += 1
        self.stats.charge(self.cost_model.tuple_cpu, "tuple_write")

    def delete(self, entity_id: object) -> None:
        """Remove one entity (publishing fresh clustering arrays)."""
        record = self._records.get(entity_id)
        if record is None:
            raise KeyNotFoundError(f"no entity with id {entity_id!r}")
        records = dict(self._records)
        del records[entity_id]
        self._records = records
        self._order = [pair for pair in self._order if pair[1] != entity_id]
        self._order_eps = [eps for eps, _ in self._order]
        self._label_counts[record.label] -= 1
        self.stats.tuples_written += 1
        self.stats.charge(self.cost_model.tuple_cpu, "tuple_write")

    def reorganize(self, model: LinearModel) -> float:
        """Recompute every eps under ``model`` and re-sort (an in-memory sort)."""
        start = self.cost_snapshot()
        self._label_counts = {1: 0, -1: 0}
        for record in self._records.values():
            self.charge_dot_product(record.features)
            record.eps = model.margin(record.features)
            record.label = 1 if record.eps >= 0 else -1
            self._label_counts[record.label] += 1
            self.stats.tuples_written += 1
            self.stats.charge(self.cost_model.tuple_cpu, "tuple_write")
        self._rebuild_order()
        self.stats.charge(self.cost_model.sort_cost(len(self._records)), "sort")
        return self.cost_snapshot() - start

    def _import_records(self, records) -> None:
        """Warm-restart load: trust the snapshot's eps/labels, pay only the writes."""
        self._records.clear()
        self._order.clear()
        self._label_counts = {1: 0, -1: 0}
        for entity_id, features, eps, label in records:
            if entity_id in self._records:
                raise DuplicateKeyError(f"duplicate entity id {entity_id!r}")
            self._observe_features(features)
            self._records[entity_id] = EntityRecord(entity_id, features, eps, label)
            self._label_counts[label] = self._label_counts.get(label, 0) + 1
            self.stats.tuples_written += 1
            self.stats.charge(self.cost_model.tuple_cpu, "tuple_write")
        # Snapshots are written in clustering order, so this sort is a linear
        # verification pass in practice; no sort cost is charged.
        self._rebuild_order()

    def _rebuild_order(self) -> None:
        self._order = sorted(
            ((record.eps, entity_id) for entity_id, record in self._records.items()),
            key=lambda pair: pair[0],
        )
        self._order_eps = [pair[0] for pair in self._order]

    # -- reads -------------------------------------------------------------------------------

    def get(self, entity_id: object) -> EntityRecord:
        """O(1) dictionary lookup."""
        record = self._records.get(entity_id)
        if record is None:
            raise KeyNotFoundError(f"no entity with id {entity_id!r}")
        self.stats.tuples_read += 1
        self.stats.charge(self.cost_model.tuple_cpu, "tuple_read")
        return record

    def scan_all(self) -> Iterator[EntityRecord]:
        """Every record in eps order (over a snapshot of the clustering)."""
        order, records = self._order, self._records
        return self._scan_slice(order, records, 0, len(order))

    def _scan_slice(
        self,
        order: list[tuple[float, object]],
        records: dict[object, EntityRecord],
        start_index: int,
        stop_index: int,
    ) -> Iterator[EntityRecord]:
        for position in range(start_index, stop_index):
            _, entity_id = order[position]
            self.stats.tuples_read += 1
            self.stats.charge(self.cost_model.tuple_cpu, "tuple_read")
            yield records[entity_id]

    def scan_eps_range(self, low: float, high: float) -> Iterator[EntityRecord]:
        """Binary search both ends of the band, then walk the slice."""
        order, order_eps, records = self._order, self._order_eps, self._records
        start = bisect.bisect_left(order_eps, low)
        stop = bisect.bisect_right(order_eps, high)
        return self._scan_slice(order, records, start, stop)

    def scan_eps_at_least(self, low: float) -> Iterator[EntityRecord]:
        order, order_eps, records = self._order, self._order_eps, self._records
        start = bisect.bisect_left(order_eps, low)
        return self._scan_slice(order, records, start, len(order))

    def scan_eps_at_most(self, high: float) -> Iterator[EntityRecord]:
        order, order_eps, records = self._order, self._order_eps, self._records
        stop = bisect.bisect_right(order_eps, high)
        return self._scan_slice(order, records, 0, stop)

    # -- writes ---------------------------------------------------------------------------------

    def update_label(self, entity_id: object, label: int) -> None:
        """In-place label update (RAM write, CPU cost only)."""
        record = self._records.get(entity_id)
        if record is None:
            raise KeyNotFoundError(f"no entity with id {entity_id!r}")
        if record.label != label:
            self._label_counts[record.label] -= 1
            self._label_counts[label] = self._label_counts.get(label, 0) + 1
            record.label = label
        self.stats.tuples_written += 1
        self.stats.charge(self.cost_model.tuple_cpu, "tuple_write")

    # -- statistics --------------------------------------------------------------------------------

    def count(self) -> int:
        return len(self._records)

    def count_label(self, label: int) -> int:
        return self._label_counts.get(label, 0)

    def memory_usage(self) -> dict[str, int]:
        """Feature vectors dominate; the clustering array adds 16 bytes per entity."""
        features_bytes = sum(record.features.approx_size_bytes() for record in self._records.values())
        order_bytes = 16 * len(self._order)
        record_overhead = 64 * len(self._records)
        total = features_bytes + order_bytes + record_overhead
        return {
            "features": features_bytes,
            "clustering": order_bytes,
            "records": record_overhead,
            "total": total,
        }
