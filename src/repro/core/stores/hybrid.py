"""The hybrid architecture: ε-map + bounded buffer over the on-disk store (§3.5.2).

The hybrid keeps two in-memory structures next to the full on-disk data:

* the **ε-map** ``h(s) : id -> eps`` — one float per entity, tiny compared to
  the feature vectors (the paper's Citeseer ε-map is 245x smaller than the
  data set);
* a **buffer** of at most ``B`` full entity records, refilled at each
  reorganization with the entities closest to the decision boundary — exactly
  the ones whose labels are most likely to need a real lookup.

Single Entity reads follow the paper's Figure 8: answer from the ε-map when
the entity is outside the water band, else from the buffer, else go to disk.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.stores.base import EntityRecord, EntityStore
from repro.core.stores.ondisk import OnDiskEntityStore
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.costmodel import CostModel
from repro.exceptions import ConfigurationError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector

__all__ = ["HybridEntityStore"]


class HybridEntityStore(EntityStore):
    """On-disk store + in-memory ε-map + bounded hot-entity buffer.

    Parameters
    ----------
    buffer_fraction:
        Fraction of the entities that may be cached as full records (the
        paper's experiments use 1 %).  ``buffer_capacity`` overrides it with an
        absolute count when given.
    """

    def __init__(
        self,
        pool: BufferPool | None = None,
        cost_model: CostModel | None = None,
        stats: IOStatistics | None = None,
        feature_norm_q: float = 1.0,
        buffer_fraction: float = 0.01,
        buffer_capacity: int | None = None,
    ):
        if buffer_fraction < 0 or buffer_fraction > 1:
            raise ConfigurationError("buffer_fraction must be in [0, 1]")
        disk = OnDiskEntityStore(
            pool=pool, cost_model=cost_model, stats=stats, feature_norm_q=feature_norm_q
        )
        super().__init__(disk.cost_model, disk.stats, feature_norm_q)
        self.disk = disk
        self.buffer_fraction = float(buffer_fraction)
        self.buffer_capacity = buffer_capacity
        self._eps_map: dict[object, float] = {}
        self._buffer: dict[object, EntityRecord] = {}
        #: Counters a maintainer (or benchmark) can inspect to see where reads were served.
        self.epsmap_served = 0
        self.buffer_served = 0
        self.disk_served = 0

    # -- sizing ---------------------------------------------------------------------------

    def _buffer_limit(self) -> int:
        if self.buffer_capacity is not None:
            return self.buffer_capacity
        return max(1, int(self.buffer_fraction * max(1, self.disk.count())))

    def _refill_buffer(self) -> None:
        """Cache the entities closest to the decision boundary (smallest |eps|)."""
        limit = self._buffer_limit()
        closest = sorted(self._eps_map.items(), key=lambda item: abs(item[1]))[:limit]
        self._buffer = {}
        for entity_id, _ in closest:
            self._buffer[entity_id] = self.disk.get(entity_id)

    # -- lifecycle ---------------------------------------------------------------------------

    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> float:
        cost = self.disk.bulk_load(entities, model)
        self._max_feature_norm = self.disk.max_feature_norm
        self._eps_map = {record.entity_id: record.eps for record in self.disk.scan_all()}
        self._refill_buffer()
        return cost

    def insert(self, entity_id: object, features: SparseVector, eps: float, label: int) -> None:
        self.disk.insert(entity_id, features, eps, label)
        self._max_feature_norm = self.disk.max_feature_norm
        self._eps_map[entity_id] = eps
        if len(self._buffer) < self._buffer_limit():
            self._buffer[entity_id] = EntityRecord(entity_id, features, eps, label)

    def _import_records(self, records) -> None:
        """Warm-restart load: import the disk component, rebuild ε-map and buffer."""
        self.disk._import_records(records)
        self._max_feature_norm = max(self._max_feature_norm, self.disk.max_feature_norm)
        self._eps_map = {entity_id: eps for entity_id, _, eps, _ in records}
        self._refill_buffer()

    def reorganize(self, model: LinearModel) -> float:
        """Reorganize the disk component, then rebuild the ε-map and the buffer."""
        cost = self.disk.reorganize(model)
        self._eps_map = {record.entity_id: record.eps for record in self.disk.scan_all()}
        self._refill_buffer()
        return cost

    # -- reads -----------------------------------------------------------------------------------

    def eps_hint(self, entity_id: object) -> float | None:
        """The ε-map lookup: one hash probe, no page access."""
        eps = self._eps_map.get(entity_id)
        if eps is not None:
            self.epsmap_served += 1
            self.stats.charge(self.cost_model.tuple_cpu, "epsmap_lookup")
        return eps

    def get(self, entity_id: object) -> EntityRecord:
        """Buffer first, then disk (Figure 8, steps 3-4)."""
        cached = self._buffer.get(entity_id)
        if cached is not None:
            self.buffer_served += 1
            self.stats.tuples_read += 1
            self.stats.charge(self.cost_model.tuple_cpu, "tuple_read")
            return cached
        self.disk_served += 1
        return self.disk.get(entity_id)

    def scan_all(self) -> Iterator[EntityRecord]:
        return self.disk.scan_all()

    def scan_eps_range(self, low: float, high: float) -> Iterator[EntityRecord]:
        return self.disk.scan_eps_range(low, high)

    def scan_eps_at_least(self, low: float) -> Iterator[EntityRecord]:
        return self.disk.scan_eps_at_least(low)

    def scan_eps_at_most(self, high: float) -> Iterator[EntityRecord]:
        return self.disk.scan_eps_at_most(high)

    # -- writes -------------------------------------------------------------------------------------

    def update_label(self, entity_id: object, label: int) -> None:
        """Write through to disk and keep the buffered copy coherent."""
        self.disk.update_label(entity_id, label)
        cached = self._buffer.get(entity_id)
        if cached is not None:
            cached.label = label

    def delete(self, entity_id: object) -> None:
        """Remove from disk, the ε-map, and the buffer."""
        self.disk.delete(entity_id)
        self._eps_map.pop(entity_id, None)
        self._buffer.pop(entity_id, None)

    # -- statistics ------------------------------------------------------------------------------------

    def count(self) -> int:
        return self.disk.count()

    def count_label(self, label: int) -> int:
        return self.disk.count_label(label)

    def memory_usage(self) -> dict[str, int]:
        """The Figure 6(A) breakdown: ε-map vs buffer vs indexes."""
        # The paper models the eps-map as (key + sizeof(double)) per entity.
        eps_map_bytes = (8 + 8) * len(self._eps_map)
        buffer_bytes = sum(
            record.features.approx_size_bytes() + 16 for record in self._buffer.values()
        )
        index_bytes = self.disk.memory_usage()["total"]
        return {
            "eps_map": eps_map_bytes,
            "buffer": buffer_bytes,
            "disk_indexes": index_bytes,
            "total": eps_map_bytes + buffer_bytes + index_bytes,
        }

    def buffer_size(self) -> int:
        """Number of records currently buffered."""
        return len(self._buffer)

    def point_read_cost_estimate(self) -> float:
        """Buffer hits are free of page I/O; weight the disk estimate by the miss rate."""
        total = max(1, self.disk.count())
        miss_rate = 1.0 - min(1.0, len(self._buffer) / total)
        return miss_rate * self.disk.point_read_cost_estimate() + self.cost_model.tuple_cpu

    def _page_estimate(self) -> int:
        return self.disk.heap.page_count()
