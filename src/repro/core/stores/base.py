"""The entity-store interface shared by the on-disk, in-memory and hybrid architectures."""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.db.buffer_pool import IOStatistics
from repro.db.costmodel import CostModel
from repro.learn.model import LinearModel
from repro.linalg import SparseVector

__all__ = ["EntityRecord", "EntityStore"]


@dataclass
class EntityRecord:
    """One entity as the scratch table ``H`` sees it.

    ``eps`` is the margin under the *stored* model (the model the store was
    last organized under), not the current one; ``label`` is the entity's
    label in the maintained view.
    """

    entity_id: object
    features: SparseVector
    eps: float
    label: int


class EntityStore(ABC):
    """Physical storage of ``H(id, f, eps, label)`` clustered on ``eps``.

    Every store charges its work to an :class:`~repro.db.buffer_pool.IOStatistics`
    ledger priced by a :class:`~repro.db.costmodel.CostModel`; maintainers
    measure the cost of a step as the difference of ``stats.simulated_seconds``
    around it, which is what feeds the Skiing strategy.
    """

    #: Whether concurrent reader threads may safely share this store's read
    #: path without external locking.  Only the in-memory store (which uses
    #: copy-on-write clustering arrays) sets this; callers serving other
    #: architectures from multiple threads must serialize on :attr:`read_lock`.
    supports_concurrent_reads: bool = False

    def __init__(self, cost_model: CostModel, stats: IOStatistics, feature_norm_q: float = 1.0):
        self.cost_model = cost_model
        self.stats = stats
        self.feature_norm_q = float(feature_norm_q)
        self._max_feature_norm = 0.0
        #: Coarse lock for callers that drive the read path from several
        #: threads against an architecture without a concurrent-safe read path.
        self.read_lock = threading.RLock()

    # -- cost helpers -----------------------------------------------------------------

    def charge_dot_product(self, features: SparseVector) -> None:
        """Charge the CPU cost of one ``w · f`` against this store's ledger."""
        self.stats.dot_products += 1
        self.stats.charge(self.cost_model.dot_product_cost(features.nnz()), "dot_product")

    def charge_featurization(self, nonzeros: int) -> None:
        """Charge the CPU cost of featurizing one entity tuple (cold-load path)."""
        self.stats.charge(self.cost_model.featurize_cost(nonzeros), "featurize")

    def charge_statement_overhead(self) -> None:
        """Charge the per-statement RDBMS overhead (point-query dispatch)."""
        self.stats.charge(self.cost_model.statement_overhead, "statement")

    def charge_model_update(self) -> None:
        """Charge the cost of one incremental training step (paper §2.2, ~100 µs)."""
        self.stats.charge(self.cost_model.model_update, "model_update")

    def charge_bound_update(self, nonzeros: int) -> None:
        """Charge the water-band bound computation (a norm over the weight delta)."""
        self.stats.charge(self.cost_model.dot_product_cost(nonzeros), "bound_update")

    def cost_snapshot(self) -> float:
        """Current accumulated simulated seconds (for before/after measurement)."""
        return self.stats.simulated_seconds

    # -- feature norm (the constant M of Lemma 3.1) --------------------------------------

    @property
    def max_feature_norm(self) -> float:
        """``M = max_t ||f(t)||_q`` over every entity ever inserted."""
        return self._max_feature_norm

    def _observe_features(self, features: SparseVector) -> None:
        norm = features.norm(self.feature_norm_q)
        if norm > self._max_feature_norm:
            self._max_feature_norm = norm

    # -- lifecycle -------------------------------------------------------------------------

    @abstractmethod
    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> float:
        """Populate the store from scratch, clustered under ``model``.

        Returns the simulated cost of the load (used as the initial estimate
        of the reorganization cost ``S``).
        """

    @abstractmethod
    def insert(self, entity_id: object, features: SparseVector, eps: float, label: int) -> None:
        """Add one new entity with a precomputed ``eps`` (stored model) and label."""

    @abstractmethod
    def reorganize(self, model: LinearModel) -> float:
        """Recompute every ``eps`` under ``model``, recluster, return the measured cost."""

    # -- reads --------------------------------------------------------------------------------

    @abstractmethod
    def get(self, entity_id: object) -> EntityRecord:
        """Point lookup by entity id."""

    def eps_hint(self, entity_id: object) -> float | None:
        """Return the stored ``eps`` without touching disk, if the architecture can.

        Only the hybrid architecture (with its ε-map) returns a value here;
        other stores return None and callers fall back to :meth:`get`.
        """
        return None  # noqa: RET501

    @abstractmethod
    def scan_all(self) -> Iterator[EntityRecord]:
        """Sequential scan of every entity in clustering order."""

    @abstractmethod
    def scan_eps_range(self, low: float, high: float) -> Iterator[EntityRecord]:
        """Entities with ``low <= eps <= high`` (the water band), in eps order."""

    @abstractmethod
    def scan_eps_at_least(self, low: float) -> Iterator[EntityRecord]:
        """Entities with ``eps >= low``, in eps order (lazy All Members path)."""

    @abstractmethod
    def scan_eps_at_most(self, high: float) -> Iterator[EntityRecord]:
        """Entities with ``eps <= high``, in eps order (negative-class queries)."""

    # -- checkpoint / recovery -------------------------------------------------------------

    def export_state(self) -> dict[str, object]:
        """Snapshot this store's physical state as plain Python data.

        Returns ``{"records": [(id, features, eps, label), ...],
        "max_feature_norm": M}`` with the records in clustering (eps) order.
        The scan charges its usual read costs, so a checkpoint's price shows
        up on the ledger like any other full scan.  Record tuples carry
        copied scalars — later in-place label updates do not leak into a
        snapshot taken earlier.
        """
        return {
            "records": [
                (record.entity_id, record.features, record.eps, record.label)
                for record in self.scan_all()
            ],
            "max_feature_norm": self._max_feature_norm,
        }

    def import_state(self, state: dict[str, object]) -> float:
        """Rebuild this store from :meth:`export_state` output; returns the cost.

        This is the warm-restart fast path: the eps values and labels were
        already computed when the snapshot was written, so — unlike
        :meth:`bulk_load` — no dot products are charged and no re-sort is
        priced (the snapshot is in clustering order).  Reading the snapshot
        itself is priced as a sequential scan of ``state["payload_bytes"]``
        bytes when the caller provides them.
        """
        start = self.cost_snapshot()
        payload_bytes = int(state.get("payload_bytes", 0) or 0)
        if payload_bytes > 0:
            pages = max(1, -(-payload_bytes // self.cost_model.page_size_bytes))
            self.stats.charge(pages * self.cost_model.sequential_page_read, "snapshot_read")
        self._import_records(state["records"])
        self._max_feature_norm = max(
            self._max_feature_norm, float(state.get("max_feature_norm", 0.0))
        )
        return self.cost_snapshot() - start

    def _import_records(self, records: list[tuple[object, "SparseVector", float, int]]) -> None:
        """Architecture hook for :meth:`import_state`: load pre-classified records."""
        raise NotImplementedError(f"{type(self).__name__} does not support import_state")

    # -- writes ---------------------------------------------------------------------------------

    @abstractmethod
    def update_label(self, entity_id: object, label: int) -> None:
        """Overwrite an entity's label in place."""

    def delete(self, entity_id: object) -> None:
        """Remove one entity from the store (drives entity ``DELETE`` triggers).

        Concrete architectures override this; the default exists so external
        store subclasses predating deletion support keep importing cleanly.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support deletion")

    # -- statistics -------------------------------------------------------------------------------

    @abstractmethod
    def count(self) -> int:
        """Number of entities stored."""

    @abstractmethod
    def count_label(self, label: int) -> int:
        """Number of entities currently carrying ``label``."""

    @abstractmethod
    def memory_usage(self) -> dict[str, int]:
        """Approximate RAM footprint by component, in bytes."""

    def count_eps_in_range(self, low: float, high: float) -> int:
        """Number of entities whose stored eps lies inside ``[low, high]``."""
        return sum(1 for _ in self.scan_eps_range(low, high))

    def scan_cost_estimate(self) -> float:
        """Estimated simulated cost of one full sequential scan (the ``sigma * S`` of §3.3)."""
        return self.cost_model.scan_cost(page_count=self._page_estimate(), tuple_count=self.count())

    def point_read_cost_estimate(self) -> float:
        """Estimated simulated cost of one point lookup (for batch-read planning)."""
        if self._page_estimate() > 0:
            return self.cost_model.random_page_read + self.cost_model.tuple_cpu
        return self.cost_model.tuple_cpu

    def _page_estimate(self) -> int:
        """How many pages a full scan would touch (0 for pure in-memory stores)."""
        return 0
