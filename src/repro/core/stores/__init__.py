"""Physical architectures for the scratch table ``H`` (paper §3.2, §3.5).

A store holds, for every entity: its feature vector, its ``eps`` under the
*stored* model, and its current label.  The three implementations mirror the
paper's architectures:

* :class:`~repro.core.stores.mainmemory.InMemoryEntityStore` — Hazy-MM, the
  data clustered in memory;
* :class:`~repro.core.stores.ondisk.OnDiskEntityStore` — Hazy-OD, a heap file
  behind the buffer pool, rewritten in ``eps`` order at each reorganization
  with a clustered B+-tree on ``eps``;
* :class:`~repro.core.stores.hybrid.HybridEntityStore` — the hybrid design: the
  on-disk store plus an in-memory ε-map (id → eps) and a bounded buffer of the
  entities most likely to change label.
"""

from repro.core.stores.base import EntityRecord, EntityStore
from repro.core.stores.hybrid import HybridEntityStore
from repro.core.stores.mainmemory import InMemoryEntityStore
from repro.core.stores.ondisk import OnDiskEntityStore

__all__ = [
    "EntityRecord",
    "EntityStore",
    "InMemoryEntityStore",
    "OnDiskEntityStore",
    "HybridEntityStore",
]
