"""The on-disk architecture, Hazy-OD (paper §3.2).

The scratch table ``H(id, f, eps, label)`` lives in a heap file behind the
database's buffer pool.  At each reorganization the heap is rewritten in
``eps`` order (that is the clustering the paper maintains) and a clustered
B+-tree over ``eps`` is rebuilt, so scans of the water band touch only the few
contiguous pages that hold it.  A hash index on the entity id serves Single
Entity reads.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.stores.base import EntityRecord, EntityStore
from repro.db.btree import BPlusTree
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.costmodel import CostModel
from repro.db.hash_index import HashIndex
from repro.db.heap import HeapFile
from repro.db.page import RecordId
from repro.db.types import estimate_value_size
from repro.exceptions import DuplicateKeyError, KeyNotFoundError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector

__all__ = ["OnDiskEntityStore"]


def _row_size(row: dict[str, object]) -> int:
    """Approximate serialized size of an H-row."""
    return sum(estimate_value_size(value) for value in row.values()) + 8


class OnDiskEntityStore(EntityStore):
    """Heap file + clustered B+-tree on eps + hash index on id.

    Parameters
    ----------
    pool:
        The buffer pool to allocate pages from.  Supplying a pool with a small
        ``capacity_pages`` models a memory-starved system; an unbounded pool
        still pays the cold-read and write-back costs that dominate on-disk
        behaviour right after a reorganization.
    """

    def __init__(
        self,
        pool: BufferPool | None = None,
        cost_model: CostModel | None = None,
        stats: IOStatistics | None = None,
        feature_norm_q: float = 1.0,
        btree_order: int = 64,
    ):
        if pool is None:
            cost_model = cost_model if cost_model is not None else CostModel()
            stats = stats if stats is not None else IOStatistics()
            pool = BufferPool(cost_model, capacity_pages=None, statistics=stats)
        super().__init__(pool.cost_model, pool.stats, feature_norm_q)
        self.pool = pool
        self.heap = HeapFile(pool, sizer=_row_size)
        self.id_index = HashIndex("id")
        self.eps_index = BPlusTree(order=btree_order)
        self._label_counts: dict[int, int] = {1: 0, -1: 0}
        self._btree_order = btree_order

    # -- lifecycle ------------------------------------------------------------------------

    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> float:
        """Classify every entity under ``model`` and write the heap in eps order."""
        start = self.cost_snapshot()
        staged: list[tuple[object, SparseVector, float, int]] = []
        for entity_id, features in entities:
            self._observe_features(features)
            self.charge_dot_product(features)
            eps = model.margin(features)
            staged.append((entity_id, features, eps, 1 if eps >= 0 else -1))
        self._write_clustered(staged)
        self.stats.charge(self.cost_model.sort_cost(len(staged)), "sort")
        return self.cost_snapshot() - start

    def _write_clustered(self, staged: list[tuple[object, SparseVector, float, int]]) -> None:
        """Rewrite the heap in eps order and rebuild both indexes."""
        staged.sort(key=lambda item: item[2])
        self.heap.truncate()
        self.id_index.clear()
        self.eps_index = BPlusTree(order=self._btree_order)
        self._label_counts = {1: 0, -1: 0}
        seen: set[object] = set()
        for entity_id, features, eps, label in staged:
            if entity_id in seen:
                raise DuplicateKeyError(f"duplicate entity id {entity_id!r}")
            seen.add(entity_id)
            rid = self.heap.insert(
                {"id": entity_id, "eps": eps, "label": label, "features": features}
            )
            self.id_index.insert(entity_id, rid)
            self.eps_index.insert(eps, rid)
            self._label_counts[label] = self._label_counts.get(label, 0) + 1
        self.pool.flush_all()

    def _import_records(self, records) -> None:
        """Warm-restart load: rewrite the heap from pre-classified records.

        The snapshot arrives in clustering order, so the heap comes out
        clustered exactly as a reorganization would leave it — but without
        the dot products or the sort charge a cold bulk load pays.
        """
        staged: list[tuple[object, SparseVector, float, int]] = []
        for entity_id, features, eps, label in records:
            self._observe_features(features)
            staged.append((entity_id, features, eps, label))
        self._write_clustered(staged)

    def insert(self, entity_id: object, features: SparseVector, eps: float, label: int) -> None:
        """Append one entity (unclustered until the next reorganization)."""
        if self.id_index.get(entity_id) is not None:
            raise DuplicateKeyError(f"duplicate entity id {entity_id!r}")
        self._observe_features(features)
        rid = self.heap.insert({"id": entity_id, "eps": eps, "label": label, "features": features})
        self.id_index.insert(entity_id, rid)
        self.eps_index.insert(eps, rid)
        self._label_counts[label] = self._label_counts.get(label, 0) + 1

    def reorganize(self, model: LinearModel) -> float:
        """Recompute eps under ``model``, sort, rewrite the heap, rebuild indexes."""
        start = self.cost_snapshot()
        staged: list[tuple[object, SparseVector, float, int]] = []
        for _, row in self.heap.scan():
            features = row["features"]
            self.charge_dot_product(features)
            eps = model.margin(features)
            staged.append((row["id"], features, eps, 1 if eps >= 0 else -1))
        self.stats.charge(self.cost_model.sort_cost(len(staged)), "sort")
        self._write_clustered(staged)
        return self.cost_snapshot() - start

    # -- reads -----------------------------------------------------------------------------------

    def _record_from_row(self, row: dict[str, object]) -> EntityRecord:
        return EntityRecord(row["id"], row["features"], row["eps"], row["label"])

    def get(self, entity_id: object) -> EntityRecord:
        """Point lookup through the hash index (random page access)."""
        rid = self.id_index.get(entity_id)
        if rid is None:
            raise KeyNotFoundError(f"no entity with id {entity_id!r}")
        return self._record_from_row(self.heap.read(rid, sequential=False))

    def scan_all(self) -> Iterator[EntityRecord]:
        """Full sequential scan in physical (clustered) order."""
        for _, row in self.heap.scan():
            yield self._record_from_row(row)

    def _scan_rids(self, rids: Iterable[RecordId]) -> Iterator[EntityRecord]:
        """Read a set of record ids page-by-page so each page is fetched once."""
        by_page: dict[int, list[RecordId]] = {}
        for rid in rids:
            by_page.setdefault(rid.page_id, []).append(rid)
        for page_id in sorted(by_page):
            for rid in sorted(by_page[page_id], key=lambda r: r.slot):
                yield self._record_from_row(self.heap.read(rid, sequential=True))

    def scan_eps_range(self, low: float, high: float) -> Iterator[EntityRecord]:
        """Water-band scan through the clustered B+-tree."""
        rids = [rid for _, rid in self.eps_index.range_scan(low, high)]
        return self._scan_rids(rids)

    def scan_eps_at_least(self, low: float) -> Iterator[EntityRecord]:
        rids = [rid for _, rid in self.eps_index.range_scan(low, None)]
        return self._scan_rids(rids)

    def scan_eps_at_most(self, high: float) -> Iterator[EntityRecord]:
        rids = [rid for _, rid in self.eps_index.range_scan(None, high)]
        return self._scan_rids(rids)

    # -- writes -------------------------------------------------------------------------------------

    def update_label(self, entity_id: object, label: int) -> None:
        """In-place page update of the label column (the paper's in-place-write UDF)."""
        rid = self.id_index.get(entity_id)
        if rid is None:
            raise KeyNotFoundError(f"no entity with id {entity_id!r}")
        row = dict(self.heap.read(rid, sequential=True))
        if row["label"] != label:
            self._label_counts[row["label"]] -= 1
            self._label_counts[label] = self._label_counts.get(label, 0) + 1
            row["label"] = label
            self.heap.update(rid, row, sequential=True)

    def delete(self, entity_id: object) -> None:
        """Remove one entity from the heap and both indexes."""
        rid = self.id_index.get(entity_id)
        if rid is None:
            raise KeyNotFoundError(f"no entity with id {entity_id!r}")
        row = self.heap.read(rid, sequential=False)
        self.heap.delete(rid)
        self.id_index.delete(entity_id)
        self.eps_index.delete(row["eps"], rid)
        self._label_counts[row["label"]] -= 1

    # -- statistics -----------------------------------------------------------------------------------

    def count(self) -> int:
        return self.heap.row_count()

    def count_label(self, label: int) -> int:
        return self._label_counts.get(label, 0)

    def memory_usage(self) -> dict[str, int]:
        """RAM used: only the indexes (heap pages are 'disk')."""
        id_index_bytes = 32 * len(self.id_index)
        eps_index_bytes = 40 * len(self.eps_index)
        return {
            "id_index": id_index_bytes,
            "eps_index": eps_index_bytes,
            "total": id_index_bytes + eps_index_bytes,
        }

    def _page_estimate(self) -> int:
        return self.heap.page_count()
