"""Hazy's core: incrementally maintained classification views.

This package implements the paper's primary contribution:

* :mod:`repro.core.bounds` — the Hölder-inequality low/high-water band of
  Lemma 3.1 and Equation 2.
* :mod:`repro.core.skiing` — the Skiing reorganization strategy (ski-rental
  style) and the offline-optimal schedule used to validate Theorem 3.3.
* :mod:`repro.core.stores` — the three physical architectures: on-disk,
  main-memory (Hazy-MM), and the hybrid ε-map + buffer design (§3.5).
* :mod:`repro.core.maintainers` — the four maintenance strategies: naive and
  Hazy variants of the eager and lazy approaches (§2.2, §3.2, §3.4).
* :mod:`repro.core.engine` — the user-facing engine that wires a
  :class:`~repro.db.database.Database`, feature functions, an incremental
  trainer and a maintainer behind ``CREATE CLASSIFICATION VIEW``.
"""

from repro.core.bounds import WaterBand, WaterBandTracker, holder_pair_for_norm
from repro.core.engine import ClassificationView, HazyEngine
from repro.core.kernel_view import KernelHazyEagerMaintainer, KernelNaiveEagerMaintainer
from repro.core.maintainers import (
    HazyEagerMaintainer,
    HazyLazyMaintainer,
    NaiveEagerMaintainer,
    NaiveLazyMaintainer,
)
from repro.core.multiclass_view import MulticlassClassificationView
from repro.core.skiing import OfflineOptimalScheduler, SkiingStrategy
from repro.core.stats import MaintenanceStatistics
from repro.core.stores import (
    EntityRecord,
    EntityStore,
    HybridEntityStore,
    InMemoryEntityStore,
    OnDiskEntityStore,
)
from repro.core.view import ClassificationViewDefinition

__all__ = [
    "WaterBand",
    "WaterBandTracker",
    "holder_pair_for_norm",
    "SkiingStrategy",
    "OfflineOptimalScheduler",
    "MaintenanceStatistics",
    "ClassificationViewDefinition",
    "EntityRecord",
    "EntityStore",
    "InMemoryEntityStore",
    "OnDiskEntityStore",
    "HybridEntityStore",
    "NaiveEagerMaintainer",
    "NaiveLazyMaintainer",
    "HazyEagerMaintainer",
    "HazyLazyMaintainer",
    "HazyEngine",
    "ClassificationView",
    "MulticlassClassificationView",
    "KernelHazyEagerMaintainer",
    "KernelNaiveEagerMaintainer",
]
