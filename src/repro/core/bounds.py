"""Low-water / high-water bounds from Hölder's inequality (Lemma 3.1, Eq. 2).

Given the stored model ``(w_s, b_s)`` (the one the scratch table ``H`` is
clustered under) and the current model ``(w_j, b_j)``, write
``delta_w = w_j - w_s`` and ``delta_b = b_j - b_s``.  For any entity with
stored margin ``eps = w_s · f - b_s`` and ``M = max_t ||f(t)||_q``:

* if ``eps >= eps_high = M * ||delta_w||_p + delta_b`` the entity is certainly
  in the positive class under the *current* model;
* if ``eps <= eps_low = -M * ||delta_w||_p + delta_b`` it is certainly in the
  negative class.

The cumulative band ``[lw, hw]`` (Eq. 2) takes the min/max of these bounds
over every round since the last reorganization, so that entities outside the
band are guaranteed to still carry the label they had when ``H`` was built.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import MaintenanceError
from repro.learn.model import LinearModel
from repro.linalg import holder_conjugate

__all__ = ["WaterBand", "WaterBandTracker", "holder_pair_for_norm"]


def holder_pair_for_norm(feature_norm_q: float) -> tuple[float, float]:
    """Return the Hölder pair ``(p, q)`` given the q-norm the features obey.

    Text features are l1-normalized (q = 1) so the model delta is measured in
    the infinity norm; dense features are l2-normalized (q = 2) so p = 2.
    """
    q = float(feature_norm_q)
    if q < 1:
        raise MaintenanceError(f"feature norm q must be >= 1, got {q}")
    return holder_conjugate(q), q


@dataclass(frozen=True)
class WaterBand:
    """The closed interval ``[low, high]`` of stored-eps values that must be rechecked."""

    low: float
    high: float

    def contains(self, eps: float) -> bool:
        """Whether a stored eps falls inside the band (inclusive)."""
        return self.low <= eps <= self.high

    def certain_positive(self, eps: float) -> bool:
        """Entity is certainly in the positive class under the current model."""
        return eps > self.high

    def certain_negative(self, eps: float) -> bool:
        """Entity is certainly in the negative class under the current model."""
        return eps < self.low

    def width(self) -> float:
        """Band width (may be 0 when the model has not moved)."""
        return max(0.0, self.high - self.low)


class WaterBandTracker:
    """Maintains ``lw`` / ``hw`` between reorganizations.

    Parameters
    ----------
    p:
        Hölder exponent applied to the *model delta* norm.
    max_feature_norm:
        ``M = max_t ||f(t)||_q`` with ``q`` the conjugate of ``p``.  Only a
        function of the entity set; the stores keep it up to date as entities
        arrive.
    """

    def __init__(self, p: float, max_feature_norm: float):
        if max_feature_norm < 0:
            raise MaintenanceError("max feature norm must be non-negative")
        self.p = float(p)
        self.q = holder_conjugate(self.p) if self.p != math.inf else 1.0
        self.max_feature_norm = float(max_feature_norm)
        self._stored_model: LinearModel | None = None
        self._low = 0.0
        self._high = 0.0

    # -- lifecycle -----------------------------------------------------------------

    def reset(self, stored_model: LinearModel) -> None:
        """Start a new epoch: the store was just (re)organized under ``stored_model``."""
        self._stored_model = stored_model.copy()
        self._low = 0.0
        self._high = 0.0

    def restore_band(self, low: float, high: float) -> None:
        """Resume a cumulative band mid-stream (checkpoint recovery).

        ``reset`` must have been called with the snapshot's stored model
        first; the band then picks up exactly where the checkpointed epoch
        left off instead of collapsing to width 0, keeping Lemma 3.1 sound
        for every model movement since the last reorganization.
        """
        if low > 0.0 or high < 0.0:
            raise MaintenanceError(
                f"cumulative band must contain 0, got [{low}, {high}]"
            )
        self._low = float(low)
        self._high = float(high)

    @property
    def stored_model(self) -> LinearModel:
        """The model the current epoch is clustered under."""
        if self._stored_model is None:
            raise MaintenanceError("WaterBandTracker.reset was never called")
        return self._stored_model

    def observe_max_feature_norm(self, feature_norm: float) -> None:
        """Raise ``M`` when a new entity with a larger q-norm arrives."""
        if feature_norm > self.max_feature_norm:
            self.max_feature_norm = feature_norm

    # -- the bounds ---------------------------------------------------------------------

    def step_bounds(self, current_model: LinearModel) -> tuple[float, float]:
        """``(eps_low, eps_high)`` of Lemma 3.1 for the given current model."""
        delta = current_model.delta_from(self.stored_model)
        delta_norm = delta.weight_norm(self.p)
        radius = self.max_feature_norm * delta_norm
        return (-radius + delta.bias_delta, radius + delta.bias_delta)

    def advance(self, current_model: LinearModel) -> WaterBand:
        """Fold the current model's bounds into the cumulative band (Eq. 2)."""
        eps_low, eps_high = self.step_bounds(current_model)
        self._low = min(self._low, eps_low)
        self._high = max(self._high, eps_high)
        return self.band()

    def band(self) -> WaterBand:
        """The cumulative band ``[lw, hw]`` for the current epoch."""
        return WaterBand(self._low, self._high)

    def non_monotone_band(self, previous_model: LinearModel, current_model: LinearModel) -> WaterBand:
        """The alternative band over only the last two rounds (Appendix B.3).

        This violates the monotone-cost assumption of the Skiing analysis but
        can be tighter in practice; it is exposed for the ablation benchmark.
        """
        prev_low, prev_high = self.step_bounds(previous_model)
        cur_low, cur_high = self.step_bounds(current_model)
        return WaterBand(min(prev_low, cur_low), max(prev_high, cur_high))
