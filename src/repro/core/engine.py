"""The Hazy engine: classification views behind an RDBMS facade.

:class:`HazyEngine` attaches to a :class:`~repro.db.database.Database` and
handles the ``CREATE CLASSIFICATION VIEW`` statement: it resolves the entity
and example tables, instantiates the declared feature function, trains the
initial model, bulk-loads a maintainer over the chosen architecture, and wires
triggers so that ordinary SQL ``INSERT`` statements against the entity and
example tables keep the view maintained — exactly the developer experience the
paper describes in §2.1.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping

from repro.core.maintainers import (
    HazyEagerMaintainer,
    HazyLazyMaintainer,
    NaiveEagerMaintainer,
    NaiveLazyMaintainer,
    ViewMaintainer,
)
from repro.core.stores import (
    EntityStore,
    HybridEntityStore,
    InMemoryEntityStore,
    OnDiskEntityStore,
)
from repro.core.view import ClassificationViewDefinition
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.database import Database
from repro.db.sql.ast import (
    CheckpointView,
    CreateClassificationView,
    RestoreView,
    ServeView,
    Statement,
    StopServing,
)
from repro.db.sql.executor import ResultSet
from repro.db.triggers import Trigger, TriggerEvent
from repro.exceptions import (
    ConfigurationError,
    SnapshotMismatchError,
    ViewDefinitionError,
)
from repro.features import FeatureFunction, FeatureFunctionRegistry, default_registry
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector

__all__ = ["HazyEngine", "ClassificationView"]

#: Valid architecture names for the engine and their store classes.
ARCHITECTURES = ("mainmemory", "ondisk", "hybrid")
#: Valid strategy names.
STRATEGIES = ("hazy", "naive")
#: Valid approaches.
APPROACHES = ("eager", "lazy")


class ClassificationView:
    """One maintained classification view: feature function + trainer + maintainer."""

    def __init__(
        self,
        definition: ClassificationViewDefinition,
        database: Database,
        feature_function: FeatureFunction,
        maintainer: ViewMaintainer,
        trainer: SGDTrainer,
        positive_label: object | None = None,
    ):
        self.definition = definition
        self.database = database
        self.feature_function = feature_function
        self.maintainer = maintainer
        self.trainer = trainer
        self.positive_label = positive_label
        self._examples: list[TrainingExample] = []
        #: When a serving front-end has taken over this view (see
        #: :meth:`serve`), reads delegate to it and triggers enqueue.
        self._server = None
        self._initialize()

    # -- initialization -------------------------------------------------------------------

    @classmethod
    def restore(
        cls,
        definition: ClassificationViewDefinition,
        database: Database,
        feature_function: FeatureFunction,
        maintainer: ViewMaintainer,
        trainer: SGDTrainer,
        positive_label: object,
        examples: list[TrainingExample],
    ) -> "ClassificationView":
        """Rebuild a view from checkpointed state, skipping the cold initialization.

        Nothing is featurized, trained, or bulk-loaded here — the serving
        state lives in the restored :class:`~repro.serve.server.ViewServer`'s
        shards, and ``maintainer`` stays *unloaded* until the server hands the
        view back on close.  Triggers are attached exactly as in the cold
        path, so post-restore DML maintains the view as usual.
        """
        view = object.__new__(cls)
        view.definition = definition
        view.database = database
        view.feature_function = feature_function
        view.maintainer = maintainer
        view.trainer = trainer
        view.positive_label = positive_label
        view._examples = list(examples)
        view._server = None
        entities_table = database.table(definition.entities_table)
        examples_table = database.table(definition.examples_table)
        if not entities_table.schema.has_column(definition.entities_key):
            raise ViewDefinitionError(
                f"entities table {entities_table.name!r} has no column "
                f"{definition.entities_key!r}"
            )
        view._attach_triggers(entities_table, examples_table)
        return view

    def _initialize(self) -> None:
        entities_table = self.database.table(self.definition.entities_table)
        examples_table = self.database.table(self.definition.examples_table)
        if not entities_table.schema.has_column(self.definition.entities_key):
            raise ViewDefinitionError(
                f"entities table {entities_table.name!r} has no column "
                f"{self.definition.entities_key!r}"
            )
        self._resolve_positive_label()

        # Pass 1: corpus statistics for the feature function.
        self.feature_function.compute_stats(entities_table.scan())

        # Absorb any pre-existing training examples before the bulk load so the
        # initial clustering reflects the warm model.
        entity_features: dict[object, SparseVector] = {}
        for row in entities_table.scan():
            entity_id = row[self.definition.entities_key]
            features = self.feature_function.compute_feature(row)
            self.maintainer.store.charge_featurization(features.nnz())
            entity_features[entity_id] = features
        for row in examples_table.scan():
            example = self._example_from_row(row, entity_features)
            if example is not None:
                self._examples.append(example)
                self.trainer.absorb(example)

        self.maintainer.bulk_load(entity_features.items(), self.trainer.model.copy())
        self._attach_triggers(entities_table, examples_table)

    def _resolve_positive_label(self) -> None:
        if self.positive_label is not None:
            return
        if self.definition.labels_table and self.database.catalog.has_table(
            self.definition.labels_table
        ):
            labels_table = self.database.table(self.definition.labels_table)
            column = self.definition.labels_column or labels_table.schema.column_names()[0]
            for row in labels_table.scan():
                self.positive_label = row.get(column)
                break

    def _attach_triggers(self, entities_table, examples_table) -> None:
        prefix = f"hazy_{self.definition.view_name}"
        entities_table.add_trigger(
            Trigger(
                name=f"{prefix}_entities",
                event=TriggerEvent.AFTER_INSERT,
                callback=lambda _table, new_row, _old: self._on_entity_insert(new_row),
            )
        )
        entities_table.add_trigger(
            Trigger(
                name=f"{prefix}_entities_update",
                event=TriggerEvent.AFTER_UPDATE,
                callback=lambda _table, new_row, old_row: self._on_entity_update(
                    new_row, old_row
                ),
            )
        )
        entities_table.add_trigger(
            Trigger(
                name=f"{prefix}_entities_delete",
                event=TriggerEvent.AFTER_DELETE,
                callback=lambda _table, _new, old_row: self._on_entity_delete(old_row),
            )
        )
        examples_table.add_trigger(
            Trigger(
                name=f"{prefix}_examples",
                event=TriggerEvent.AFTER_INSERT,
                callback=lambda _table, new_row, _old: self._on_example_insert(new_row),
            )
        )
        examples_table.add_trigger(
            Trigger(
                name=f"{prefix}_examples_update",
                event=TriggerEvent.AFTER_UPDATE,
                callback=lambda _table, new_row, old_row: self._on_example_update(
                    new_row, old_row
                ),
            )
        )
        examples_table.add_trigger(
            Trigger(
                name=f"{prefix}_examples_delete",
                event=TriggerEvent.AFTER_DELETE,
                callback=lambda _table, _new, old_row: self._on_example_delete(old_row),
            )
        )

    def _detach_triggers(self) -> None:
        """Drop this view's maintenance triggers (engine rollback path)."""
        prefix = f"hazy_{self.definition.view_name}"
        suffixes = (
            "_entities",
            "_entities_update",
            "_entities_delete",
            "_examples",
            "_examples_update",
            "_examples_delete",
        )
        for table_name in (self.definition.entities_table, self.definition.examples_table):
            try:
                table = self.database.table(table_name)
            except Exception:
                continue
            for suffix in suffixes:
                table.drop_trigger(f"{prefix}{suffix}")

    # -- label conversion ----------------------------------------------------------------------

    def to_binary_label(self, label_value: object) -> int:
        """Convert a user-facing label value to the internal {-1, +1} encoding."""
        if isinstance(label_value, bool):
            return 1 if label_value else -1
        if isinstance(label_value, (int, float)) and label_value in (-1, 1):
            return int(label_value)
        if self.positive_label is not None:
            return 1 if label_value == self.positive_label else -1
        raise ConfigurationError(
            f"cannot interpret label {label_value!r}: declare a LABELS table or use -1/+1"
        )

    def from_binary_label(self, label: int) -> object:
        """Convert the internal label back to the user-facing value when one is known."""
        if self.positive_label is None:
            return label
        if label == 1:
            return self.positive_label
        return f"not_{self.positive_label}"

    # -- trigger bodies --------------------------------------------------------------------------

    def _example_from_row(
        self, row: Mapping[str, object], feature_lookup: Mapping[object, SparseVector] | None = None
    ) -> TrainingExample | None:
        entity_id = row[self.definition.examples_key]
        label = self.to_binary_label(row[self.definition.examples_label])
        if feature_lookup is not None and entity_id in feature_lookup:
            features = feature_lookup[entity_id]
        else:
            try:
                features = self.maintainer.store.get(entity_id).features
            except Exception:
                return None
        return TrainingExample(entity_id=entity_id, features=features, label=label)

    def _on_entity_insert(self, row: Mapping[str, object] | None) -> None:
        if row is None:
            return
        self.feature_function.compute_stats_incremental(row)
        entity_id = row[self.definition.entities_key]
        features = self.feature_function.compute_feature(row)
        self.maintainer.store.charge_featurization(features.nnz())
        self.maintainer.add_entity(entity_id, features)

    def _on_entity_update(
        self, new_row: Mapping[str, object] | None, old_row: Mapping[str, object] | None
    ) -> None:
        """An entity row changed: refeaturize it and replace it in the view.

        Corpus statistics are append-only (as in the streaming setting the
        paper assumes), so the new row's stats are folded in incrementally;
        training examples keep the feature snapshot they were absorbed with.
        """
        if new_row is None or old_row is None:
            return
        old_id = old_row[self.definition.entities_key]
        self.maintainer.remove_entity(old_id)
        self._on_entity_insert(new_row)

    def _on_entity_delete(self, old_row: Mapping[str, object] | None) -> None:
        """An entity row was deleted: drop it from the view."""
        if old_row is None:
            return
        self.maintainer.remove_entity(old_row[self.definition.entities_key])

    def _on_example_insert(self, row: Mapping[str, object] | None) -> None:
        if row is None:
            return
        example = self._example_from_row(row)
        if example is None:
            raise ViewDefinitionError(
                f"training example references unknown entity {row[self.definition.examples_key]!r}"
            )
        self._examples.append(example)
        model = self.trainer.absorb(example)
        self.maintainer.apply_model(model)

    def _on_example_update(
        self, new_row: Mapping[str, object] | None, old_row: Mapping[str, object] | None
    ) -> None:
        """An example changed: forget the old one, retain the new, retrain once."""
        if new_row is None or old_row is None:
            return
        # Validate the replacement before touching state: a bad new row must
        # not leave the old example silently dropped without a retrain.
        new_example = self._example_from_row(new_row)
        if new_example is None:
            raise ViewDefinitionError(
                f"training example references unknown entity "
                f"{new_row[self.definition.examples_key]!r}"
            )
        old_id = old_row[self.definition.examples_key]
        old_label = self.to_binary_label(old_row[self.definition.examples_label])
        for index, example in enumerate(self._examples):
            if example.entity_id == old_id and example.label == old_label:
                del self._examples[index]
                break
        self._examples.append(new_example)
        self.retrain()

    def _on_example_delete(self, row: Mapping[str, object] | None) -> None:
        """Deletion of an example retrains the model from scratch (paper footnote 2)."""
        if row is None:
            return
        deleted_id = row[self.definition.examples_key]
        deleted_label = self.to_binary_label(row[self.definition.examples_label])
        for index, example in enumerate(self._examples):
            if example.entity_id == deleted_id and example.label == deleted_label:
                del self._examples[index]
                break
        self.retrain()

    # -- public operations ------------------------------------------------------------------------

    def retrain(self) -> None:
        """Retrain the model from the retained examples and rebuild the view."""
        self.trainer.reset()
        for example in self._examples:
            self.trainer.absorb(example)
        self.maintainer.current_model = self.trainer.model.copy()
        self.maintainer.apply_model(self.trainer.model.copy())

    def insert_example(self, entity_id: object, label_value: object) -> None:
        """Insert a training example through the examples table (fires the trigger)."""
        table = self.database.table(self.definition.examples_table)
        table.insert(
            {
                self.definition.examples_key: entity_id,
                self.definition.examples_label: label_value,
            }
        )

    def label_of(self, entity_id: object) -> int:
        """Single Entity read: the entity's label in {-1, +1}."""
        if self._server is not None:
            return self._server.label_of(entity_id)
        return self.maintainer.read_single(entity_id)

    def members(self, label: int = 1) -> list[object]:
        """All Members read: ids of every entity with the given binary label."""
        if self._server is not None:
            return self._server.all_members(label)
        return self.maintainer.read_all_members(label)

    def count_members(self, label: int = 1) -> int:
        """Number of entities in the class."""
        return len(self.members(label))

    def rows(self) -> Iterator[dict[str, object]]:
        """The view's rows for SQL access: (key, class) per entity."""
        key_column = self.definition.view_key
        if self._server is not None:
            for entity_id, label in self._server.contents().items():
                yield {key_column: entity_id, "class": self.from_binary_label(label)}
            return
        for record in self.maintainer.store.scan_all():
            yield {
                key_column: record.entity_id,
                "class": self.from_binary_label(self.maintainer.read_single(record.entity_id)),
            }

    # -- serving hooks ------------------------------------------------------------------------

    def model_snapshot(self):
        """Snapshot hook: ``(version, model copy)`` of the current model."""
        model = self.trainer.model.copy()
        return model.version, model

    def entity_snapshot(self) -> list[tuple[object, SparseVector]]:
        """Shard hook: materialized ``(id, features)`` pairs for partitioning."""
        return [
            (record.entity_id, record.features) for record in self.maintainer.store.scan_all()
        ]

    @property
    def server(self):
        """The attached :class:`~repro.serve.server.ViewServer`, if serving."""
        return self._server

    def insert_entity(self, row: Mapping[str, object]) -> None:
        """Insert an entity through the entities table (fires the trigger)."""
        self.database.table(self.definition.entities_table).insert(row)

    @property
    def model(self):
        """The current model ``(w, b)``."""
        return self.trainer.model

    @property
    def name(self) -> str:
        """The view's name."""
        return self.definition.view_name


class HazyEngine:
    """Factory and registry of classification views over one database.

    Parameters
    ----------
    database:
        The relational substrate holding the entity / example tables.
    architecture:
        ``"mainmemory"`` (Hazy-MM), ``"ondisk"`` (Hazy-OD) or ``"hybrid"``.
    strategy:
        ``"hazy"`` (incremental, water band + Skiing) or ``"naive"``.
    approach:
        ``"eager"`` or ``"lazy"``.
    alpha:
        The Skiing threshold multiplier (ignored by naive strategies).
    buffer_fraction:
        Hybrid-only: fraction of entities kept in the hot buffer.
    """

    def __init__(
        self,
        database: Database,
        registry: FeatureFunctionRegistry | None = None,
        architecture: str = "mainmemory",
        strategy: str = "hazy",
        approach: str = "eager",
        alpha: float = 1.0,
        buffer_fraction: float = 0.01,
        trainer_factory: Callable[[str], SGDTrainer] | None = None,
    ):
        if architecture not in ARCHITECTURES:
            raise ConfigurationError(f"architecture must be one of {ARCHITECTURES}")
        if strategy not in STRATEGIES:
            raise ConfigurationError(f"strategy must be one of {STRATEGIES}")
        if approach not in APPROACHES:
            raise ConfigurationError(f"approach must be one of {APPROACHES}")
        self.database = database
        self.registry = registry if registry is not None else default_registry()
        self.architecture = architecture
        self.strategy = strategy
        self.approach = approach
        self.alpha = alpha
        self.buffer_fraction = buffer_fraction
        self._trainer_factory = trainer_factory
        self.views: dict[str, ClassificationView] = {}
        database.executor.set_classification_view_handler(self._handle_create_statement)
        database.executor.set_serving_handler(self._handle_serving_statement)
        # SELECTs against classification views need no reader hook: the
        # planner resolves the view object through the catalog and its plan
        # nodes read the maintainer or the ViewServer directly.
        # Replace the database's placeholder system.served_views producer with
        # one that can actually see this engine's serving registry.
        database.catalog.register_system_table("system.served_views", self._served_views_rows)

    # -- factories ----------------------------------------------------------------------------

    def _build_store(self, feature_norm_q: float, pool: BufferPool | None = None) -> EntityStore:
        """Build an entity store; ``pool`` overrides the database's buffer pool."""
        if self.architecture == "mainmemory":
            return InMemoryEntityStore(feature_norm_q=feature_norm_q)
        pool = pool if pool is not None else self.database.pool
        if self.architecture == "ondisk":
            return OnDiskEntityStore(pool=pool, feature_norm_q=feature_norm_q)
        return HybridEntityStore(
            pool=pool,
            feature_norm_q=feature_norm_q,
            buffer_fraction=self.buffer_fraction,
        )

    def _build_maintainer(self, store: EntityStore) -> ViewMaintainer:
        if self.strategy == "naive":
            if self.approach == "eager":
                return NaiveEagerMaintainer(store)
            return NaiveLazyMaintainer(store)
        if self.approach == "eager":
            return HazyEagerMaintainer(store, alpha=self.alpha)
        return HazyLazyMaintainer(store, alpha=self.alpha)

    def _build_trainer(self, definition: ClassificationViewDefinition) -> SGDTrainer:
        loss = definition.loss_name() or "svm"
        if self._trainer_factory is not None:
            return self._trainer_factory(loss)
        return SGDTrainer(loss=loss)

    # -- view management ---------------------------------------------------------------------------

    def create_view(
        self,
        definition: ClassificationViewDefinition,
        positive_label: object | None = None,
    ) -> ClassificationView:
        """Create and register a classification view from its definition."""
        if definition.view_name.lower() in self.views:
            raise ViewDefinitionError(f"view {definition.view_name!r} already exists")
        feature_function = self.registry.create(definition.feature_function)
        store = self._build_store(feature_function.norm_q)
        maintainer = self._build_maintainer(store)
        trainer = self._build_trainer(definition)
        view = ClassificationView(
            definition=definition,
            database=self.database,
            feature_function=feature_function,
            maintainer=maintainer,
            trainer=trainer,
            positive_label=positive_label,
        )
        self.views[definition.view_name.lower()] = view
        self.database.catalog.register_classification_view(definition.view_name, view)
        return view

    def view(self, name: str) -> ClassificationView:
        """Look up a registered view by name."""
        view = self.views.get(name.lower())
        if view is None:
            raise ViewDefinitionError(f"no classification view named {name!r}")
        return view

    def serve(
        self,
        name: str,
        num_shards: int | None = None,
        restore_from: str | None = None,
        **server_options,
    ):
        """Put a view behind a concurrent :class:`~repro.serve.server.ViewServer`.

        The server shards the view's entity space across ``num_shards`` worker
        threads (each shard runs this engine's architecture/strategy/approach),
        batches concurrent reads, and maintains the view from a background
        pipeline; the view's SQL triggers are diverted into the server's write
        queue until ``server.close()`` hands the view back consistent.

        With ``restore_from`` the server **warm-starts** from a checkpoint
        directory written by
        :meth:`~repro.serve.server.ViewServer.checkpoint`:
        the view itself is rebuilt from the snapshot (it must not have been
        created in this engine yet), shard stores are imported instead of
        bulk-loaded, and only the base-table churn that happened *after* the
        checkpoint is featurized and replayed — restart cost is the snapshot
        read plus the delta, not a full load.  On restore the snapshot's
        shard assignment is preserved; passing a ``num_shards`` that
        disagrees with it raises
        :class:`~repro.exceptions.ConfigurationError`.
        """
        # Composition-root seam: Engine.serve() constructs the layer above
        # it; the import stays lazy so `import repro.core` never pulls serve.
        from repro.serve.server import ViewServer  # repro: noqa(LAY001)

        if restore_from is not None:
            if num_shards is not None:
                server_options["num_shards"] = num_shards
            return self._serve_restored(name, restore_from, **server_options)
        if num_shards is None:
            num_shards = 4
        view = self.view(name)
        if view._server is not None:
            raise ViewDefinitionError(f"view {name!r} is already being served")
        feature_norm_q = view.feature_function.norm_q

        def store_factory() -> EntityStore:
            # Each shard gets a private pool so shard workers never contend
            # on page latches (the database's pool keeps serving the tables).
            pool = None
            if self.architecture != "mainmemory":
                pool = BufferPool(self.database.cost_model, None, IOStatistics())
            return self._build_store(feature_norm_q, pool=pool)

        _, model = view.model_snapshot()
        server = ViewServer(
            entities=view.entity_snapshot(),
            model=model,
            trainer=view.trainer,
            store_factory=store_factory,
            maintainer_factory=self._build_maintainer,
            feature_function=view.feature_function,
            label_to_binary=view.to_binary_label,
            entities_key=view.definition.entities_key,
            examples_key=view.definition.examples_key,
            examples_label=view.definition.examples_label,
            initial_examples=list(view._examples),
            num_shards=num_shards,
            **server_options,
        )
        server.attach_view(view)
        self._register_serving_metrics(view)
        return server

    # -- declarative serving surface (the SQL front door) -------------------------------------------

    #: ``WITH (...)`` option names accepted by SERVE VIEW / RESTORE VIEW and the
    #: ``ViewServer`` keyword each maps to.
    _INT_SERVER_OPTIONS = {
        "shards": "num_shards",
        "num_shards": "num_shards",
        "max_read_batch": "max_read_batch",
        "queue_capacity": "queue_capacity",
        "max_write_batch": "max_write_batch",
        "cache_capacity": "cache_capacity",
        "epoch_history": "epoch_history",
    }
    _FLOAT_SERVER_OPTIONS = {
        "max_wait_s": "read_batch_wait_s",
        "read_batch_wait_s": "read_batch_wait_s",
    }
    _STR_SERVER_OPTIONS = {
        "wal": "wal_dir",
        "wal_dir": "wal_dir",
    }

    def _server_options(self, options: Mapping[str, object]) -> dict[str, object]:
        """Map declarative ``WITH`` options onto ``ViewServer`` keyword arguments."""
        mapped: dict[str, object] = {}
        adaptive = False
        for name, value in options.items():
            key = name.lower()
            if key in self._INT_SERVER_OPTIONS:
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ConfigurationError(f"option {name!r} expects an integer, got {value!r}")
                mapped[self._INT_SERVER_OPTIONS[key]] = value
            elif key in self._FLOAT_SERVER_OPTIONS:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ConfigurationError(f"option {name!r} expects a number, got {value!r}")
                mapped[self._FLOAT_SERVER_OPTIONS[key]] = float(value)
            elif key in self._STR_SERVER_OPTIONS:
                if not isinstance(value, str):
                    raise ConfigurationError(f"option {name!r} expects a string, got {value!r}")
                mapped[self._STR_SERVER_OPTIONS[key]] = value
            elif key == "adaptive_batching":
                if not isinstance(value, bool):
                    raise ConfigurationError(
                        f"option {name!r} expects true or false, got {value!r}"
                    )
                if value:
                    adaptive = True
            else:
                known = sorted(
                    {
                        *self._INT_SERVER_OPTIONS,
                        *self._FLOAT_SERVER_OPTIONS,
                        *self._STR_SERVER_OPTIONS,
                        "adaptive_batching",
                    }
                )
                raise ConfigurationError(f"unknown serving option {name!r}; known: {known}")
        if adaptive:
            if "read_batch_wait_s" in mapped:
                raise ConfigurationError(
                    "adaptive_batching derives the batching window itself; "
                    "it cannot be combined with max_wait_s"
                )
            mapped["read_batch_wait_s"] = "adaptive"
        return mapped

    def serve_view(self, name: str, options: Mapping[str, object] | None = None):
        """``SERVE VIEW name WITH (...)``: start serving with declarative options."""
        return self.serve(name, **self._server_options(options or {}))

    def stop_serving(self, name: str) -> ClassificationView:
        """``STOP SERVING name``: quiesce the server, hand the view back consistent."""
        view = self.view(name)
        server = view.server
        if server is None:
            raise ViewDefinitionError(f"view {name!r} is not being served")
        server.close()
        self.database.obs.registry.remove_provider(f"serve.{view.name}")
        return view

    def checkpoint_view(
        self, name: str, path: str, options: Mapping[str, object] | None = None
    ) -> dict[str, object]:
        """``CHECKPOINT VIEW name TO path [WITH (...)]``: consistent snapshot of a served view.

        Options: ``incremental`` (bool — rewrite only shards whose epoch
        moved since the parent) and ``parent`` (string path; defaults to the
        server's last checkpoint when incremental).
        """
        view = self.view(name)
        server = view.server
        if server is None:
            raise ViewDefinitionError(
                f"view {name!r} is not being served; SERVE VIEW it before CHECKPOINT"
            )
        incremental = False
        parent = None
        for option, value in (options or {}).items():
            key = option.lower()
            if key == "incremental":
                if not isinstance(value, bool):
                    raise ConfigurationError(
                        f"option {option!r} expects true or false, got {value!r}"
                    )
                incremental = value
            elif key == "parent":
                if not isinstance(value, str):
                    raise ConfigurationError(
                        f"option {option!r} expects a string path, got {value!r}"
                    )
                parent = value
            else:
                raise ConfigurationError(
                    f"unknown checkpoint option {option!r}; known: ['incremental', 'parent']"
                )
        if parent is not None and not incremental:
            raise ConfigurationError(
                "checkpoint option 'parent' requires incremental = true"
            )
        return server.checkpoint(path, incremental=incremental, parent=parent)

    def restore_view(self, name: str, path: str, options: Mapping[str, object] | None = None):
        """``RESTORE VIEW name FROM path``: warm-start serving from a checkpoint.

        A ``shards =`` option that disagrees with the snapshot's shard count
        is a :class:`~repro.exceptions.ConfigurationError` — shard assignment
        always comes from the snapshot.
        """
        mapped = self._server_options(options or {})
        return self.serve(name, restore_from=path, **mapped)

    def served_views(self) -> list[ClassificationView]:
        """Every view currently behind a server (lifecycle management)."""
        return [view for view in self.views.values() if view.server is not None]

    def _served_views_rows(self) -> list[dict[str, object]]:
        """``system.served_views`` producer: one dashboard row per live server."""
        rows: list[dict[str, object]] = []
        for view in self.served_views():
            server = view.server
            stats = server.stats()
            rows.append(
                {
                    "view": view.name,
                    "epoch": stats["epoch"],
                    "entities": stats["entities"],
                    "num_shards": stats["num_shards"],
                    "epochs_published_total": stats["epochs_published_total"],
                    "trigger_diverts_total": stats["trigger_diverts_total"],
                    "queue_backlog": stats["maintenance"]["backlog"],
                    "batcher_requests_total": stats["batcher"]["requests_total"],
                    "batcher_avg_batch": stats["batcher"]["avg_batch"],
                    "cache_hits_total": stats["cache"]["hits_total"],
                    "simulated_seconds_total": stats["simulated_seconds"],
                }
            )
        return rows

    def _register_serving_metrics(self, view: ClassificationView) -> None:
        """Expose a live server's counters under ``serve.<view>.*`` in the registry.

        The provider closes over the *view*, not the server: once serving
        stops it reports nothing instead of poking a shut-down shard set.
        """

        def provider() -> dict[str, float]:
            server = view.server
            return server.metrics() if server is not None else {}

        self.database.obs.registry.provider(f"serve.{view.name}", provider)

    def _handle_serving_statement(self, statement: Statement) -> ResultSet:
        """Executor hook: run one serving lifecycle statement, return its result row."""
        if isinstance(statement, ServeView):
            server = self.serve_view(statement.view, statement.options)
            row = {
                "view": self.view(statement.view).name,
                "status": "serving",
                "shards": len(server.shards),
                "epoch": server.epoch,
            }
            return ResultSet(rows=[row], rowcount=1, statement_type="SERVE VIEW")
        if isinstance(statement, StopServing):
            view = self.stop_serving(statement.view)
            return ResultSet(
                rows=[{"view": view.name, "status": "stopped"}],
                rowcount=1,
                statement_type="STOP SERVING",
            )
        if isinstance(statement, CheckpointView):
            info = self.checkpoint_view(statement.view, statement.path, statement.options)
            row = {"view": self.view(statement.view).name, **info}
            return ResultSet(rows=[row], rowcount=1, statement_type="CHECKPOINT VIEW")
        if isinstance(statement, RestoreView):
            from repro.persist.checkpoint import describe_checkpoint

            server = self.restore_view(statement.view, statement.path, statement.options)
            summary = describe_checkpoint(statement.path)
            row = {
                "view": self.view(statement.view).name,
                "status": "serving",
                "restored_from": statement.path,
                "shards": len(server.shards),
                "epoch": server.epoch,
                "checkpoint_epoch": summary["epoch"],
                "examples": summary["examples"],
            }
            return ResultSet(rows=[row], rowcount=1, statement_type="RESTORE VIEW")
        raise ConfigurationError(
            f"unsupported serving statement {type(statement).__name__}"
        )  # pragma: no cover - executor routes only the four statements

    # -- warm restart -------------------------------------------------------------------------------

    def _serve_restored(self, name: str, path: str, **server_options):
        """The ``serve(restore_from=...)`` path: rebuild view + server from a checkpoint."""
        from repro.persist.checkpoint import load_checkpoint
        # Composition-root seam: Engine.serve() constructs the layer above
        # it; the import stays lazy so `import repro.core` never pulls serve.
        from repro.serve.server import ViewServer  # repro: noqa(LAY001)

        checkpoint = load_checkpoint(path)
        manifest = checkpoint.manifest
        if manifest.definition is None or manifest.view_name is None:
            raise SnapshotMismatchError(
                f"checkpoint {path} was written from a standalone server; "
                "it cannot restore an engine view"
            )
        if manifest.view_name.lower() != name.lower():
            raise SnapshotMismatchError(
                f"checkpoint {path} holds view {manifest.view_name!r}, not {name!r}"
            )
        if name.lower() in self.views:
            raise ViewDefinitionError(
                f"view {name!r} already exists; warm restart replaces the cold "
                "CREATE CLASSIFICATION VIEW, not a live view"
            )
        for attribute in ("architecture", "strategy", "approach"):
            recorded = getattr(manifest, attribute)
            configured = getattr(self, attribute)
            if recorded is not None and recorded != configured:
                raise SnapshotMismatchError(
                    f"checkpoint {path} was written under {attribute}={recorded!r}; "
                    f"this engine is configured with {configured!r}"
                )
        definition = ClassificationViewDefinition(**manifest.definition)
        feature_function = checkpoint.feature_function
        if feature_function is None:
            # Degenerate checkpoint without a pickled feature function: build a
            # fresh one and pay a stats pass over the entities table.
            feature_function = self.registry.create(definition.feature_function)
            feature_function.compute_stats(self.database.table(definition.entities_table).scan())
        trainer = self._build_trainer(definition)
        direct_maintainer = self._build_maintainer(self._build_store(feature_function.norm_q))
        view = ClassificationView.restore(
            definition=definition,
            database=self.database,
            feature_function=feature_function,
            maintainer=direct_maintainer,
            trainer=trainer,
            positive_label=manifest.positive_label,
            examples=list(manifest.examples),
        )

        feature_norm_q = feature_function.norm_q

        def store_factory() -> EntityStore:
            pool = None
            if self.architecture != "mainmemory":
                pool = BufferPool(self.database.cost_model, None, IOStatistics())
            return self._build_store(feature_norm_q, pool=pool)

        # Register nothing until the server is fully built and the replay has
        # converged: a failure anywhere below must leave the engine exactly as
        # it was (no half-alive view with triggers wired to an unloaded
        # maintainer poisoning every subsequent insert and retry).
        key = definition.view_name.lower()
        server = None
        try:
            server = ViewServer.restore(
                checkpoint,
                trainer=trainer,
                store_factory=store_factory,
                maintainer_factory=self._build_maintainer,
                feature_function=feature_function,
                label_to_binary=view.to_binary_label,
                entities_key=definition.entities_key,
                examples_key=definition.examples_key,
                examples_label=definition.examples_label,
                **server_options,
            )
            self.views[key] = view
            self.database.catalog.register_classification_view(definition.view_name, view)
            server.attach_view(view)
            self._register_serving_metrics(view)
            self._replay_post_checkpoint(view, server, checkpoint)
        except BaseException:
            self.views.pop(key, None)
            self.database.catalog.unregister_classification_view(definition.view_name)
            view._detach_triggers()
            view._server = None
            if server is not None:
                # Skip the hand-back resync (the view was never live); close()
                # still clears the diverted dispatchers and stops the workers.
                server._view = None
                try:
                    server.close(timeout=10)
                except Exception:
                    pass
            raise
        return server

    def _replay_post_checkpoint(self, view: ClassificationView, server, checkpoint) -> None:
        """Replay everything that happened after the checkpoint cut, in two passes.

        **Pass 1 — the WAL** (when the restored server has one): every logged
        op above the manifest's ``wal_applied_seq`` re-enters the maintenance
        queue in its original arrival order.  Order is the point: SGD takes
        one gradient step per training example, so the recovered model — not
        just the answer set — matches the pre-crash server exactly.

        **Pass 2 — the base-table diff**: churn the WAL did not capture
        (writes issued while no server was attached, or with no WAL
        configured).  New entity rows, vanished entities, and example-table
        churn go through the ordinary pipeline; existing rows whose stored
        content hash no longer matches the base table are re-featurized as
        updates — the fix for the warm-restart staleness bug where a
        content-only UPDATE between checkpoint and restore silently kept the
        stale features.  Snapshots without stored hashes (standalone-written
        or pre-hash) keep the old insert/delete-only contract.
        """
        from collections import Counter

        from repro.persist.snapshot import row_content_hash
        # Composition-root seam: Engine.serve() constructs the layer above
        # it; the import stays lazy so `import repro.core` never pulls serve.
        from repro.serve.requests import WriteKind, WriteOp  # repro: noqa(LAY001)

        definition = view.definition
        entities_table = self.database.table(definition.entities_table)
        examples_table = self.database.table(definition.examples_table)
        snapshot_ids = set(checkpoint.entity_ids)
        hashes: dict[object, str] = {}
        for state in checkpoint.shard_states:
            for entity_id, digest in state.row_hashes or ():
                hashes[entity_id] = digest
        retained = Counter(
            (example.entity_id, example.label) for example in checkpoint.manifest.examples
        )

        # ---- Pass 1: WAL replay (bookkeeping keeps pass 2 from double-applying)
        if server.wal is not None:
            for record in server.wal.records_after(checkpoint.manifest.wal_applied_seq):
                kind = WriteKind(record.kind)
                server.worker.enqueue(
                    WriteOp(
                        kind=kind,
                        row=record.row,
                        old_row=record.old_row,
                        wal_seq=record.seq,
                    )
                )
                if kind in (WriteKind.ENTITY_INSERT, WriteKind.ENTITY_UPDATE):
                    entity_id = record.row[definition.entities_key]
                    snapshot_ids.add(entity_id)
                    hashes[entity_id] = row_content_hash(record.row)
                elif kind is WriteKind.ENTITY_DELETE:
                    entity_id = record.old_row[definition.entities_key]
                    snapshot_ids.discard(entity_id)
                    hashes.pop(entity_id, None)
                elif kind in (WriteKind.EXAMPLE_INSERT, WriteKind.EXAMPLE_UPDATE):
                    if kind is WriteKind.EXAMPLE_UPDATE:
                        retained[
                            (
                                record.old_row[definition.examples_key],
                                view.to_binary_label(
                                    record.old_row[definition.examples_label]
                                ),
                            )
                        ] -= 1
                    retained[
                        (
                            record.row[definition.examples_key],
                            view.to_binary_label(record.row[definition.examples_label]),
                        )
                    ] += 1
                elif kind is WriteKind.EXAMPLE_DELETE:
                    retained[
                        (
                            record.old_row[definition.examples_key],
                            view.to_binary_label(record.old_row[definition.examples_label]),
                        )
                    ] -= 1

        # ---- Pass 2: diff the (post-WAL) expected state against the base tables
        live_ids: set[object] = set()
        for row in entities_table.scan():
            entity_id = row[definition.entities_key]
            live_ids.add(entity_id)
            if entity_id not in snapshot_ids:
                server.worker.enqueue(WriteOp(kind=WriteKind.ENTITY_INSERT, row=dict(row)))
                continue
            stored = hashes.get(entity_id)
            if stored is not None and stored != row_content_hash(row):
                server.worker.enqueue(
                    WriteOp(
                        kind=WriteKind.ENTITY_UPDATE,
                        row=dict(row),
                        old_row={definition.entities_key: entity_id},
                    )
                )
        for entity_id in snapshot_ids - live_ids:
            server.worker.enqueue(
                WriteOp(
                    kind=WriteKind.ENTITY_DELETE,
                    old_row={definition.entities_key: entity_id},
                )
            )
        for row in examples_table.scan():
            key = (
                row[definition.examples_key],
                view.to_binary_label(row[definition.examples_label]),
            )
            if retained[key] > 0:
                retained[key] -= 1
            else:
                server.worker.enqueue(WriteOp(kind=WriteKind.EXAMPLE_INSERT, row=dict(row)))
        for (entity_id, label), count in retained.items():
            for _ in range(count):
                server.worker.enqueue(
                    WriteOp(
                        kind=WriteKind.EXAMPLE_DELETE,
                        old_row={
                            definition.examples_key: entity_id,
                            definition.examples_label: label,
                        },
                    )
                )
        server.flush()

    # -- SQL integration ------------------------------------------------------------------------------

    def _handle_create_statement(self, statement: CreateClassificationView) -> None:
        definition = ClassificationViewDefinition(
            view_name=statement.view_name,
            view_key=statement.view_key,
            entities_table=statement.entities_table,
            entities_key=statement.entities_key,
            examples_table=statement.examples_table,
            examples_key=statement.examples_key,
            examples_label=statement.examples_label,
            feature_function=statement.feature_function,
            labels_table=statement.labels_table,
            labels_column=statement.labels_column,
            method=statement.method,
            options=dict(statement.options),
        )
        self.create_view(definition)
