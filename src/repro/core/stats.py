"""Runtime statistics for view maintenance.

Every maintainer records what it did — rounds, reorganizations, tuples
reclassified, band sizes, and simulated cost — so that benchmarks can report
the quantities behind the paper's figures (e.g. the Figure 13 band-size curve
is exactly ``band_size_history``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MaintenanceStatistics"]


@dataclass
class MaintenanceStatistics:
    """Counters accumulated by a classification-view maintainer."""

    updates: int = 0
    reorganizations: int = 0
    tuples_reclassified: int = 0
    labels_changed: int = 0
    single_reads: int = 0
    batched_reads: int = 0
    batch_rounds: int = 0
    all_member_reads: int = 0
    range_reads: int = 0
    tuples_scanned_for_reads: int = 0
    epsmap_hits: int = 0
    buffer_hits: int = 0
    disk_lookups: int = 0
    simulated_update_seconds: float = 0.0
    simulated_read_seconds: float = 0.0
    simulated_reorganization_seconds: float = 0.0
    band_size_history: list[int] = field(default_factory=list)
    band_width_history: list[float] = field(default_factory=list)

    # -- recording -----------------------------------------------------------------

    def record_update(self, tuples_reclassified: int, labels_changed: int, cost: float) -> None:
        """One Update round: reclassified ``tuples_reclassified`` tuples at ``cost`` seconds."""
        self.updates += 1
        self.tuples_reclassified += tuples_reclassified
        self.labels_changed += labels_changed
        self.simulated_update_seconds += cost

    def record_reorganization(self, cost: float) -> None:
        """One reorganization at ``cost`` simulated seconds."""
        self.reorganizations += 1
        self.simulated_reorganization_seconds += cost

    def record_band(self, size: int, width: float) -> None:
        """Record the number of tuples (and eps width) inside the current water band."""
        self.band_size_history.append(size)
        self.band_width_history.append(width)

    def record_single_read(self, cost: float = 0.0) -> None:
        """One Single Entity read."""
        self.single_reads += 1
        self.simulated_read_seconds += cost

    def record_batched_read(self, count: int, cost: float = 0.0) -> None:
        """One coalesced batch of ``count`` Single Entity reads."""
        self.single_reads += count
        self.batched_reads += count
        self.batch_rounds += 1
        self.simulated_read_seconds += cost

    def record_all_members(self, tuples_scanned: int, cost: float = 0.0) -> None:
        """One All Members read that touched ``tuples_scanned`` tuples."""
        self.all_member_reads += 1
        self.tuples_scanned_for_reads += tuples_scanned
        self.simulated_read_seconds += cost

    def record_range_read(self, tuples_scanned: int, cost: float = 0.0) -> None:
        """One pushed-down key-range read that touched ``tuples_scanned`` tuples."""
        self.range_reads += 1
        self.tuples_scanned_for_reads += tuples_scanned
        self.simulated_read_seconds += cost

    # -- derived ----------------------------------------------------------------------

    def average_band_size(self) -> float:
        """Mean number of tuples in the water band across recorded rounds."""
        if not self.band_size_history:
            return 0.0
        return sum(self.band_size_history) / len(self.band_size_history)

    def total_simulated_seconds(self) -> float:
        """Total simulated time across updates, reads and reorganizations."""
        return (
            self.simulated_update_seconds
            + self.simulated_read_seconds
            + self.simulated_reorganization_seconds
        )

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary for reporting (band histories summarized)."""
        return {
            "updates": self.updates,
            "reorganizations": self.reorganizations,
            "tuples_reclassified": self.tuples_reclassified,
            "labels_changed": self.labels_changed,
            "single_reads": self.single_reads,
            "batched_reads": self.batched_reads,
            "batch_rounds": self.batch_rounds,
            "all_member_reads": self.all_member_reads,
            "range_reads": self.range_reads,
            "tuples_scanned_for_reads": self.tuples_scanned_for_reads,
            "epsmap_hits": self.epsmap_hits,
            "buffer_hits": self.buffer_hits,
            "disk_lookups": self.disk_lookups,
            "simulated_update_seconds": self.simulated_update_seconds,
            "simulated_read_seconds": self.simulated_read_seconds,
            "simulated_reorganization_seconds": self.simulated_reorganization_seconds,
            "average_band_size": self.average_band_size(),
        }
