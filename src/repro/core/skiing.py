"""The Skiing reorganization strategy and its offline-optimal comparator.

The strategy (paper §3.2.1, Figure 7) is a ski-rental style rule:

* maintain an accumulated cost ``a`` (the "waste" since the last
  reorganization), initially 0;
* at each round, if ``a >= alpha * S`` (where ``S`` is the measured cost of a
  reorganization), reorganize and reset ``a``; otherwise take the incremental
  step, measure its cost ``c(i)``, and set ``a += c(i)``.

Lemma 3.2 shows the competitive ratio is ``1 + alpha + sigma`` where ``sigma*S``
is the time to scan the table, that this is optimal among deterministic online
strategies, and that as the data grows (``sigma -> 0``, ``alpha -> 1``) the ratio
tends to 2 (Theorem 3.3).  :class:`OfflineOptimalScheduler` computes the true
optimum by dynamic programming so tests and benchmarks can measure the ratio.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = ["SkiingDecision", "SkiingStrategy", "OfflineOptimalScheduler", "optimal_alpha"]


def optimal_alpha(sigma: float) -> float:
    """The alpha of Lemma 3.2: the positive root of ``x^2 + sigma*x - 1``."""
    if sigma < 0:
        raise ConfigurationError("sigma must be >= 0")
    return (-sigma + math.sqrt(sigma * sigma + 4.0)) / 2.0


@dataclass(frozen=True)
class SkiingDecision:
    """The outcome of one round: whether to reorganize, and the bookkeeping values."""

    reorganize: bool
    accumulated_cost: float
    threshold: float


@dataclass
class SkiingStrategy:
    """The online reorganization rule.

    Parameters
    ----------
    alpha:
        The threshold multiplier; the paper uses ``alpha = 1`` for all
        experiments (and tuning it buys ~10%, per Appendix C.2).
    reorganization_cost:
        The current estimate of ``S`` in (simulated) seconds.  It is updated
        by :meth:`record_reorganization` each time the data is actually
        reorganized, exactly as Hazy sets ``S`` to the measured time.
    """

    alpha: float = 1.0
    reorganization_cost: float = 0.0
    accumulated_cost: float = 0.0
    rounds: int = 0
    reorganizations: int = 0
    incremental_cost_total: float = 0.0
    history: list[SkiingDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigurationError("alpha must be >= 0")
        if self.reorganization_cost < 0:
            raise ConfigurationError("reorganization cost must be >= 0")

    # -- the strategy ------------------------------------------------------------------

    def should_reorganize(self) -> bool:
        """Choice (2) of the paper: reorganize when ``a >= alpha * S``.

        When no reorganization cost has been measured yet (``S == 0``) the
        strategy reorganizes whenever any waste has accumulated, which matches
        Hazy's behaviour of reorganizing eagerly while the table is tiny.
        """
        return self.accumulated_cost >= self.alpha * self.reorganization_cost

    def record_incremental_step(self, cost: float) -> SkiingDecision:
        """Account the measured cost ``c(i)`` of an incremental step."""
        if cost < 0:
            raise ConfigurationError("incremental cost must be >= 0")
        self.rounds += 1
        self.accumulated_cost += cost
        self.incremental_cost_total += cost
        decision = SkiingDecision(
            reorganize=False,
            accumulated_cost=self.accumulated_cost,
            threshold=self.alpha * self.reorganization_cost,
        )
        self.history.append(decision)
        return decision

    def record_reorganization(self, measured_cost: float) -> SkiingDecision:
        """Account an actual reorganization: update ``S`` and reset the waste."""
        if measured_cost < 0:
            raise ConfigurationError("reorganization cost must be >= 0")
        self.rounds += 1
        self.reorganizations += 1
        self.reorganization_cost = measured_cost
        self.accumulated_cost = 0.0
        decision = SkiingDecision(
            reorganize=True,
            accumulated_cost=0.0,
            threshold=self.alpha * self.reorganization_cost,
        )
        self.history.append(decision)
        return decision

    def record_lazy_waste(self, tuples_read: int, members: int, scan_cost: float) -> float:
        """The lazy-approach waste model of §3.4.

        An All Members read touched ``tuples_read`` tuples of which only
        ``members`` were actually in the class; the wasted fraction of the
        ``scan_cost`` seconds is charged as this round's ``c(i)``.
        Returns the charged cost.
        """
        if tuples_read <= 0:
            return 0.0
        waste = (tuples_read - members) / tuples_read * scan_cost
        self.record_incremental_step(waste)
        return waste

    def total_cost(self) -> float:
        """Total cost paid so far: incremental steps plus reorganizations."""
        # Each reorganization paid the then-current S; approximate with the
        # last measured cost, which is exact when S is stable.
        return self.incremental_cost_total + self.reorganizations * self.reorganization_cost


class OfflineOptimalScheduler:
    """Computes the best possible reorganization schedule for a known cost trace.

    The input is the matrix of incremental costs ``c(s, i)`` — the cost paid at
    round ``i`` if the last reorganization happened at round ``s <= i`` — plus
    the reorganization cost ``S``.  ``solve`` runs an O(N^2) dynamic program:
    ``best[i]`` is the minimum total cost of handling rounds ``1..i`` given
    that a reorganization happens at round ``i``.
    """

    def __init__(self, reorganization_cost: float):
        if reorganization_cost < 0:
            raise ConfigurationError("reorganization cost must be >= 0")
        self.reorganization_cost = reorganization_cost

    def solve(self, cost: Callable[[int, int], float], rounds: int) -> tuple[float, list[int]]:
        """Return ``(optimal_total_cost, reorganization_rounds)``.

        ``cost(s, i)`` must be defined for ``0 <= s <= i <= rounds``; round 0
        is the initial organization (free).  The optimum may also choose to
        never reorganize.
        """
        if rounds < 0:
            raise ConfigurationError("rounds must be >= 0")
        S = self.reorganization_cost

        # best_at[s] = minimal cost of all rounds 1..s assuming we reorganize at
        # round s (paying S at s), for s >= 1; plus the option s = 0 (no reorg yet).
        def segment_cost(s: int, start: int, end: int) -> float:
            return sum(cost(s, i) for i in range(start, end + 1))

        best_at: dict[int, tuple[float, list[int]]] = {0: (0.0, [])}
        for s in range(1, rounds + 1):
            candidates: list[tuple[float, list[int]]] = []
            for previous, (previous_cost, schedule) in best_at.items():
                between = segment_cost(previous, previous + 1, s - 1)
                candidates.append((previous_cost + between + S, schedule + [s]))
            best_at[s] = min(candidates, key=lambda pair: pair[0])

        final_candidates: list[tuple[float, list[int]]] = []
        for s, (cost_so_far, schedule) in best_at.items():
            tail = segment_cost(s, s + 1, rounds)
            final_candidates.append((cost_so_far + tail, schedule))
        return min(final_candidates, key=lambda pair: pair[0])

    def solve_from_matrix(self, costs: Sequence[Sequence[float]]) -> tuple[float, list[int]]:
        """Convenience wrapper: ``costs[s][i]`` = cost at round ``i`` given last reorg at ``s``."""
        rounds = len(costs[0]) - 1 if costs else 0
        return self.solve(lambda s, i: costs[s][i], rounds)


def simulate_skiing_on_trace(
    cost: Callable[[int, int], float],
    rounds: int,
    reorganization_cost: float,
    alpha: float = 1.0,
) -> tuple[float, list[int]]:
    """Run the Skiing rule over a known cost trace; returns (total cost, reorg rounds).

    Used by tests and the ablation benchmark to measure the empirical
    competitive ratio against :class:`OfflineOptimalScheduler`.
    """
    strategy = SkiingStrategy(alpha=alpha, reorganization_cost=reorganization_cost)
    last_reorganization = 0
    reorganization_rounds: list[int] = []
    total = 0.0
    for i in range(1, rounds + 1):
        if strategy.should_reorganize():
            total += reorganization_cost
            strategy.record_reorganization(reorganization_cost)
            last_reorganization = i
            reorganization_rounds.append(i)
        else:
            step_cost = cost(last_reorganization, i)
            total += step_cost
            strategy.record_incremental_step(step_cost)
    return total, reorganization_rounds
