"""Classification view definitions and semantics (paper §2.1).

A classification view ``V(id, class)`` is defined by a pair ``(In, T)``:
``In(id, f)`` gives every entity and its feature vector, ``T(id, l)`` the
training examples.  A model ``(w, b)`` trained from ``T`` defines the view's
contents as ``{(id, sign(w·f - b))}``.  :func:`view_contents` implements that
semantics directly (the oracle the incremental strategies are tested against);
:class:`ClassificationViewDefinition` carries the declarative pieces parsed
from ``CREATE CLASSIFICATION VIEW``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.exceptions import ViewDefinitionError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector

__all__ = ["ClassificationViewDefinition", "view_contents"]

#: Methods the ``USING`` clause may name, mapped to loss names of repro.learn.
SUPPORTED_METHODS = {
    "svm": "svm",
    "logistic": "logistic",
    "logistic_regression": "logistic",
    "ridge": "ridge",
    "ridge_regression": "ridge",
    "least_squares": "ridge",
}


@dataclass(frozen=True)
class ClassificationViewDefinition:
    """The declarative definition of one classification view.

    Mirrors the clauses of the ``CREATE CLASSIFICATION VIEW`` statement
    (Example 2.1): where the entities live, where the training examples live,
    which feature function translates tuples to vectors, and (optionally)
    which classification method to use.
    """

    view_name: str
    entities_table: str
    entities_key: str
    examples_table: str
    examples_key: str
    examples_label: str
    feature_function: str
    view_key: str = "id"
    labels_table: str | None = None
    labels_column: str | None = None
    method: str | None = None
    options: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.view_name:
            raise ViewDefinitionError("classification view needs a name")
        if not self.entities_table or not self.entities_key:
            raise ViewDefinitionError(
                f"view {self.view_name!r}: ENTITIES FROM <table> KEY <column> is required"
            )
        if not self.examples_table or not self.examples_key or not self.examples_label:
            raise ViewDefinitionError(
                f"view {self.view_name!r}: EXAMPLES FROM <table> KEY <col> LABEL <col> is required"
            )
        if not self.feature_function:
            raise ViewDefinitionError(f"view {self.view_name!r}: FEATURE FUNCTION is required")
        if self.method is not None and self.method.lower() not in SUPPORTED_METHODS:
            raise ViewDefinitionError(
                f"view {self.view_name!r}: unsupported method {self.method!r}; "
                f"supported: {sorted(SUPPORTED_METHODS)}"
            )

    def loss_name(self) -> str | None:
        """The loss-function name implied by the ``USING`` clause (None = auto)."""
        if self.method is None:
            return None
        return SUPPORTED_METHODS[self.method.lower()]


def view_contents(
    entities: Iterable[tuple[object, SparseVector]], model: LinearModel
) -> dict[object, int]:
    """The declarative semantics of a classification view.

    Returns ``{entity_id: sign(w·f - b)}`` for every entity.  This is the
    ground truth every maintenance strategy must agree with — the consistency
    property tests compare maintainer output against this function.
    """
    return {entity_id: model.predict(features) for entity_id, features in entities}
