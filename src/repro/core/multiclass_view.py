"""Multiclass classification views via one-versus-all (Appendix B.5.4, Figure 12B).

A multiclass view is a set of binary classification views, one per label, each
maintained with the same machinery as the binary case (any architecture and
strategy).  An update feeds the incoming example to every per-label trainer
(positive for its own label, negative for the rest — the sequential
one-versus-all configuration the paper evaluates) and lets each maintainer
absorb the resulting model.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.core.maintainers.base import ViewMaintainer
from repro.core.stores.base import EntityStore
from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector

__all__ = ["MulticlassClassificationView"]


class MulticlassClassificationView:
    """One binary maintained view per label, combined by sequential one-vs-all.

    Parameters
    ----------
    labels:
        The label vocabulary (any hashable values, at least two).
    store_factory / maintainer_factory:
        Callables building a fresh entity store and a maintainer over it, one
        pair per label; this is how the benchmark switches between Naive-MM and
        Hazy-MM while keeping everything else fixed.
    trainer_factory:
        Builds the per-label binary trainer (default: SVM-loss SGD).
    """

    def __init__(
        self,
        labels: Sequence[object],
        store_factory: Callable[[], EntityStore],
        maintainer_factory: Callable[[EntityStore], ViewMaintainer],
        trainer_factory: Callable[[], SGDTrainer] | None = None,
    ):
        labels = list(labels)
        if len(labels) < 2:
            raise ConfigurationError("a multiclass view needs at least 2 labels")
        if len(set(labels)) != len(labels):
            raise ConfigurationError("duplicate labels in the label set")
        trainer_factory = trainer_factory if trainer_factory is not None else SGDTrainer
        self.labels = labels
        self.trainers: dict[object, SGDTrainer] = {}
        self.maintainers: dict[object, ViewMaintainer] = {}
        for label in labels:
            store = store_factory()
            self.trainers[label] = trainer_factory()
            self.maintainers[label] = maintainer_factory(store)
        self._loaded = False
        self._updates = 0

    # -- lifecycle ------------------------------------------------------------------------

    def bulk_load(self, entities: Iterable[tuple[object, SparseVector]]) -> None:
        """Load every entity into every per-label view (initial, untrained models)."""
        materialized = list(entities)
        for label in self.labels:
            self.maintainers[label].bulk_load(materialized, self.trainers[label].model.copy())
        self._loaded = True

    def add_entity(self, entity_id: object, features: SparseVector) -> None:
        """A new entity joins every per-label view."""
        self._require_loaded()
        for label in self.labels:
            self.maintainers[label].add_entity(entity_id, features)

    # -- updates -----------------------------------------------------------------------------

    def absorb_example(self, entity_id: object, features: SparseVector, label: object) -> None:
        """One multiclass training example: +1 for its label's view, -1 for the others."""
        self._require_loaded()
        if label not in self.trainers:
            raise ConfigurationError(f"unknown label {label!r}")
        for candidate in self.labels:
            binary = 1 if candidate == label else -1
            model = self.trainers[candidate].absorb(
                TrainingExample(entity_id=entity_id, features=features, label=binary)
            )
            self.maintainers[candidate].apply_model(model)
        self._updates += 1

    # -- reads --------------------------------------------------------------------------------

    def predict(self, entity_id: object) -> object:
        """Sequential one-vs-all: the first label whose binary view claims the entity.

        Falls back to the largest current-model margin when no binary view
        claims it (or more than one does, which the sequential scheme resolves
        by order anyway).
        """
        self._require_loaded()
        if self._updates == 0:
            raise NotFittedError("multiclass view has absorbed no training examples")
        for label in self.labels:
            if self.maintainers[label].read_single(entity_id) == 1:
                return label
        features = self.maintainers[self.labels[0]].store.get(entity_id).features
        margins = {
            label: self.trainers[label].model.margin(features) for label in self.labels
        }
        return max(margins, key=lambda label: margins[label])

    def members(self, label: object) -> list[object]:
        """All entities assigned to ``label`` by its binary view."""
        self._require_loaded()
        if label not in self.maintainers:
            raise ConfigurationError(f"unknown label {label!r}")
        return self.maintainers[label].read_all_members(1)

    # -- statistics ------------------------------------------------------------------------------

    def total_simulated_update_seconds(self) -> float:
        """Simulated update cost summed over every per-label view."""
        return sum(
            m.stats.simulated_update_seconds + m.stats.simulated_reorganization_seconds
            for m in self.maintainers.values()
        )

    @property
    def updates(self) -> int:
        """Number of multiclass training examples absorbed."""
        return self._updates

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise ConfigurationError("bulk_load must be called before using the view")
