"""Hazy's incremental maintenance strategies (paper §3.2 and §3.4).

Both strategies share the same machinery: a
:class:`~repro.core.bounds.WaterBandTracker` maintaining the cumulative
low/high-water band since the last reorganization, and a
:class:`~repro.core.skiing.SkiingStrategy` deciding when reorganizing the
scratch table is worth its cost.

* The **eager** variant reclassifies only the tuples inside the band on every
  model update, so updates touch a small fraction of the table.
* The **lazy** variant never reclassifies on update; All Members reads scan
  only the tuples that could possibly be in the class (everything above the
  low water for the positive class), and the wasted fraction of each scan is
  the cost fed to the Skiing strategy (§3.4).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.bounds import WaterBandTracker, holder_pair_for_norm
from repro.core.maintainers.base import ViewMaintainer, key_in_range
from repro.core.skiing import SkiingStrategy
from repro.core.stores.base import EntityStore
from repro.exceptions import MaintenanceError
from repro.learn.model import LinearModel, sign
from repro.linalg import SparseVector

__all__ = ["HazyEagerMaintainer", "HazyLazyMaintainer"]


class _HazyMaintainerBase(ViewMaintainer):
    """State shared by the eager and lazy Hazy strategies."""

    strategy_name = "hazy"

    def __init__(self, store: EntityStore, alpha: float = 1.0, holder_p: float | None = None):
        super().__init__(store)
        if holder_p is None:
            holder_p, _ = holder_pair_for_norm(store.feature_norm_q)
        self.holder_p = holder_p
        self.skiing = SkiingStrategy(alpha=alpha)
        self.tracker: WaterBandTracker | None = None

    def _require_tracker(self) -> WaterBandTracker:
        if self.tracker is None:
            raise MaintenanceError("bulk_load must run before maintenance operations")
        return self.tracker

    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> None:
        """Load and cluster under ``model``; the load cost seeds the estimate of S."""
        self.current_model = model.copy()
        load_cost = self.store.bulk_load(entities, model)
        self.tracker = WaterBandTracker(self.holder_p, self.store.max_feature_norm)
        self.tracker.reset(model)
        self.skiing.reorganization_cost = load_cost
        self._loaded = True

    def export_state(self) -> dict[str, object]:
        """Base state plus the water-band tracker and the Skiing accounting."""
        state = super().export_state()
        tracker = self._require_tracker()
        band = tracker.band()
        state["stored_model"] = tracker.stored_model.copy()
        state["band_low"] = band.low
        state["band_high"] = band.high
        state["max_feature_norm"] = tracker.max_feature_norm
        state["skiing"] = {
            "reorganization_cost": self.skiing.reorganization_cost,
            "accumulated_cost": self.skiing.accumulated_cost,
            "rounds": self.skiing.rounds,
            "reorganizations": self.skiing.reorganizations,
            "incremental_cost_total": self.skiing.incremental_cost_total,
        }
        return state

    def import_state(self, state: dict[str, object]) -> None:
        """Restore store + model, then resume the band and Skiing mid-stream.

        The tracker is reset under the snapshot's *stored* model (the one the
        imported eps values were computed against) and the cumulative band is
        restored verbatim, so the first post-restart update continues the
        checkpointed epoch instead of assuming a fresh reorganization.
        """
        super().import_state(state)
        stored_model = state.get("stored_model")
        if stored_model is None:
            raise MaintenanceError("Hazy snapshot is missing its stored model")
        self.tracker = WaterBandTracker(
            self.holder_p, float(state.get("max_feature_norm", self.store.max_feature_norm))
        )
        self.tracker.reset(stored_model)
        self.tracker.restore_band(float(state["band_low"]), float(state["band_high"]))
        skiing_state = state.get("skiing") or {}
        self.skiing.reorganization_cost = float(skiing_state.get("reorganization_cost", 0.0))
        self.skiing.accumulated_cost = float(skiing_state.get("accumulated_cost", 0.0))
        self.skiing.rounds = int(skiing_state.get("rounds", 0))
        self.skiing.reorganizations = int(skiing_state.get("reorganizations", 0))
        self.skiing.incremental_cost_total = float(
            skiing_state.get("incremental_cost_total", 0.0)
        )

    def add_entity(self, entity_id: object, features: SparseVector) -> int:
        """Store a new entity: eps under the *stored* model, label under the current one."""
        self._require_loaded()
        tracker = self._require_tracker()
        self.store.charge_dot_product(features)
        eps = tracker.stored_model.margin(features)
        self.store.charge_dot_product(features)
        label = sign(self.current_model.margin(features))
        self.store.insert(entity_id, features, eps, label)
        # Keep M = max ||f||_q correct so future bounds stay sound for this entity.
        tracker.observe_max_feature_norm(features.norm(self.store.feature_norm_q))
        return label

    def _reorganize(self) -> None:
        """Recluster under the current model and reset the band and waste."""
        tracker = self._require_tracker()
        cost = self.store.reorganize(self.current_model)
        tracker.max_feature_norm = self.store.max_feature_norm
        tracker.reset(self.current_model)
        self.skiing.record_reorganization(cost)
        self.stats.record_reorganization(cost)

    def band_tuple_count(self) -> int:
        """Number of tuples currently inside the water band (Figure 13's metric)."""
        band = self._require_tracker().band()
        return self.store.count_eps_in_range(band.low, band.high)

    def read_hint(self, entity_id: object) -> int | None:
        """The ε-map short-circuit of Figure 8, shared by the batched read path."""
        hint = self.store.eps_hint(entity_id)
        if hint is None:
            return None
        band = self._require_tracker().band()
        if band.certain_positive(hint):
            self.stats.epsmap_hits += 1
            return 1
        if band.certain_negative(hint):
            self.stats.epsmap_hits += 1
            return -1
        return None


class HazyEagerMaintainer(_HazyMaintainerBase):
    """Eager maintenance that only reclassifies the water band on each update."""

    approach = "eager"

    def apply_model(self, model: LinearModel) -> None:
        """One round of Figure 7: reorganize if the waste justifies it, else incremental step."""
        self._require_loaded()
        tracker = self._require_tracker()
        self.current_model = model.copy()
        if self.skiing.should_reorganize():
            self._reorganize()
            # The round still counts as an Update; its cost is recorded as a
            # reorganization rather than an incremental step.
            self.stats.record_update(0, 0, 0.0)
            self.stats.record_band(0, 0.0)
            return
        start = self.store.cost_snapshot()
        self.store.charge_bound_update(model.weights.nnz())
        band = tracker.advance(model)
        touched = 0
        changed = 0
        relabels: list[tuple[object, int]] = []
        for record in self.store.scan_eps_range(band.low, band.high):
            touched += 1
            self.store.charge_dot_product(record.features)
            label = sign(model.margin(record.features))
            if label != record.label:
                relabels.append((record.entity_id, label))
                changed += 1
        for entity_id, label in relabels:
            self.store.update_label(entity_id, label)
        cost = self.store.cost_snapshot() - start
        self.skiing.record_incremental_step(cost)
        self.stats.record_update(touched, changed, cost)
        self.stats.record_band(touched, band.width())

    def apply_model_batch(self, models: Sequence[LinearModel]) -> None:
        """Batched Update: advance the band per model, reclassify the hull once.

        Lemma 3.1's band is *cumulative*: after advancing the tracker through
        every model of the batch, any tuple outside the cumulative band is
        guaranteed to carry the same label under the final model as it did when
        the epoch started, so one reclassification pass over the cumulative
        band under the final model restores the eager invariant — without the
        per-model band scans a one-by-one replay would pay.
        """
        models = list(models)
        if not models:
            return
        if len(models) == 1:
            self.apply_model(models[0])
            return
        self._require_loaded()
        tracker = self._require_tracker()
        self.current_model = models[-1].copy()
        if self.skiing.should_reorganize():
            self._reorganize()
            self.stats.record_update(0, 0, 0.0)
            self.stats.record_band(0, 0.0)
            return
        start = self.store.cost_snapshot()
        band = tracker.band()
        for model in models:
            self.store.charge_bound_update(model.weights.nnz())
            band = tracker.advance(model)
        final = models[-1]
        touched = 0
        changed = 0
        relabels: list[tuple[object, int]] = []
        for record in self.store.scan_eps_range(band.low, band.high):
            touched += 1
            self.store.charge_dot_product(record.features)
            label = sign(final.margin(record.features))
            if label != record.label:
                relabels.append((record.entity_id, label))
                changed += 1
        for entity_id, label in relabels:
            self.store.update_label(entity_id, label)
        cost = self.store.cost_snapshot() - start
        self.skiing.record_incremental_step(cost)
        self.stats.record_update(touched, changed, cost)
        self.stats.record_band(touched, band.width())

    def read_single(self, entity_id: object) -> int:
        """Stored labels are current; the ε-map (hybrid) short-circuits out-of-band reads."""
        self._require_loaded()
        tracker = self._require_tracker()
        start = self.store.cost_snapshot()
        self.store.charge_statement_overhead()
        band = tracker.band()
        hint = self.store.eps_hint(entity_id)
        if hint is not None:
            if band.certain_positive(hint):
                self.stats.epsmap_hits += 1
                self.stats.record_single_read(self.store.cost_snapshot() - start)
                return 1
            if band.certain_negative(hint):
                self.stats.epsmap_hits += 1
                self.stats.record_single_read(self.store.cost_snapshot() - start)
                return -1
        label = self.store.get(entity_id).label
        self.stats.record_single_read(self.store.cost_snapshot() - start)
        return label

    def read_all_members(self, label: int = 1) -> list[object]:
        """Stored labels are current, so a plain scan + filter answers the query."""
        self._require_loaded()
        start = self.store.cost_snapshot()
        members = [record.entity_id for record in self.store.scan_all() if record.label == label]
        self.stats.record_all_members(self.store.count(), self.store.cost_snapshot() - start)
        return members


class HazyLazyMaintainer(_HazyMaintainerBase):
    """Lazy maintenance with water-band pruned reads and §3.4 waste accounting."""

    approach = "lazy"

    def apply_model(self, model: LinearModel) -> None:
        """A lazy update is just a model swap plus a constant-time band update."""
        self._require_loaded()
        tracker = self._require_tracker()
        self.current_model = model.copy()
        start = self.store.cost_snapshot()
        self.store.charge_bound_update(model.weights.nnz())
        band = tracker.advance(model)
        self.stats.record_update(0, 0, self.store.cost_snapshot() - start)
        self.stats.record_band(-1, band.width())  # -1: size not measured on the lazy path

    def read_single(self, entity_id: object) -> int:
        """Figure 8: ε-map / band first, then buffer or disk plus one dot product."""
        self._require_loaded()
        tracker = self._require_tracker()
        start = self.store.cost_snapshot()
        self.store.charge_statement_overhead()
        band = tracker.band()
        hint = self.store.eps_hint(entity_id)
        if hint is not None:
            if band.certain_positive(hint):
                self.stats.epsmap_hits += 1
                self.stats.record_single_read(self.store.cost_snapshot() - start)
                return 1
            if band.certain_negative(hint):
                self.stats.epsmap_hits += 1
                self.stats.record_single_read(self.store.cost_snapshot() - start)
                return -1
        record = self.store.get(entity_id)
        if band.certain_positive(record.eps):
            label = 1
        elif band.certain_negative(record.eps):
            label = -1
        else:
            self.store.charge_dot_product(record.features)
            label = sign(self.current_model.margin(record.features))
        self.stats.record_single_read(self.store.cost_snapshot() - start)
        return label

    def classify_record(self, record) -> int:
        """Lazy labels may be stale: answer from the band, else one dot product."""
        band = self._require_tracker().band()
        if band.certain_positive(record.eps):
            return 1
        if band.certain_negative(record.eps):
            return -1
        self.store.charge_dot_product(record.features)
        return sign(self.current_model.margin(record.features))

    def read_all_members(self, label: int = 1) -> list[object]:
        """Scan only the tuples that could be in the class; charge the wasted fraction."""
        self._require_loaded()
        tracker = self._require_tracker()
        if self.skiing.should_reorganize():
            self._reorganize()
        band = tracker.band()
        start = self.store.cost_snapshot()
        members: list[object] = []
        touched = 0
        if label == 1:
            candidates = self.store.scan_eps_at_least(band.low)
        else:
            candidates = self.store.scan_eps_at_most(band.high)
        for record in candidates:
            touched += 1
            if label == 1 and band.certain_positive(record.eps):
                members.append(record.entity_id)
                continue
            if label == -1 and band.certain_negative(record.eps):
                members.append(record.entity_id)
                continue
            self.store.charge_dot_product(record.features)
            if sign(self.current_model.margin(record.features)) == label:
                members.append(record.entity_id)
        scan_cost = self.store.cost_snapshot() - start
        self.skiing.record_lazy_waste(touched, len(members), scan_cost)
        self.stats.record_all_members(touched, scan_cost)
        return members

    def read_range(
        self,
        label: int = 1,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[object]:
        """Band-pruned range read over the eps-clustered store.

        Like :meth:`read_all_members`, only the tuples that could possibly be
        in the class are scanned (everything above the low water for the
        positive class); the key filter runs before the band check, so dot
        products are paid only for in-range tuples the band cannot decide.
        The scan's wasted fraction feeds the same Skiing accounting as All
        Members reads, so a range-only workload still triggers
        reorganization when re-clustering pays for itself.
        """
        self._require_loaded()
        tracker = self._require_tracker()
        if self.skiing.should_reorganize():
            self._reorganize()
        band = tracker.band()
        start = self.store.cost_snapshot()
        self.store.charge_statement_overhead()
        if label == 1:
            candidates = self.store.scan_eps_at_least(band.low)
        else:
            candidates = self.store.scan_eps_at_most(band.high)
        members: list[object] = []
        touched = 0
        for record in candidates:
            if not key_in_range(record.entity_id, low, high, include_low, include_high):
                continue
            touched += 1
            if label == 1 and band.certain_positive(record.eps):
                members.append(record.entity_id)
                continue
            if label == -1 and band.certain_negative(record.eps):
                members.append(record.entity_id)
                continue
            self.store.charge_dot_product(record.features)
            if sign(self.current_model.margin(record.features)) == label:
                members.append(record.entity_id)
        scan_cost = self.store.cost_snapshot() - start
        self.skiing.record_lazy_waste(touched, len(members), scan_cost)
        self.stats.record_range_read(touched, scan_cost)
        return members
