"""Maintenance strategies for classification views.

Four strategies, matching the paper's experimental grid:

* :class:`NaiveEagerMaintainer` — on every model update, rescan and relabel
  every entity (the state-of-the-art baseline the paper compares against).
* :class:`HazyEagerMaintainer` — reclassify only the water band, with the
  Skiing strategy deciding when to recluster (§3.2).
* :class:`NaiveLazyMaintainer` — updates are free; every read reclassifies
  whatever it touches with the current model.
* :class:`HazyLazyMaintainer` — lazy reads pruned by the water band, with the
  §3.4 waste accounting driving reorganizations.

Any strategy can run over any :class:`~repro.core.stores.base.EntityStore`
architecture (on-disk, main-memory, hybrid).
"""

from repro.core.maintainers.base import ViewMaintainer
from repro.core.maintainers.hazy import HazyEagerMaintainer, HazyLazyMaintainer
from repro.core.maintainers.naive import NaiveEagerMaintainer, NaiveLazyMaintainer

__all__ = [
    "ViewMaintainer",
    "NaiveEagerMaintainer",
    "NaiveLazyMaintainer",
    "HazyEagerMaintainer",
    "HazyLazyMaintainer",
]
