"""The maintainer interface: the three operations of §2.2.

Every maintainer supports the paper's three operations — Single Entity read,
All Members read, and Update (a new model produced by incremental training) —
plus the initial bulk load.  The cost of each operation is measured in the
store's simulated seconds so that the Skiing strategy and the benchmarks see
the same ledger.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence

from repro.core.stats import MaintenanceStatistics
from repro.core.stores.base import EntityRecord, EntityStore
from repro.exceptions import KeyNotFoundError, MaintenanceError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector

__all__ = ["ViewMaintainer", "key_in_range"]


def key_in_range(
    key: object,
    low: object | None,
    high: object | None,
    include_low: bool = True,
    include_high: bool = True,
) -> bool:
    """Whether an entity key lies inside the (possibly half-open) range.

    ``None`` bounds are unbounded.  Keys compare with Python semantics — the
    SQL layer only pushes ranges over a view's key column, whose values share
    one type.
    """
    if low is not None and (key < low or (key == low and not include_low)):
        return False
    if high is not None and (key > high or (key == high and not include_high)):
        return False
    return True


class ViewMaintainer(ABC):
    """Maintains ``V(id, class)`` as the model evolves."""

    #: Human-readable strategy name used by benchmark tables ("naive", "hazy").
    strategy_name: str = "maintainer"
    #: "eager" or "lazy".
    approach: str = "eager"

    def __init__(self, store: EntityStore):
        self.store = store
        self.stats = MaintenanceStatistics()
        self.current_model = LinearModel()
        self._loaded = False

    # -- lifecycle --------------------------------------------------------------------

    @abstractmethod
    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> None:
        """Populate the view from scratch under ``model``."""

    @abstractmethod
    def apply_model(self, model: LinearModel) -> None:
        """The Update operation: a new training example produced ``model``."""

    def apply_model_batch(self, models: Sequence[LinearModel]) -> None:
        """Batched Update: apply a run of successive models in one maintenance round.

        The serving subsystem's background worker groups the models produced
        by a burst of training examples and hands them over together.  The
        default implementation replays them one by one (always correct);
        strategies that can amortize work across the batch — the eager Hazy
        maintainer reclassifies the *cumulative* water band once under the
        final model — override this.
        """
        for model in models:
            self.apply_model(model)

    @abstractmethod
    def add_entity(self, entity_id: object, features: SparseVector) -> int:
        """A new entity arrived; classify and store it.  Returns its label."""

    def remove_entity(self, entity_id: object) -> None:
        """An entity was deleted from the entities table: drop it from the view."""
        self._require_loaded()
        self.store.delete(entity_id)

    # -- checkpoint / recovery -------------------------------------------------------------

    def export_state(self) -> dict[str, object]:
        """Snapshot this maintainer's state as plain Python data.

        The base implementation covers the naive strategies (whose only state
        beyond the store is the current model); the Hazy strategies extend the
        dict with their water-band and Skiing state.  Model objects are
        copies, so the export stays consistent even if maintenance continues
        afterwards.
        """
        self._require_loaded()
        state: dict[str, object] = {
            "strategy": self.strategy_name,
            "approach": self.approach,
            "current_model": self.current_model.copy(),
        }
        state.update(self.store.export_state())
        return state

    def import_state(self, state: dict[str, object]) -> None:
        """Restore from :meth:`export_state` output without a cold bulk load.

        The strategy/approach recorded in the snapshot must match this
        maintainer — eps semantics differ between strategies, so importing a
        mismatched snapshot would silently corrupt reads.
        """
        if self._loaded:
            raise MaintenanceError(f"{type(self).__name__} is already loaded")
        if state.get("strategy") != self.strategy_name or state.get("approach") != self.approach:
            raise MaintenanceError(
                f"snapshot was written by a {state.get('strategy')}/{state.get('approach')} "
                f"maintainer; this one is {self.strategy_name}/{self.approach}"
            )
        self.current_model = state["current_model"].copy()
        self.store.import_state(state)
        self._loaded = True

    # -- reads ----------------------------------------------------------------------------

    @abstractmethod
    def read_single(self, entity_id: object) -> int:
        """Single Entity read: the label of one entity under the current model."""

    @abstractmethod
    def read_all_members(self, label: int = 1) -> list[object]:
        """All Members read: ids of every entity carrying ``label``."""

    def classify_record(self, record: EntityRecord) -> int:
        """Label of an already-fetched record under the current model.

        Used by the batched read path, which fetches records itself (point
        lookups or one coalesced scan) and only needs the per-record
        classification logic.  Eager strategies answer from the stored label;
        lazy strategies override to consult the band and/or recompute.
        """
        return record.label

    def read_hint(self, entity_id: object) -> int | None:
        """Answer a Single Entity read without touching the record, if possible.

        The Hazy strategies override this with the ε-map / water-band
        short-circuit of Figure 8; the naive strategies have no bound to lean
        on and always return None.
        """
        return None  # noqa: RET501

    def read_many(
        self,
        entity_ids: Sequence[object],
        on_record: Callable[[EntityRecord], None] | None = None,
    ) -> dict[object, int]:
        """Batched Single Entity read: one statement dispatch for the whole batch.

        This is the coalescing hook the serving subsystem's request batcher
        drives.  Per-statement RDBMS overhead — the very cost that caps
        single-read throughput in Figure 5 — is charged once for the batch,
        hint-answerable entities are served without touching the store, and
        the remainder is fetched either by point lookups or by one shared
        sequential scan, whichever the cost model prices cheaper.

        ``on_record`` observes every record the batch had to fetch (the
        serving layer's result cache harvests stored ε values through it).
        """
        self._require_loaded()
        start = self.store.cost_snapshot()
        self.store.charge_statement_overhead()
        results: dict[object, int] = {}
        remaining: set[object] = set()
        for entity_id in entity_ids:
            if entity_id in results or entity_id in remaining:
                continue
            hinted = self.read_hint(entity_id)
            if hinted is not None:
                results[entity_id] = hinted
            else:
                remaining.add(entity_id)
        if remaining:
            point_cost = len(remaining) * self.store.point_read_cost_estimate()
            if self.store.scan_cost_estimate() < point_cost:
                # Coalesce the batch into one sequential scan of the store.
                for record in self.store.scan_all():
                    if record.entity_id in remaining:
                        results[record.entity_id] = self.classify_record(record)
                        remaining.discard(record.entity_id)
                        if on_record is not None:
                            on_record(record)
                        if not remaining:
                            break
            else:
                for entity_id in remaining:
                    record = self.store.get(entity_id)
                    results[entity_id] = self.classify_record(record)
                    if on_record is not None:
                        on_record(record)
                remaining.clear()
        if remaining:
            missing = next(iter(remaining))
            raise KeyNotFoundError(f"no entity with id {missing!r}")
        self.stats.record_batched_read(len(results), self.store.cost_snapshot() - start)
        return results

    def read_range(
        self,
        label: int = 1,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[object]:
        """Members of class ``label`` whose entity *key* lies in the range.

        This is the pushed-down form of ``WHERE class = x AND <key> <op> k``:
        one scan of the store that classifies only the in-range candidates,
        instead of materializing the whole view and post-filtering.  The key
        filter runs *before* :meth:`classify_record`, so lazy strategies pay
        dot products only for tuples that can appear in the answer.
        """
        self._require_loaded()
        start = self.store.cost_snapshot()
        self.store.charge_statement_overhead()
        members: list[object] = []
        touched = 0
        for record in self.store.scan_all():
            if not key_in_range(record.entity_id, low, high, include_low, include_high):
                continue
            touched += 1
            if self.classify_record(record) == label:
                members.append(record.entity_id)
        self.stats.record_range_read(touched, self.store.cost_snapshot() - start)
        return members

    def count_members(self, label: int = 1) -> int:
        """Number of entities in the class (executes an All Members read)."""
        return len(self.read_all_members(label))

    # -- helpers ------------------------------------------------------------------------------

    def contents(self) -> dict[object, int]:
        """The full view ``{id: label}`` under the current model.

        Default implementation answers through :meth:`read_single` for each
        stored entity, which is correct for every strategy (if slow); used by
        the consistency tests.
        """
        return {record.entity_id: self.read_single(record.entity_id) for record in self.store.scan_all()}

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise MaintenanceError(
                f"{type(self).__name__}: bulk_load must be called before this operation"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entities={self.store.count()}, "
            f"updates={self.stats.updates}, reorgs={self.stats.reorganizations})"
        )
