"""The maintainer interface: the three operations of §2.2.

Every maintainer supports the paper's three operations — Single Entity read,
All Members read, and Update (a new model produced by incremental training) —
plus the initial bulk load.  The cost of each operation is measured in the
store's simulated seconds so that the Skiing strategy and the benchmarks see
the same ledger.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.core.stats import MaintenanceStatistics
from repro.core.stores.base import EntityStore
from repro.exceptions import MaintenanceError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector

__all__ = ["ViewMaintainer"]


class ViewMaintainer(ABC):
    """Maintains ``V(id, class)`` as the model evolves."""

    #: Human-readable strategy name used by benchmark tables ("naive", "hazy").
    strategy_name: str = "maintainer"
    #: "eager" or "lazy".
    approach: str = "eager"

    def __init__(self, store: EntityStore):
        self.store = store
        self.stats = MaintenanceStatistics()
        self.current_model = LinearModel()
        self._loaded = False

    # -- lifecycle --------------------------------------------------------------------

    @abstractmethod
    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> None:
        """Populate the view from scratch under ``model``."""

    @abstractmethod
    def apply_model(self, model: LinearModel) -> None:
        """The Update operation: a new training example produced ``model``."""

    @abstractmethod
    def add_entity(self, entity_id: object, features: SparseVector) -> int:
        """A new entity arrived; classify and store it.  Returns its label."""

    # -- reads ----------------------------------------------------------------------------

    @abstractmethod
    def read_single(self, entity_id: object) -> int:
        """Single Entity read: the label of one entity under the current model."""

    @abstractmethod
    def read_all_members(self, label: int = 1) -> list[object]:
        """All Members read: ids of every entity carrying ``label``."""

    def count_members(self, label: int = 1) -> int:
        """Number of entities in the class (executes an All Members read)."""
        return len(self.read_all_members(label))

    # -- helpers ------------------------------------------------------------------------------

    def contents(self) -> dict[object, int]:
        """The full view ``{id: label}`` under the current model.

        Default implementation answers through :meth:`read_single` for each
        stored entity, which is correct for every strategy (if slow); used by
        the consistency tests.
        """
        return {record.entity_id: self.read_single(record.entity_id) for record in self.store.scan_all()}

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise MaintenanceError(
                f"{type(self).__name__}: bulk_load must be called before this operation"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entities={self.store.count()}, "
            f"updates={self.stats.updates}, reorgs={self.stats.reorganizations})"
        )
