"""The naive eager and lazy strategies (paper §2.2, "Naïve Approach").

These are the baselines Hazy is compared against: the eager variant relabels
every entity on every model update; the lazy variant does nothing on update
and reclassifies whatever a read touches.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.maintainers.base import ViewMaintainer
from repro.learn.model import LinearModel, sign
from repro.linalg import SparseVector

__all__ = ["NaiveEagerMaintainer", "NaiveLazyMaintainer"]


class NaiveEagerMaintainer(ViewMaintainer):
    """Eager baseline: every Update rescans and relabels the whole table."""

    strategy_name = "naive"
    approach = "eager"

    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> None:
        self.current_model = model.copy()
        self.store.bulk_load(entities, model)
        self._loaded = True

    def apply_model(self, model: LinearModel) -> None:
        """Full scan: classify every entity under the new model and write its label."""
        self._require_loaded()
        self.current_model = model.copy()
        start = self.store.cost_snapshot()
        changed = 0
        touched = 0
        relabels: list[tuple[object, int]] = []
        for record in self.store.scan_all():
            touched += 1
            self.store.charge_dot_product(record.features)
            label = sign(model.margin(record.features))
            if label != record.label:
                relabels.append((record.entity_id, label))
                changed += 1
        for entity_id, label in relabels:
            self.store.update_label(entity_id, label)
        self.stats.record_update(touched, changed, self.store.cost_snapshot() - start)

    def add_entity(self, entity_id: object, features: SparseVector) -> int:
        """Classify the new entity under the current model and store it."""
        self._require_loaded()
        self.store.charge_dot_product(features)
        eps = self.current_model.margin(features)
        label = sign(eps)
        self.store.insert(entity_id, features, eps, label)
        return label

    def read_single(self, entity_id: object) -> int:
        """Labels are always up to date: return the stored label."""
        self._require_loaded()
        start = self.store.cost_snapshot()
        self.store.charge_statement_overhead()
        label = self.store.get(entity_id).label
        self.stats.record_single_read(self.store.cost_snapshot() - start)
        return label

    def read_all_members(self, label: int = 1) -> list[object]:
        """Scan the table and collect stored labels (no reclassification needed)."""
        self._require_loaded()
        start = self.store.cost_snapshot()
        members = [record.entity_id for record in self.store.scan_all() if record.label == label]
        self.stats.record_all_members(self.store.count(), self.store.cost_snapshot() - start)
        return members


class NaiveLazyMaintainer(ViewMaintainer):
    """Lazy baseline: free updates, reads reclassify with the current model."""

    strategy_name = "naive"
    approach = "lazy"

    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: LinearModel
    ) -> None:
        self.current_model = model.copy()
        self.store.bulk_load(entities, model)
        self._loaded = True

    def apply_model(self, model: LinearModel) -> None:
        """A lazy update only swaps the model pointer (optimal update cost)."""
        self._require_loaded()
        self.current_model = model.copy()
        self.stats.record_update(0, 0, 0.0)

    def add_entity(self, entity_id: object, features: SparseVector) -> int:
        self._require_loaded()
        self.store.charge_dot_product(features)
        eps = self.current_model.margin(features)
        label = sign(eps)
        self.store.insert(entity_id, features, eps, label)
        return label

    def read_single(self, entity_id: object) -> int:
        """Fetch the feature vector and classify it with the current model."""
        self._require_loaded()
        start = self.store.cost_snapshot()
        self.store.charge_statement_overhead()
        record = self.store.get(entity_id)
        self.store.charge_dot_product(record.features)
        label = sign(self.current_model.margin(record.features))
        self.stats.record_single_read(self.store.cost_snapshot() - start)
        return label

    def classify_record(self, record) -> int:
        """Lazy stored labels are stale: always reclassify with the current model."""
        self.store.charge_dot_product(record.features)
        return sign(self.current_model.margin(record.features))

    def read_all_members(self, label: int = 1) -> list[object]:
        """Scan and reclassify every entity with the current model."""
        self._require_loaded()
        start = self.store.cost_snapshot()
        members: list[object] = []
        touched = 0
        for record in self.store.scan_all():
            touched += 1
            self.store.charge_dot_product(record.features)
            if sign(self.current_model.margin(record.features)) == label:
                members.append(record.entity_id)
        self.stats.record_all_members(touched, self.store.cost_snapshot() - start)
        return members
