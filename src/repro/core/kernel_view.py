"""Incrementally maintained *kernel* classification views (Appendix B.5.2).

The body of the paper develops the water-band machinery for linear models; the
appendix observes that the same idea applies to kernel classifiers
``c(x) = sum_i c_i K(s_i, x) + b`` whenever the kernel is bounded in [0, 1]
(Gaussian, Laplacian, and other normalized kernels): if two models differ by
``delta`` in their support-vector coefficient vectors, then for every entity

    |c_new(x) - c_stored(x)|  <=  ||delta_coefficients||_1 + |delta_bias|

because each ``K(s_i, x)`` is at most 1.  So an entity whose *stored* kernel
score lies further than that l1 distance from 0 cannot have changed label, and
the scratch table can again be clustered on the stored score with only the
in-band entities reclassified.  A new training example may introduce a new
support vector; the old model is treated as assigning it coefficient 0, which
is exactly how :meth:`~repro.learn.kernel_model.KernelClassifier.coefficient_l1_delta`
aligns the two expansions.

This module provides :class:`KernelHazyEagerMaintainer`, the kernel analogue of
:class:`~repro.core.maintainers.hazy.HazyEagerMaintainer`, reusing the same
entity stores and the same Skiing strategy.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.bounds import WaterBand
from repro.core.skiing import SkiingStrategy
from repro.core.stats import MaintenanceStatistics
from repro.core.stores.base import EntityStore
from repro.exceptions import MaintenanceError
from repro.learn.kernel_model import KernelClassifier
from repro.learn.model import sign
from repro.linalg import SparseVector

__all__ = ["KernelHazyEagerMaintainer", "KernelNaiveEagerMaintainer"]


class _KernelMaintainerBase:
    """Shared plumbing for kernel-view maintainers over an entity store.

    The store's ``eps`` column holds the *stored kernel score*
    ``c_stored(x)`` rather than a linear margin; everything else (clustering,
    range scans, label updates, cost accounting) is reused unchanged.
    """

    strategy_name = "kernel"
    approach = "eager"

    def __init__(self, store: EntityStore):
        self.store = store
        self.stats = MaintenanceStatistics()
        self.current_model = KernelClassifier()
        self._loaded = False

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise MaintenanceError(f"{type(self).__name__}: bulk_load must be called first")

    def _score_and_charge(self, model: KernelClassifier, features: SparseVector) -> float:
        # One kernel evaluation per support vector; charged like dot products.
        for support_vector in model.support_vectors:
            self.store.charge_dot_product(support_vector.features)
        return model.score(features)

    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: KernelClassifier
    ) -> float:
        """Populate the store with scores and labels under ``model``."""
        self.current_model = model.copy()
        materialized = list(entities)
        start = self.store.cost_snapshot()
        staged = []
        for entity_id, features in materialized:
            score = self._score_and_charge(model, features)
            staged.append((entity_id, features, score, sign(score)))
        # Reuse the store's bulk_load for clustering by loading via insert order:
        # bulk_load computes eps with a *linear* model, so instead the records are
        # inserted individually with precomputed scores after an empty load.
        self.store.bulk_load([], _ZeroLinearModel())
        for entity_id, features, score, label in sorted(staged, key=lambda item: item[2]):
            self.store.insert(entity_id, features, score, label)
        self._loaded = True
        return self.store.cost_snapshot() - start

    def read_single(self, entity_id: object) -> int:
        """Stored labels are maintained eagerly, so a point lookup suffices."""
        self._require_loaded()
        start = self.store.cost_snapshot()
        self.store.charge_statement_overhead()
        label = self.store.get(entity_id).label
        self.stats.record_single_read(self.store.cost_snapshot() - start)
        return label

    def read_all_members(self, label: int = 1) -> list[object]:
        """Scan and filter by the maintained label."""
        self._require_loaded()
        start = self.store.cost_snapshot()
        members = [record.entity_id for record in self.store.scan_all() if record.label == label]
        self.stats.record_all_members(self.store.count(), self.store.cost_snapshot() - start)
        return members

    def contents(self) -> dict[object, int]:
        """The full view ``{id: label}`` (used by consistency tests)."""
        return {record.entity_id: record.label for record in self.store.scan_all()}


class _ZeroLinearModel:
    """A stand-in passed to ``EntityStore.bulk_load`` when loading zero entities."""

    weights = SparseVector()
    bias = 0.0
    version = 0

    def margin(self, features: SparseVector) -> float:  # pragma: no cover - empty load only
        return 0.0

    def copy(self) -> "_ZeroLinearModel":
        return self


class KernelNaiveEagerMaintainer(_KernelMaintainerBase):
    """Baseline: rescore every entity with the full kernel expansion on each update."""

    strategy_name = "kernel-naive"

    def apply_model(self, model: KernelClassifier) -> None:
        """Recompute the kernel score of every entity under the new model."""
        self._require_loaded()
        self.current_model = model.copy()
        start = self.store.cost_snapshot()
        touched = 0
        changed = 0
        for record in self.store.scan_all():
            touched += 1
            label = sign(self._score_and_charge(model, record.features))
            if label != record.label:
                self.store.update_label(record.entity_id, label)
                changed += 1
        self.stats.record_update(touched, changed, self.store.cost_snapshot() - start)


class KernelHazyEagerMaintainer(_KernelMaintainerBase):
    """Hazy maintenance for kernel views: l1 coefficient-delta water band."""

    strategy_name = "kernel-hazy"

    def __init__(self, store: EntityStore, alpha: float = 1.0):
        super().__init__(store)
        self.skiing = SkiingStrategy(alpha=alpha)
        self._stored_model = KernelClassifier()
        self._band = WaterBand(0.0, 0.0)

    def bulk_load(
        self, entities: Iterable[tuple[object, SparseVector]], model: KernelClassifier
    ) -> float:
        cost = super().bulk_load(entities, model)
        self._stored_model = model.copy()
        self._band = WaterBand(0.0, 0.0)
        self.skiing.reorganization_cost = cost
        return cost

    @property
    def band(self) -> WaterBand:
        """The current score band around the decision boundary."""
        return self._band

    def _reorganize(self) -> None:
        """Re-score and re-cluster everything under the current model."""
        records = list(self.store.scan_all())
        start = self.store.cost_snapshot()
        staged = []
        for record in records:
            score = self._score_and_charge(self.current_model, record.features)
            staged.append((record.entity_id, record.features, score, sign(score)))
        self.store.bulk_load([], _ZeroLinearModel())
        for entity_id, features, score, label in sorted(staged, key=lambda item: item[2]):
            self.store.insert(entity_id, features, score, label)
        self.store.stats.charge(self.store.cost_model.sort_cost(len(staged)), "sort")
        cost = self.store.cost_snapshot() - start
        self._stored_model = self.current_model.copy()
        self._band = WaterBand(0.0, 0.0)
        self.skiing.record_reorganization(cost)
        self.stats.record_reorganization(cost)

    def apply_model(self, model: KernelClassifier) -> None:
        """One maintenance round under the Skiing strategy (kernel variant)."""
        self._require_loaded()
        self.current_model = model.copy()
        if self.skiing.should_reorganize():
            self._reorganize()
            self.stats.record_update(0, 0, 0.0)
            self.stats.record_band(0, 0.0)
            return
        start = self.store.cost_snapshot()
        # Appendix B.5.2: |c_new(x) - c_stored(x)| <= ||delta_coeff||_1 + |delta_b|
        # whenever K(., .) is bounded by 1; widen the cumulative band accordingly.
        radius = model.coefficient_l1_delta(self._stored_model)
        self.store.charge_bound_update(len(model.support_vectors) + 1)
        self._band = WaterBand(min(self._band.low, -radius), max(self._band.high, radius))
        touched = 0
        changed = 0
        relabels: list[tuple[object, int]] = []
        for record in self.store.scan_eps_range(self._band.low, self._band.high):
            touched += 1
            label = sign(self._score_and_charge(model, record.features))
            if label != record.label:
                relabels.append((record.entity_id, label))
                changed += 1
        for entity_id, label in relabels:
            self.store.update_label(entity_id, label)
        cost = self.store.cost_snapshot() - start
        self.skiing.record_incremental_step(cost)
        self.stats.record_update(touched, changed, cost)
        self.stats.record_band(touched, self._band.width())
