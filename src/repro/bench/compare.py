"""Benchmark-trajectory comparison: fail CI when results drift from a baseline.

``benchmarks/run_all.py --json`` emits a deterministic report (every figure's
rows are computed from the simulated cost model with fixed seeds), so the
committed ``benchmarks/baseline.json`` is a trajectory anchor: a current run
whose numbers drift more than the tolerance from the baseline means the
change under review altered the system's measured behaviour and must either
be fixed or land with a refreshed baseline.

Wall-clock quantities (``elapsed_seconds``, ``wall_*`` columns, timestamps)
are machine noise, not behaviour, and are skipped.

Usage::

    python -m repro.bench.compare benchmarks/baseline.json current.json
    python -m repro.bench.compare baseline.json current.json --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Deviation", "flatten_metrics", "compare_reports", "main"]

#: Metric-name fragments that are machine noise rather than behaviour: plain
#: wall-clock quantities, plus the serving figure's thread-timing-dependent
#: columns — the request batcher coalesces on a real-time window, so realized
#: batch sizes, cache hits, and the per-read simulated cost they imply are
#: scheduler artifacts that vary with runner load, unlike every other figure's
#: deterministic cost-model output.
VOLATILE_FRAGMENTS = (
    "wall",
    "elapsed",
    "generated_at",
    "seed",
    "avg_read_batch",
    "cache_hits",
    "sim_reads_per_s",
    "read_speedup",
)
#: Guard against blowing up relative error on near-zero baselines.
ABSOLUTE_FLOOR = 1e-9


@dataclass(frozen=True)
class Deviation:
    """One metric that moved outside the tolerance (or disappeared)."""

    metric: str
    baseline: float | None
    current: float | None
    relative_change: float

    def describe(self) -> str:
        if self.current is None:
            return f"{self.metric}: present in baseline, missing from current run"
        if self.baseline is None:
            return f"{self.metric}: new metric not in baseline (refresh baseline.json)"
        return (
            f"{self.metric}: baseline {self.baseline:g} -> current {self.current:g} "
            f"({self.relative_change:+.1%})"
        )


def _is_volatile(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in VOLATILE_FRAGMENTS)


def flatten_metrics(report: dict) -> dict[str, float]:
    """Flatten a run_all JSON report into ``{"figure[row].column": value}``.

    Only finite numeric cells survive; volatile (wall-clock) columns and the
    report-level metadata are dropped.
    """
    metrics: dict[str, float] = {}
    for figure_name, figure in sorted(report.get("figures", {}).items()):
        for row_index, row in enumerate(figure.get("rows", []) or []):
            for column, value in row.items():
                if _is_volatile(column):
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                if not math.isfinite(value):
                    continue
                metrics[f"{figure_name}[{row_index}].{column}"] = float(value)
    return metrics


def compare_reports(
    baseline: dict, current: dict, tolerance: float = 0.2
) -> list[Deviation]:
    """Compare two run_all reports; returns the metrics that drifted.

    Drift is direction-agnostic: the simulated numbers are deterministic, so
    a large move in *either* direction signals a behavioural change worth a
    look (improvements should land with a refreshed baseline, not slip
    through unbudgeted).  Metrics missing from the current run are always
    deviations; metrics new in the current run are reported only so the
    baseline gets refreshed, they do not fail the comparison on their own.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    baseline_metrics = flatten_metrics(baseline)
    current_metrics = flatten_metrics(current)
    deviations: list[Deviation] = []
    for name, base_value in baseline_metrics.items():
        if name not in current_metrics:
            deviations.append(Deviation(name, base_value, None, math.inf))
            continue
        current_value = current_metrics[name]
        denominator = max(abs(base_value), ABSOLUTE_FLOOR)
        relative = (current_value - base_value) / denominator
        if abs(relative) > tolerance:
            deviations.append(Deviation(name, base_value, current_value, relative))
    deviations.sort(key=lambda deviation: -abs(deviation.relative_change))
    return deviations


def _load(path: str) -> dict:
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "figures" not in document:
        raise SystemExit(f"{path} is not a run_all --json report (no 'figures' key)")
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON report")
    parser.add_argument("current", help="freshly generated JSON report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="maximum allowed relative drift per metric (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)
    baseline = _load(args.baseline)
    current = _load(args.current)
    deviations = compare_reports(baseline, current, tolerance=args.tolerance)
    compared = len(set(flatten_metrics(baseline)) & set(flatten_metrics(current)))
    new_metrics = sorted(set(flatten_metrics(current)) - set(flatten_metrics(baseline)))
    for name in new_metrics:
        print(f"note: {name} is new (not in baseline)")
    if deviations:
        print(
            f"FAIL: {len(deviations)} of {compared} compared metrics drifted more "
            f"than {args.tolerance:.0%} from {args.baseline}:"
        )
        for deviation in deviations:
            print(f"  {deviation.describe()}")
        return 1
    print(
        f"OK: {compared} metrics within {args.tolerance:.0%} of baseline "
        f"({len(new_metrics)} new)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
