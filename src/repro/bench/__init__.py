"""The experiment harness behind ``benchmarks/``.

:mod:`repro.bench.harness` builds (store, maintainer, trainer) bundles for any
point in the paper's experimental grid and replays update/read traces against
them, reporting both wall-clock and simulated throughput.
:mod:`repro.bench.reporting` renders the per-figure tables that the benchmark
modules print (paper-reported values next to the reproduction's values).
"""

from repro.bench.harness import (
    ExperimentResult,
    MaintainedView,
    build_maintained_view,
    run_eager_update_experiment,
    run_lazy_all_members_experiment,
    run_single_entity_experiment,
)
from repro.bench.reporting import format_table, speedup

__all__ = [
    "MaintainedView",
    "ExperimentResult",
    "build_maintained_view",
    "run_eager_update_experiment",
    "run_lazy_all_members_experiment",
    "run_single_entity_experiment",
    "format_table",
    "speedup",
]
