"""Plain-text table rendering for the benchmark output."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "speedup", "format_bytes"]


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of row dictionaries as an aligned plain-text table.

    Column order follows the keys of the first row; missing values render as
    empty cells.  Used by every benchmark module to print the paper-vs-measured
    comparison tables.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered_rows = [[_render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(rendered, widths)))
    return "\n".join(lines)


def _render(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """``baseline / improved`` with a graceful answer when the improved cost is ~0."""
    if improved_seconds <= 0:
        return float("inf")
    return baseline_seconds / improved_seconds


def format_bytes(size: float) -> str:
    """Human-readable byte counts (KB/MB/GB) for the memory-usage tables."""
    size = float(size)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if size < 1024.0 or unit == "TB":
            return f"{size:.1f}{unit}"
        size /= 1024.0
    return f"{size:.1f}TB"  # pragma: no cover - unreachable
