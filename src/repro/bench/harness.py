"""Experiment drivers shared by the benchmark modules.

Each driver assembles one point of the paper's experimental grid — an
architecture (on-disk, main-memory, hybrid), a strategy (naive, hazy) and an
approach (eager, lazy) — and replays a workload trace against it.  Throughput
is reported in two currencies:

* **simulated throughput** — operations per simulated second according to the
  deterministic cost model; this is what the figure reproductions compare,
  because it reflects the I/O asymmetries the paper's hardware had;
* **wall throughput** — operations per real second of this Python process,
  reported for completeness.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.maintainers import (
    HazyEagerMaintainer,
    HazyLazyMaintainer,
    NaiveEagerMaintainer,
    NaiveLazyMaintainer,
    ViewMaintainer,
)
from repro.core.stores import (
    EntityStore,
    HybridEntityStore,
    InMemoryEntityStore,
    OnDiskEntityStore,
)
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.costmodel import CostModel
from repro.exceptions import ConfigurationError
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.workloads.datasets import GeneratedDataset
from repro.workloads.trace import read_trace, update_trace

__all__ = [
    "MaintainedView",
    "ExperimentResult",
    "build_store",
    "build_maintained_view",
    "run_eager_update_experiment",
    "run_lazy_all_members_experiment",
    "run_single_entity_experiment",
]

#: The architecture/strategy grid of Figure 4, in the paper's presentation order.
FIGURE4_GRID: tuple[tuple[str, str], ...] = (
    ("ondisk", "naive"),
    ("ondisk", "hazy"),
    ("hybrid", "hazy"),
    ("mainmemory", "naive"),
    ("mainmemory", "hazy"),
)


#: Default buffer-pool size for the on-disk and hybrid architectures: small
#: enough that full scans of the scaled data sets spill to "disk", the regime
#: the paper's on-disk numbers come from.
DEFAULT_BUFFER_POOL_PAGES = 32


def build_store(
    architecture: str,
    feature_norm_q: float = 1.0,
    buffer_fraction: float = 0.01,
    buffer_pool_pages: int | None = DEFAULT_BUFFER_POOL_PAGES,
    cost_model: CostModel | None = None,
) -> EntityStore:
    """Build an entity store for the named architecture."""
    if architecture == "mainmemory":
        return InMemoryEntityStore(feature_norm_q=feature_norm_q)
    disk_cost_model = cost_model if cost_model is not None else CostModel()
    pool = BufferPool(disk_cost_model, capacity_pages=buffer_pool_pages, statistics=IOStatistics())
    if architecture == "ondisk":
        return OnDiskEntityStore(pool=pool, feature_norm_q=feature_norm_q)
    if architecture == "hybrid":
        return HybridEntityStore(
            pool=pool, feature_norm_q=feature_norm_q, buffer_fraction=buffer_fraction
        )
    raise ConfigurationError(f"unknown architecture {architecture!r}")


def build_maintainer(
    strategy: str, approach: str, store: EntityStore, alpha: float = 1.0
) -> ViewMaintainer:
    """Build a maintainer for the named strategy/approach over ``store``."""
    if strategy == "naive" and approach == "eager":
        return NaiveEagerMaintainer(store)
    if strategy == "naive" and approach == "lazy":
        return NaiveLazyMaintainer(store)
    if strategy == "hazy" and approach == "eager":
        return HazyEagerMaintainer(store, alpha=alpha)
    if strategy == "hazy" and approach == "lazy":
        return HazyLazyMaintainer(store, alpha=alpha)
    raise ConfigurationError(f"unknown strategy/approach {strategy!r}/{approach!r}")


@dataclass
class MaintainedView:
    """A (trainer, maintainer) bundle driven directly by a workload trace."""

    maintainer: ViewMaintainer
    trainer: SGDTrainer
    architecture: str
    strategy: str
    approach: str

    def absorb(self, example: TrainingExample) -> None:
        """One Update: incremental training step followed by view maintenance."""
        self.maintainer.store.charge_model_update()
        model = self.trainer.absorb(example)
        self.maintainer.apply_model(model)

    def absorb_many(self, examples: Sequence[TrainingExample]) -> None:
        """Absorb a sequence of examples."""
        for example in examples:
            self.absorb(example)

    @property
    def store(self) -> EntityStore:
        """The underlying entity store."""
        return self.maintainer.store


def build_maintained_view(
    dataset: GeneratedDataset,
    architecture: str,
    strategy: str,
    approach: str,
    alpha: float = 1.0,
    buffer_fraction: float = 0.01,
    buffer_pool_pages: int | None = DEFAULT_BUFFER_POOL_PAGES,
    loss: str = "svm",
    warm_examples: Sequence[TrainingExample] = (),
) -> MaintainedView:
    """Build and bulk-load a maintained view over ``dataset``.

    ``warm_examples`` are absorbed by the trainer *before* the bulk load, so
    the initial clustering reflects a warm model (the paper's default setup).
    """
    feature_norm_q = 2.0 if dataset.spec.kind == "dense" else 1.0
    store = build_store(
        architecture,
        feature_norm_q=feature_norm_q,
        buffer_fraction=buffer_fraction,
        buffer_pool_pages=buffer_pool_pages,
    )
    maintainer = build_maintainer(strategy, approach, store, alpha=alpha)
    trainer = SGDTrainer(loss=loss)
    for example in warm_examples:
        trainer.absorb(example)
    maintainer.bulk_load(dataset.entities, trainer.model.copy())
    return MaintainedView(
        maintainer=maintainer,
        trainer=trainer,
        architecture=architecture,
        strategy=strategy,
        approach=approach,
    )


@dataclass
class ExperimentResult:
    """Throughput and cost accounting for one experiment cell."""

    label: str
    operations: int
    wall_seconds: float
    simulated_seconds: float
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def simulated_ops_per_second(self) -> float:
        """Operations per simulated second (the figure-of-merit for comparisons)."""
        if self.simulated_seconds <= 0:
            return float("inf")
        return self.operations / self.simulated_seconds

    @property
    def wall_ops_per_second(self) -> float:
        """Operations per wall-clock second of this process."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.operations / self.wall_seconds

    def as_row(self) -> dict[str, object]:
        """Flat dictionary for table rendering."""
        row: dict[str, object] = {
            "cell": self.label,
            "operations": self.operations,
            "simulated_ops_per_s": round(self.simulated_ops_per_second, 2),
            "wall_ops_per_s": round(self.wall_ops_per_second, 2),
        }
        row.update({key: round(value, 4) for key, value in self.detail.items()})
        return row


def run_eager_update_experiment(
    dataset: GeneratedDataset,
    architecture: str,
    strategy: str,
    warmup: int = 200,
    timed: int = 300,
    alpha: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 4(A): average eager Update throughput after a warm-up phase."""
    trace = update_trace(dataset, warmup=warmup, timed=timed, seed=seed)
    view = build_maintained_view(
        dataset,
        architecture=architecture,
        strategy=strategy,
        approach="eager",
        alpha=alpha,
        warm_examples=trace.warm_examples(),
    )
    store = view.store
    start_sim = store.cost_snapshot()
    start_wall = time.perf_counter()
    view.absorb_many(trace.timed_examples())
    wall = time.perf_counter() - start_wall
    simulated = store.cost_snapshot() - start_sim
    stats = view.maintainer.stats
    return ExperimentResult(
        label=f"{architecture}/{strategy}",
        operations=len(trace.timed_examples()),
        wall_seconds=wall,
        simulated_seconds=simulated,
        detail={
            "reorganizations": float(stats.reorganizations),
            "tuples_reclassified": float(stats.tuples_reclassified),
            "avg_band_size": stats.average_band_size(),
        },
    )


def run_lazy_all_members_experiment(
    dataset: GeneratedDataset,
    architecture: str,
    strategy: str,
    warmup: int = 200,
    scans: int = 20,
    updates_between_scans: int = 5,
    alpha: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 4(B): All Members throughput in the lazy approach.

    Updates keep arriving between scans (``updates_between_scans``) so the
    water band never collapses to nothing, matching the repeated-query setup.
    """
    trace = update_trace(dataset, warmup=warmup, timed=scans * updates_between_scans, seed=seed)
    view = build_maintained_view(
        dataset,
        architecture=architecture,
        strategy=strategy,
        approach="lazy",
        alpha=alpha,
        warm_examples=trace.warm_examples(),
    )
    store = view.store
    timed = list(trace.timed_examples())
    start_sim = store.cost_snapshot()
    start_wall = time.perf_counter()
    cursor = 0
    for _ in range(scans):
        for _ in range(updates_between_scans):
            view.absorb(timed[cursor])
            cursor += 1
        view.maintainer.read_all_members(1)
    wall = time.perf_counter() - start_wall
    simulated = store.cost_snapshot() - start_sim
    stats = view.maintainer.stats
    return ExperimentResult(
        label=f"{architecture}/{strategy}",
        operations=scans,
        wall_seconds=wall,
        simulated_seconds=simulated,
        detail={
            "tuples_scanned": float(stats.tuples_scanned_for_reads),
            "reorganizations": float(stats.reorganizations),
        },
    )


def run_single_entity_experiment(
    dataset: GeneratedDataset,
    architecture: str,
    strategy: str,
    approach: str,
    warmup: int = 200,
    reads: int = 2000,
    buffer_fraction: float = 0.01,
    alpha: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 5 / 6(B): Single Entity read throughput."""
    trace = update_trace(dataset, warmup=warmup, timed=0, seed=seed)
    view = build_maintained_view(
        dataset,
        architecture=architecture,
        strategy=strategy,
        approach=approach,
        alpha=alpha,
        buffer_fraction=buffer_fraction,
        warm_examples=trace.warm_examples(),
    )
    ids = read_trace(dataset, reads, seed=seed + 1)
    store = view.store
    start_sim = store.cost_snapshot()
    start_wall = time.perf_counter()
    for entity_id in ids:
        view.maintainer.read_single(entity_id)
    wall = time.perf_counter() - start_wall
    simulated = store.cost_snapshot() - start_sim
    stats = view.maintainer.stats
    detail = {"epsmap_hits": float(stats.epsmap_hits)}
    if isinstance(store, HybridEntityStore):
        detail["buffer_served"] = float(store.buffer_served)
        detail["disk_served"] = float(store.disk_served)
    return ExperimentResult(
        label=f"{architecture}/{strategy}/{approach}",
        operations=reads,
        wall_seconds=wall,
        simulated_seconds=simulated,
        detail=detail,
    )
