"""The ``repro-bench`` console entry point.

Runs the figure-reproduction benchmark suite (``benchmarks/run_all.py``) from
a source checkout::

    repro-bench                      # every figure
    repro-bench fig4a serving        # a subset
    repro-bench --json results.json  # machine-readable output

The benchmark drivers live next to the repository (they are not installed as
package data), so the command locates the ``benchmarks/`` directory by walking
up from the current working directory; point ``REPRO_BENCH_DIR`` at it when
running from elsewhere.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

__all__ = ["main"]


def _find_benchmarks_dir() -> Path | None:
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        path = Path(override)
        return path if path.is_dir() else None
    current = Path.cwd().resolve()
    for candidate in (current, *current.parents):
        benchmarks = candidate / "benchmarks"
        if (benchmarks / "run_all.py").is_file():
            return benchmarks
    return None


def main(argv: list[str] | None = None) -> int:
    """Locate the benchmark suite and delegate to ``run_all.main``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    benchmarks = _find_benchmarks_dir()
    if benchmarks is None:
        print(
            "repro-bench: could not find a benchmarks/run_all.py above the current "
            "directory; run from a source checkout or set REPRO_BENCH_DIR.",
            file=sys.stderr,
        )
        return 2
    repo_root = benchmarks.parent
    if str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    from benchmarks import run_all

    run_all.main(argv)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
