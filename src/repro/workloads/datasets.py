"""Named dataset configurations mirroring the paper's Figure 3.

Each :class:`DatasetSpec` records the paper's reported statistics and a scaled
generator configuration; :func:`generate_dataset` materializes a
:class:`GeneratedDataset` holding the entity vectors, ground-truth labels, and
the statistics row the Figure 3 benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.linalg import SparseVector
from repro.workloads.synth_dense import DenseDatasetGenerator
from repro.workloads.synth_text import SparseCorpusGenerator

__all__ = [
    "DatasetSpec",
    "GeneratedDataset",
    "DATASETS",
    "forest_like",
    "dblife_like",
    "citeseer_like",
    "generate_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters for one of the paper's data sets plus its reported stats."""

    name: str
    abbreviation: str
    kind: str  # "dense" or "sparse"
    paper_size_bytes: int
    paper_entities: int
    paper_features: int
    paper_avg_nonzeros: int
    default_entities: int
    feature_dimension: int
    nonzeros_per_entity: int
    positive_fraction: float = 0.3
    class_count: int = 2

    def scaled_entities(self, scale: float) -> int:
        """Entity count at ``scale`` (1.0 = the repo default, not the paper size)."""
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        return max(10, int(self.default_entities * scale))


@dataclass
class GeneratedDataset:
    """A materialized synthetic data set: vectors, labels, and summary statistics."""

    spec: DatasetSpec
    entities: list[tuple[int, SparseVector]]
    labels: dict[int, int]
    multiclass_labels: dict[int, int] = field(default_factory=dict)

    def entity_count(self) -> int:
        """Number of generated entities."""
        return len(self.entities)

    def feature_dimension(self) -> int:
        """Dimensionality of the feature space."""
        return self.spec.feature_dimension

    def average_nonzeros(self) -> float:
        """Mean non-zero count per entity vector."""
        if not self.entities:
            return 0.0
        return sum(features.nnz() for _, features in self.entities) / len(self.entities)

    def approximate_size_bytes(self) -> int:
        """Approximate serialized size (the Figure 3 "Size" column)."""
        return sum(features.approx_size_bytes() + 16 for _, features in self.entities)

    def training_examples(
        self, count: int, seed: int = 0
    ) -> list[tuple[int, SparseVector, int]]:
        """Sample ``count`` labeled examples (with replacement) for update traces."""
        import random

        rng = random.Random(seed * 97 + 13)
        examples = []
        for _ in range(count):
            entity_id, features = self.entities[rng.randrange(len(self.entities))]
            examples.append((entity_id, features, self.labels[entity_id]))
        return examples

    def statistics_row(self) -> dict[str, object]:
        """The Figure 3 row for this data set (generated + paper-reported values)."""
        return {
            "dataset": self.spec.name,
            "abbrev": self.spec.abbreviation,
            "generated_entities": self.entity_count(),
            "generated_features": self.feature_dimension(),
            "generated_avg_nonzeros": round(self.average_nonzeros(), 1),
            "generated_size_bytes": self.approximate_size_bytes(),
            "paper_entities": self.spec.paper_entities,
            "paper_features": self.spec.paper_features,
            "paper_avg_nonzeros": self.spec.paper_avg_nonzeros,
            "paper_size_bytes": self.spec.paper_size_bytes,
        }


#: The three data sets of Figure 3, scaled to laptop-size defaults.
DATASETS: dict[str, DatasetSpec] = {
    "forest": DatasetSpec(
        name="Forest",
        abbreviation="FC",
        kind="dense",
        paper_size_bytes=73_000_000,
        paper_entities=582_000,
        paper_features=54,
        paper_avg_nonzeros=54,
        default_entities=4000,
        feature_dimension=54,
        nonzeros_per_entity=54,
        positive_fraction=0.36,
        class_count=7,
    ),
    "dblife": DatasetSpec(
        name="DBLife",
        abbreviation="DB",
        kind="sparse",
        paper_size_bytes=25_000_000,
        paper_entities=124_000,
        paper_features=41_000,
        paper_avg_nonzeros=7,
        default_entities=2500,
        feature_dimension=4100,
        nonzeros_per_entity=7,
        positive_fraction=0.25,
    ),
    "citeseer": DatasetSpec(
        name="Citeseer",
        abbreviation="CS",
        kind="sparse",
        paper_size_bytes=1_300_000_000,
        paper_entities=721_000,
        paper_features=682_000,
        paper_avg_nonzeros=60,
        default_entities=5000,
        feature_dimension=20_000,
        nonzeros_per_entity=60,
        positive_fraction=0.2,
    ),
}


def generate_dataset(spec: DatasetSpec | str, scale: float = 1.0, seed: int = 0) -> GeneratedDataset:
    """Materialize a synthetic data set matching ``spec`` at ``scale``."""
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key not in DATASETS:
            raise ConfigurationError(f"unknown dataset {spec!r}; known: {sorted(DATASETS)}")
        spec = DATASETS[key]
    count = spec.scaled_entities(scale)
    entities: list[tuple[int, SparseVector]] = []
    labels: dict[int, int] = {}
    multiclass: dict[int, int] = {}
    if spec.kind == "dense":
        generator = DenseDatasetGenerator(
            dimensions=spec.feature_dimension, class_count=spec.class_count, seed=seed
        )
        for example in generator.generate(count):
            entities.append((example.entity_id, example.features))
            labels[example.entity_id] = example.label
            multiclass[example.entity_id] = example.multiclass_label
    else:
        generator = SparseCorpusGenerator(
            vocabulary_size=spec.feature_dimension,
            nonzeros_per_document=spec.nonzeros_per_entity,
            positive_fraction=spec.positive_fraction,
            seed=seed,
        )
        for document in generator.generate(count):
            entities.append((document.entity_id, document.features))
            labels[document.entity_id] = document.label
    return GeneratedDataset(spec=spec, entities=entities, labels=labels, multiclass_labels=multiclass)


def forest_like(scale: float = 1.0, seed: int = 0) -> GeneratedDataset:
    """The dense Forest-like data set (FC)."""
    return generate_dataset("forest", scale=scale, seed=seed)


def dblife_like(scale: float = 1.0, seed: int = 0) -> GeneratedDataset:
    """The sparse DBLife-like data set (DB)."""
    return generate_dataset("dblife", scale=scale, seed=seed)


def citeseer_like(scale: float = 1.0, seed: int = 0) -> GeneratedDataset:
    """The sparse Citeseer-like data set (CS)."""
    return generate_dataset("citeseer", scale=scale, seed=seed)
