"""Update and read traces: the operation sequences the benchmarks replay."""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.learn.sgd import TrainingExample
from repro.workloads.datasets import GeneratedDataset

__all__ = ["UpdateTrace", "update_trace", "read_trace", "interleaved_trace"]


@dataclass(frozen=True)
class UpdateTrace:
    """A sequence of training examples plus the warm-up prefix length.

    The paper's eager-update experiment trains a *warm* model with 12k examples
    before measuring 3k timed updates; ``warmup`` marks that split point.
    """

    examples: tuple[TrainingExample, ...]
    warmup: int = 0

    def warm_examples(self) -> tuple[TrainingExample, ...]:
        """The warm-up prefix (absorbed before timing starts)."""
        return self.examples[: self.warmup]

    def timed_examples(self) -> tuple[TrainingExample, ...]:
        """The examples whose updates are measured."""
        return self.examples[self.warmup :]

    def __len__(self) -> int:
        return len(self.examples)


def update_trace(
    dataset: GeneratedDataset, warmup: int, timed: int, seed: int = 0
) -> UpdateTrace:
    """Build an update trace by sampling labeled entities from ``dataset``."""
    if warmup < 0 or timed < 0:
        raise ConfigurationError("warmup and timed counts must be non-negative")
    samples = dataset.training_examples(warmup + timed, seed=seed)
    examples = tuple(
        TrainingExample(entity_id=entity_id, features=features, label=label)
        for entity_id, features, label in samples
    )
    return UpdateTrace(examples=examples, warmup=warmup)


def read_trace(dataset: GeneratedDataset, count: int, seed: int = 0) -> list[int]:
    """Uniformly random entity ids for Single Entity read experiments."""
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    rng = random.Random(seed * 31 + 7)
    ids = [entity_id for entity_id, _ in dataset.entities]
    return [ids[rng.randrange(len(ids))] for _ in range(count)]


def interleaved_trace(
    dataset: GeneratedDataset,
    updates: int,
    reads_per_update: int,
    seed: int = 0,
) -> Iterator[tuple[str, object]]:
    """A mixed workload: ``("update", TrainingExample)`` and ``("read", entity_id)`` events.

    Used by integration tests and the quickstart example to exercise the
    read/write interleavings a live application would produce.
    """
    if updates < 0 or reads_per_update < 0:
        raise ConfigurationError("counts must be non-negative")
    rng = random.Random(seed * 131 + 17)
    samples = dataset.training_examples(updates, seed=seed + 1)
    ids: Sequence[int] = [entity_id for entity_id, _ in dataset.entities]
    for entity_id, features, label in samples:
        yield "update", TrainingExample(entity_id=entity_id, features=features, label=label)
        for _ in range(reads_per_update):
            yield "read", ids[rng.randrange(len(ids))]
