"""Dense tabular data generator (Forest / MAGIC / ADULT stand-in).

Entities are dense vectors of a fixed small dimensionality; labels come from a
hidden linear (binary) or multi-prototype (multiclass) model plus configurable
noise.  Dimensionality 54 with 7 classes matches the Forest Covertype data set
the paper treats as its dense benchmark.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.linalg import SparseVector

__all__ = ["DenseExample", "DenseDatasetGenerator"]


@dataclass(frozen=True)
class DenseExample:
    """One generated dense entity: id, l2-normalized feature vector, labels."""

    entity_id: int
    features: SparseVector
    label: int
    multiclass_label: int


class DenseDatasetGenerator:
    """Generates dense, approximately linearly separable entities.

    Parameters
    ----------
    dimensions:
        Feature dimensionality (54 for the Forest-like configuration).
    class_count:
        Number of multiclass labels; the binary label is "largest class vs
        rest", exactly how the paper binarizes Forest.
    label_noise:
        Probability of flipping the binary label / resampling the class.
    """

    def __init__(
        self,
        dimensions: int = 54,
        class_count: int = 7,
        label_noise: float = 0.05,
        seed: int = 0,
    ):
        if dimensions < 2:
            raise ConfigurationError("dimensions must be >= 2")
        if class_count < 2:
            raise ConfigurationError("class_count must be >= 2")
        if not 0.0 <= label_noise < 0.5:
            raise ConfigurationError("label_noise must be in [0, 0.5)")
        self.dimensions = dimensions
        self.class_count = class_count
        self.label_noise = label_noise
        self.seed = seed
        rng = random.Random(seed * 7_919 + 1)
        # One prototype direction per class; the hidden truth assigns each entity
        # to its nearest prototype (by dot product).
        self._prototypes = [
            [rng.gauss(0.0, 1.0) for _ in range(dimensions)] for _ in range(class_count)
        ]

    def _score(self, values: list[float], prototype: list[float]) -> float:
        return sum(v * p for v, p in zip(values, prototype))

    def generate(self, count: int, start_id: int = 0) -> Iterator[DenseExample]:
        """Yield ``count`` entities with ids ``start_id .. start_id + count - 1``."""
        rng = random.Random(self.seed * 1_000_003 + start_id * 31 + count)
        for offset in range(count):
            entity_id = start_id + offset
            values = [rng.gauss(0.0, 1.0) for _ in range(self.dimensions)]
            scores = [self._score(values, prototype) for prototype in self._prototypes]
            multiclass_label = max(range(self.class_count), key=lambda c: scores[c])
            if rng.random() < self.label_noise:
                multiclass_label = rng.randrange(self.class_count)
            binary_label = 1 if multiclass_label == 0 else -1
            vector = SparseVector.from_dense(values).normalized(p=2.0)
            yield DenseExample(
                entity_id=entity_id,
                features=vector,
                label=binary_label,
                multiclass_label=multiclass_label,
            )

    def generate_list(self, count: int, start_id: int = 0) -> list[DenseExample]:
        """Materialized convenience wrapper around :meth:`generate`."""
        return list(self.generate(count, start_id))
