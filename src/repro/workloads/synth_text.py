"""Sparse bag-of-words corpus generator (DBLife / Citeseer stand-in).

Documents are generated from a two-topic mixture model: half the vocabulary
leans "database papers", the other half leans "background", and every document
mixes the two halves with a continuous, document-specific weight.  Term
popularity within each half is Zipf-like, so a few hundred frequent terms
carry most of the signal — which is what lets the paper's linear classifiers
learn from a modest number of training examples on real text.

Feature vectors are term frequencies normalized for document length: the tf
vector is l1-normalized and then rescaled to the configured average document
length, so every document contributes the same total mass regardless of its
raw length (the paper's motivation for l1 normalization) while individual term
weights stay O(1).

Because the topic mixture is continuous, a small fraction of documents always
sits near the decision boundary; those are the tuples that populate the
low/high-water band (paper Figure 13).
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.linalg import SparseVector

__all__ = ["SyntheticDocument", "SparseCorpusGenerator"]


@dataclass(frozen=True)
class SyntheticDocument:
    """One generated document: id, raw text, sparse feature vector, true label."""

    entity_id: int
    text: str
    features: SparseVector
    label: int


class SparseCorpusGenerator:
    """Generates sparse, topic-mixture documents with ground-truth labels.

    Parameters
    ----------
    vocabulary_size:
        Number of distinct terms (the feature dimensionality).
    nonzeros_per_document:
        Average number of term draws per document (document length).
    positive_fraction:
        Fraction of documents in the positive ("database") class.
    label_noise:
        Probability that a document's label is flipped.
    seed:
        RNG seed; the generator is fully deterministic given it.
    """

    def __init__(
        self,
        vocabulary_size: int = 1000,
        nonzeros_per_document: int = 20,
        positive_fraction: float = 0.3,
        label_noise: float = 0.02,
        seed: int = 0,
    ):
        if vocabulary_size < 4:
            raise ConfigurationError("vocabulary_size must be >= 4")
        if nonzeros_per_document < 1:
            raise ConfigurationError("nonzeros_per_document must be >= 1")
        if not 0.0 < positive_fraction < 1.0:
            raise ConfigurationError("positive_fraction must be in (0, 1)")
        if not 0.0 <= label_noise < 0.5:
            raise ConfigurationError("label_noise must be in [0, 0.5)")
        self.vocabulary_size = vocabulary_size
        self.nonzeros_per_document = nonzeros_per_document
        self.positive_fraction = positive_fraction
        self.label_noise = label_noise
        self.seed = seed
        # The first half of the vocabulary is the "database" topic, the second
        # half the background topic.
        self._topic_split = max(2, vocabulary_size // 2)
        # Zipf-like term popularity within each topic half.
        self._zipf_skew = 3.0

    def _word(self, index: int) -> str:
        return f"term{index}"

    def _sample_term(self, rng: random.Random, positive_topic: bool) -> int:
        half = self._topic_split if positive_topic else self.vocabulary_size - self._topic_split
        offset = 0 if positive_topic else self._topic_split
        rank = int(half * (rng.random() ** self._zipf_skew))
        return offset + min(rank, half - 1)

    def generate(self, count: int, start_id: int = 0) -> Iterator[SyntheticDocument]:
        """Yield ``count`` documents with ids ``start_id .. start_id + count - 1``."""
        rng = random.Random(self.seed * 1_000_003 + start_id * 31 + count)
        for offset in range(count):
            entity_id = start_id + offset
            is_positive = rng.random() < self.positive_fraction
            # Continuous topic mixture: documents with mixture near 0.5 are
            # genuinely ambiguous and will sit near the decision boundary.
            if is_positive:
                mixture = 0.5 + 0.45 * rng.random()
            else:
                mixture = 0.5 - 0.45 * rng.random()
            nnz = max(
                1, int(rng.gauss(self.nonzeros_per_document, self.nonzeros_per_document * 0.2))
            )
            counts: dict[int, int] = {}
            for _ in range(nnz):
                index = self._sample_term(rng, rng.random() < mixture)
                counts[index] = counts.get(index, 0) + 1
            # Length-normalized term frequencies: l1-normalize, then rescale to
            # the average document length so term weights stay O(1).
            vector = (
                SparseVector({i: float(c) for i, c in counts.items()})
                .normalized(p=1.0)
                .scale(float(self.nonzeros_per_document))
            )
            label = 1 if is_positive else -1
            if rng.random() < self.label_noise:
                label = -label
            words = []
            for index, term_count in counts.items():
                words.extend([self._word(index)] * term_count)
            rng.shuffle(words)
            yield SyntheticDocument(
                entity_id=entity_id,
                text=" ".join(words),
                features=vector,
                label=label,
            )

    def generate_list(self, count: int, start_id: int = 0) -> list[SyntheticDocument]:
        """Materialized convenience wrapper around :meth:`generate`."""
        return list(self.generate(count, start_id))

    def average_nonzeros(self, documents: list[SyntheticDocument]) -> float:
        """Mean number of non-zero features across ``documents`` (Figure 3's last column)."""
        if not documents:
            return 0.0
        return sum(doc.features.nnz() for doc in documents) / len(documents)
