"""Synthetic workloads standing in for the paper's data sets.

The paper evaluates on Forest (dense, 582k entities, 54 features), DBLife
(sparse titles, 124k entities, 41k features, ~7 non-zeros) and Citeseer
(sparse abstracts, 721k entities, 682k features, ~60 non-zeros).  Those corpora
are not redistributable here, so :mod:`repro.workloads.datasets` provides
generators that reproduce their *shape* — entity count, feature dimensionality,
sparsity, and linear separability with label noise — scaled down to laptop
size.  Every generator is seeded and deterministic.
"""

from repro.workloads.datasets import (
    DATASETS,
    DatasetSpec,
    GeneratedDataset,
    citeseer_like,
    dblife_like,
    forest_like,
    generate_dataset,
)
from repro.workloads.synth_dense import DenseDatasetGenerator
from repro.workloads.synth_text import SparseCorpusGenerator, SyntheticDocument
from repro.workloads.trace import UpdateTrace, interleaved_trace, read_trace, update_trace

__all__ = [
    "SparseCorpusGenerator",
    "SyntheticDocument",
    "DenseDatasetGenerator",
    "DatasetSpec",
    "GeneratedDataset",
    "DATASETS",
    "forest_like",
    "dblife_like",
    "citeseer_like",
    "generate_dataset",
    "UpdateTrace",
    "update_trace",
    "read_trace",
    "interleaved_trace",
]
