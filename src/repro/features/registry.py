"""Registration of feature functions, mirroring Hazy's catalog (Appendix A.2)."""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import FeatureError
from repro.features.bag_of_words import TfBagOfWords
from repro.features.base import FeatureFunction
from repro.features.dense import DenseColumnsFeature
from repro.features.tfidf import TfIdfBagOfWords
from repro.features.tficf import TfIcfBagOfWords

__all__ = ["FeatureFunctionRegistry", "default_registry"]

FeatureFactory = Callable[[], FeatureFunction]


class FeatureFunctionRegistry:
    """Name -> factory mapping used to resolve ``FEATURE FUNCTION <name>``."""

    def __init__(self) -> None:
        self._factories: dict[str, FeatureFactory] = {}

    def register(self, name: str, factory: FeatureFactory, replace: bool = False) -> None:
        """Register a feature-function factory under ``name``."""
        key = name.strip().lower()
        if key in self._factories and not replace:
            raise FeatureError(f"feature function {name!r} is already registered")
        self._factories[key] = factory

    def create(self, name: str) -> FeatureFunction:
        """Instantiate the feature function registered under ``name``."""
        key = name.strip().lower()
        if key not in self._factories:
            raise FeatureError(
                f"unknown feature function {name!r}; registered: {sorted(self._factories)}"
            )
        return self._factories[key]()

    def names(self) -> list[str]:
        """Sorted list of registered names."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._factories


def default_registry() -> FeatureFunctionRegistry:
    """The registry an administrator would ship with Hazy: the paper's examples."""
    registry = FeatureFunctionRegistry()
    registry.register("tf_bag_of_words", TfBagOfWords)
    registry.register("tf_idf_bag_of_words", TfIdfBagOfWords)
    registry.register("tf_icf_bag_of_words", TfIcfBagOfWords)
    registry.register(
        "dense_columns", lambda: DenseColumnsFeature(columns=("f0",), rescale=False)
    )
    return registry
