"""TF-ICF: term frequency, inverse *corpus* frequency (Appendix A.2).

Unlike tf-idf, the corpus frequencies are computed once from a reference
corpus and are explicitly *not* updated as new documents arrive — the paper
cites Reed et al. (ICMLA 2006) for this scheme, which trades a small quality
loss for fully streaming behaviour.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.features.base import EntityRow, FeatureFunction, collect_text
from repro.features.text import Vocabulary, tokenize
from repro.linalg import SparseVector

__all__ = ["TfIcfBagOfWords"]


class TfIcfBagOfWords(FeatureFunction):
    """tf-icf bag of words: corpus frequencies frozen after the initial scan."""

    name = "tf_icf_bag_of_words"
    norm_q = 2.0

    def __init__(self, text_columns: tuple[str, ...] = ("text",), normalize: bool = True):
        self.text_columns = tuple(text_columns)
        self.normalize = bool(normalize)
        self.vocabulary = Vocabulary()
        self.corpus_frequency: dict[int, int] = {}
        self.corpus_size = 0
        self._frozen = False

    def _tokens(self, row: EntityRow) -> list[str]:
        return tokenize(collect_text(row, self.text_columns))

    def compute_stats(self, rows: Iterable[EntityRow]) -> None:
        """Scan the reference corpus once, then freeze the statistics."""
        for row in rows:
            self.corpus_size += 1
            for token in set(self._tokens(row)):
                index = self.vocabulary.get_or_add(token)
                self.corpus_frequency[index] = self.corpus_frequency.get(index, 0) + 1
        self._frozen = True

    def compute_stats_incremental(self, row: EntityRow) -> None:
        """Explicitly a no-op once frozen: TF-ICF never updates corpus frequencies."""
        if not self._frozen:
            self.corpus_size += 1
            for token in set(self._tokens(row)):
                index = self.vocabulary.get_or_add(token)
                self.corpus_frequency[index] = self.corpus_frequency.get(index, 0) + 1

    def freeze(self) -> None:
        """Freeze the corpus statistics (further documents will not change them)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        """Whether the corpus statistics have been frozen."""
        return self._frozen

    def inverse_corpus_frequency(self, index: int) -> float:
        """Smoothed icf for a vocabulary index."""
        cf = self.corpus_frequency.get(index, 0)
        return math.log((1.0 + self.corpus_size) / (1.0 + cf)) + 1.0

    def compute_feature(self, row: EntityRow) -> SparseVector:
        """tf-icf vector for the row (unseen tokens get the maximum icf)."""
        counts = Counter(self._tokens(row))
        vector = SparseVector()
        for token, count in counts.items():
            index = self.vocabulary.get_or_add(token)
            vector[index] = float(count) * self.inverse_corpus_frequency(index)
        if self.normalize:
            vector = vector.normalized(p=2.0)
        return vector

    def dimension(self) -> int | None:
        """Current vocabulary size."""
        return len(self.vocabulary)
