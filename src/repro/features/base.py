"""The feature-function protocol (computeStats / computeStatsInc / computeFeature)."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping

from repro.linalg import SparseVector

__all__ = ["FeatureFunction", "collect_text"]

#: An entity tuple as seen by a feature function: a mapping from column name to value.
EntityRow = Mapping[str, object]


def collect_text(row: EntityRow, text_columns: Iterable[str]) -> str:
    """Concatenate the configured text columns of ``row``.

    When *none* of the configured columns exist in the tuple, every
    string-valued column is used instead — so a view declared over a table
    whose text lives in ``title`` (as in the paper's Example 2.1) still gets
    real features from the default ``tf_*`` configurations instead of
    silently classifying on empty vectors.
    """
    columns = [column for column in text_columns if column in row]
    if not columns:
        columns = [column for column, value in row.items() if isinstance(value, str)]
    return " ".join(str(row.get(column, "") or "") for column in columns)


class FeatureFunction(ABC):
    """Maps entity tuples to feature vectors, optionally using corpus statistics.

    Subclasses override :meth:`compute_feature` and, when they need global
    information, :meth:`compute_stats` / :meth:`compute_stats_incremental`.
    ``norm_q`` advertises which q-norm bound the feature vectors obey — the
    Hazy core uses it to pick the Hölder conjugate pair (see
    :mod:`repro.core.bounds`).
    """

    #: Registry name; subclasses must override.
    name: str = "feature_function"

    #: The q of the `q`-norm that the produced vectors are normalized under.
    #: Text features are l1-normalized (q = 1, so p = inf); dense numeric
    #: features are l2-normalized (q = 2, p = 2).
    norm_q: float = 1.0

    def compute_stats(self, rows: Iterable[EntityRow]) -> None:
        """Scan the corpus once and record any global statistics.

        The default implementation simply folds every row through
        :meth:`compute_stats_incremental`.
        """
        for row in rows:
            self.compute_stats_incremental(row)

    def compute_stats_incremental(self, row: EntityRow) -> None:
        """Fold a single new tuple into the corpus statistics (no-op by default)."""

    @abstractmethod
    def compute_feature(self, row: EntityRow) -> SparseVector:
        """Turn one entity tuple into a feature vector."""

    def dimension(self) -> int | None:
        """Dimensionality of the feature space, if known (None if unbounded)."""
        return None  # noqa: RET501

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
