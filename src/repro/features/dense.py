"""Dense numeric feature function for tabular data sets such as Forest."""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import FeatureError
from repro.features.base import EntityRow, FeatureFunction
from repro.linalg import SparseVector

__all__ = ["DenseColumnsFeature"]


class DenseColumnsFeature(FeatureFunction):
    """Feature vector built from a fixed list of numeric columns.

    Corpus statistics (per-column min/max) are maintained so vectors can be
    rescaled to [0, 1]; this matches how the dense UCI-style data sets
    (Forest, MAGIC, ADULT) are prepared before training.
    """

    name = "dense_columns"
    norm_q = 2.0

    def __init__(self, columns: Sequence[str], rescale: bool = True, normalize: bool = True):
        if not columns:
            raise FeatureError("DenseColumnsFeature requires at least one column")
        self.columns = tuple(columns)
        self.rescale = bool(rescale)
        self.normalize = bool(normalize)
        self._minimums: dict[str, float] = {}
        self._maximums: dict[str, float] = {}

    def compute_stats_incremental(self, row: EntityRow) -> None:
        """Track per-column min/max for rescaling."""
        for column in self.columns:
            value = float(row.get(column, 0.0) or 0.0)
            if column not in self._minimums or value < self._minimums[column]:
                self._minimums[column] = value
            if column not in self._maximums or value > self._maximums[column]:
                self._maximums[column] = value

    def _scaled(self, column: str, value: float) -> float:
        if not self.rescale or column not in self._minimums:
            return value
        low, high = self._minimums[column], self._maximums[column]
        if high == low:
            return 0.0
        return (value - low) / (high - low)

    def compute_feature(self, row: EntityRow) -> SparseVector:
        """Vector of the configured numeric columns (rescaled, l2-normalized)."""
        vector = SparseVector()
        for position, column in enumerate(self.columns):
            value = float(row.get(column, 0.0) or 0.0)
            vector[position] = self._scaled(column, value)
        if self.normalize:
            vector = vector.normalized(p=2.0)
        return vector

    def dimension(self) -> int:
        """Fixed dimensionality: one component per configured column."""
        return len(self.columns)
