"""Tokenization and vocabulary helpers for the text feature functions."""

from __future__ import annotations

import re
from collections.abc import Iterable

__all__ = ["tokenize", "Vocabulary"]

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lower-case and split ``text`` into alphanumeric tokens."""
    return _TOKEN_PATTERN.findall(text.lower())


class Vocabulary:
    """A growable token -> integer-index mapping shared by text feature functions."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def get(self, token: str) -> int | None:
        """Index for ``token`` or None if unseen."""
        return self._index.get(token)

    def get_or_add(self, token: str) -> int:
        """Index for ``token``, allocating a new one for unseen tokens."""
        index = self._index.get(token)
        if index is None:
            index = len(self._index)
            self._index[token] = index
        return index

    def add_all(self, tokens: Iterable[str]) -> None:
        """Register every token in ``tokens``."""
        for token in tokens:
            self.get_or_add(token)

    def tokens(self) -> list[str]:
        """All known tokens in index order."""
        ordered = sorted(self._index.items(), key=lambda item: item[1])
        return [token for token, _ in ordered]
