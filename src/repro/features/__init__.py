"""Feature functions (paper §2.1 and Appendix A.2).

A feature function maps an entity tuple to a feature vector.  Following the
paper, a feature function is a triple of operations:

* ``compute_stats`` — scan the whole corpus once and record any global
  statistics (e.g. document frequencies for tf-idf);
* ``compute_stats_incremental`` — fold one new tuple into those statistics;
* ``compute_feature`` — turn one tuple into a :class:`~repro.linalg.SparseVector`
  using the recorded statistics.

Feature functions are registered by name in a :class:`FeatureFunctionRegistry`
so that ``CREATE CLASSIFICATION VIEW ... FEATURE FUNCTION tf_bag_of_words``
can resolve them, exactly as Hazy's catalog does.
"""

from repro.features.bag_of_words import TfBagOfWords
from repro.features.base import FeatureFunction
from repro.features.dense import DenseColumnsFeature
from repro.features.registry import FeatureFunctionRegistry, default_registry
from repro.features.text import tokenize
from repro.features.tfidf import TfIdfBagOfWords
from repro.features.tficf import TfIcfBagOfWords

__all__ = [
    "FeatureFunction",
    "TfBagOfWords",
    "TfIdfBagOfWords",
    "TfIcfBagOfWords",
    "DenseColumnsFeature",
    "FeatureFunctionRegistry",
    "default_registry",
    "tokenize",
]
