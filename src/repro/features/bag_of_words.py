"""``tf_bag_of_words`` — term-frequency bag of words (paper §2.1).

No corpus statistics are needed: each tuple is treated as a document and the
vector of term frequencies, l1-normalized, is the feature vector.  This is the
feature function used by the DBLife and Citeseer workloads.
"""

from __future__ import annotations

from collections import Counter

from repro.features.base import EntityRow, FeatureFunction, collect_text
from repro.features.text import Vocabulary, tokenize
from repro.linalg import SparseVector

__all__ = ["TfBagOfWords"]


class TfBagOfWords(FeatureFunction):
    """Term-frequency bag of words over one or more text columns.

    Parameters
    ----------
    text_columns:
        Which columns of the entity tuple hold text; they are concatenated.
    normalize:
        l1-normalize the resulting vector (the paper's default for text, which
        compensates for documents of different lengths).
    """

    name = "tf_bag_of_words"
    norm_q = 1.0

    def __init__(self, text_columns: tuple[str, ...] = ("text",), normalize: bool = True):
        self.text_columns = tuple(text_columns)
        self.normalize = bool(normalize)
        self.vocabulary = Vocabulary()

    def _tokens(self, row: EntityRow) -> list[str]:
        return tokenize(collect_text(row, self.text_columns))

    def compute_stats_incremental(self, row: EntityRow) -> None:
        """Register any new tokens so indices stay stable across the corpus."""
        self.vocabulary.add_all(self._tokens(row))

    def compute_feature(self, row: EntityRow) -> SparseVector:
        """Term-frequency vector of the row's text, l1-normalized if configured."""
        counts = Counter(self._tokens(row))
        vector = SparseVector(
            {self.vocabulary.get_or_add(token): float(count) for token, count in counts.items()}
        )
        if self.normalize:
            vector = vector.normalized(p=1.0)
        return vector

    def dimension(self) -> int | None:
        """Current vocabulary size (grows as new documents arrive)."""
        return len(self.vocabulary)
