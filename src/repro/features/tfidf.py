"""``tf_idf_bag_of_words`` — tf-idf scoring with incrementally maintained idf.

This is the paper's example of a feature function that needs the full
catalog-backed protocol: ``compute_stats`` scans the corpus to count document
frequencies, ``compute_stats_incremental`` folds one new document into those
counts, and ``compute_feature`` combines term frequencies with the stored
inverse document frequencies.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.exceptions import FeatureError
from repro.features.base import EntityRow, FeatureFunction, collect_text
from repro.features.text import Vocabulary, tokenize
from repro.linalg import SparseVector

__all__ = ["TfIdfBagOfWords"]


class TfIdfBagOfWords(FeatureFunction):
    """tf-idf bag of words with incrementally maintained document frequencies."""

    name = "tf_idf_bag_of_words"
    norm_q = 2.0

    def __init__(self, text_columns: tuple[str, ...] = ("text",), normalize: bool = True):
        self.text_columns = tuple(text_columns)
        self.normalize = bool(normalize)
        self.vocabulary = Vocabulary()
        self.document_frequency: dict[int, int] = {}
        self.document_count = 0

    def _tokens(self, row: EntityRow) -> list[str]:
        return tokenize(collect_text(row, self.text_columns))

    def compute_stats_incremental(self, row: EntityRow) -> None:
        """Fold one document into the document-frequency table."""
        self.document_count += 1
        for token in set(self._tokens(row)):
            index = self.vocabulary.get_or_add(token)
            self.document_frequency[index] = self.document_frequency.get(index, 0) + 1

    def inverse_document_frequency(self, index: int) -> float:
        """Smoothed idf for a vocabulary index."""
        df = self.document_frequency.get(index, 0)
        return math.log((1.0 + self.document_count) / (1.0 + df)) + 1.0

    def compute_feature(self, row: EntityRow) -> SparseVector:
        """tf-idf vector for the row; requires stats to have been computed."""
        if self.document_count == 0:
            raise FeatureError(
                "tf_idf_bag_of_words.compute_feature called before compute_stats; "
                "scan the corpus (or insert documents through the engine) first"
            )
        counts = Counter(self._tokens(row))
        vector = SparseVector()
        for token, count in counts.items():
            index = self.vocabulary.get_or_add(token)
            vector[index] = float(count) * self.inverse_document_frequency(index)
        if self.normalize:
            vector = vector.normalized(p=2.0)
        return vector

    def dimension(self) -> int | None:
        """Current vocabulary size."""
        return len(self.vocabulary)
