"""``SQLServer``: the SQL-over-socket front door.

One :class:`SQLServer` listens on a TCP socket and speaks the frame protocol
of :mod:`repro.net.protocol`.  Each accepted socket is handled by its own
thread and mapped onto a **server-side** :func:`repro.connect` connection
over the shared engine — so every wire connection gets exactly the semantics
an in-process connection has:

* its own prepared-statement LRU (repeats re-bind ``?`` without re-planning);
* its own :class:`~repro.serve.sync.SessionRegistry`, hence monotonic
  read-your-writes against every served view, *per wire connection*;
* structured errors: a server-side :class:`~repro.exceptions.SQLSyntaxError`
  or ``SQLPlanningError`` crosses the wire with ``position``/``token`` intact.

Every statement passes the :class:`~repro.net.admission.AdmissionController`
before it executes: point reads and bulk work queue in separate lanes so
All-Members scans cannot starve point reads under load.  Per-lane depth and
wait metrics are mirrored into the engine database's metrics registry as a
lazy ``net.admission`` pull provider, the server's own counters as
``net.server``, and the live connection roster is queryable in SQL through
the virtual ``system.connections`` table.

A client that dies ungracefully — mid-frame, mid-statement, or with writes
still in flight — is *reaped*: its handler closes the server-side connection
(releasing its view sessions), the socket is torn down, and the roster row
disappears.  Queued writes it issued before dying remain in the maintenance
pipeline and apply normally; the served view stays consistent.

``main()`` is the ``repro-serve`` console entry point: it builds a fresh
in-process stack, optionally executes a bootstrap SQL script, then serves
until SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import itertools
import signal
import socket
import sys
import threading
import time

from repro.exceptions import HazyError, NetworkError, ProtocolError
from repro.net.admission import (
    BULK_LANE,
    POINT_LANE,
    AdmissionController,
    lane_for,
)
from repro.net.protocol import (
    PROTOCOL_VERSION,
    encode_error,
    read_frame,
    write_frame,
)

__all__ = ["SQLServer", "main"]

_SERVER_IDS = itertools.count(1)


class _Handler:
    """One wire connection: socket + server-side connection + counters."""

    def __init__(self, server: "SQLServer", sock: socket.socket, remote) -> None:
        from repro.connection import connect

        self.server = server
        self.sock = sock
        self.remote = f"{remote[0]}:{remote[1]}" if isinstance(remote, tuple) else str(remote)
        self.connection = connect(engine=server.engine)
        self.name = self.connection.name
        self.connected_at = time.perf_counter()
        self.state = "idle"
        #: How the session ended: "live" while running, then "goodbye"
        #: (explicit), "eof" (socket closed between frames) or "error"
        #: (died mid-frame/mid-statement — the reaped case).
        self.parted = "live"
        self.current_lane: str | None = None
        self.statements_total = 0
        self.point_statements_total = 0
        self.bulk_statements_total = 0
        self.errors_total = 0
        self.thread = threading.Thread(
            target=self._run, name=f"repro-net-{self.name}", daemon=True
        )

    # -- the request loop ----------------------------------------------------------------

    def _run(self) -> None:
        try:
            write_frame(
                self.sock,
                {
                    "server": "repro-serve",
                    "protocol": PROTOCOL_VERSION,
                    "connection": self.name,
                },
            )
            while True:
                request = read_frame(self.sock, eof_ok=True)
                if request is None:  # clean EOF between frames
                    self.parted = "eof"
                    break
                if not self._serve_one(request):
                    self.parted = "goodbye"
                    break
        except NetworkError:
            # Truncated frame, reset socket, failed response write: the peer
            # is gone or unintelligible — reap without taking the server down.
            self.parted = "error"
        finally:
            self.server._reap(self)

    def _serve_one(self, request: dict) -> bool:
        """Handle one request frame; False ends the session (goodbye)."""
        op = request.get("op")
        try:
            if op == "goodbye":
                write_frame(self.sock, {"ok": True, "goodbye": True})
                return False
            if op == "query":
                response = self._execute_query(request)
            elif op == "executemany":
                response = self._execute_many(request)
            elif op == "ping":
                response = {"ok": True, "pong": True}
            else:
                raise ProtocolError(f"unknown operation {op!r}")
        except HazyError as error:
            self.errors_total += 1
            self.server._count_error()
            response = {"ok": False, "error": encode_error(error)}
        except Exception as error:  # noqa: BLE001 — internal fault must not leak
            self.errors_total += 1
            self.server._count_error()
            response = {
                "ok": False,
                "error": {"type": "InternalError", "message": f"{type(error).__name__}: {error}"},
            }
        finally:
            self.state = "idle"
            self.current_lane = None
        write_frame(self.sock, response)
        return True

    def _admission_timeout(self, request: dict) -> float | None:
        options = request.get("options") or {}
        timeout = options.get("admission_timeout_s")
        return float(timeout) if timeout is not None else self.server.admission_timeout_s

    def _execute_query(self, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("query frame carries no 'sql' string")
        parameters = request.get("params") or []
        # Classify before admission: parse/plan are cheap, cached per wire
        # connection, and the lane choice needs the plan's access shape.
        prepared = self.connection.prepare(sql)
        lane = lane_for(prepared.statement, prepared.plan)
        self.state = "queued"
        self.current_lane = lane
        with self.server.admission.admit(lane, timeout=self._admission_timeout(request)):
            self.state = "executing"
            result = self.connection._execute(sql, parameters)
        self.statements_total += 1
        self.server._count_statement()
        if lane == POINT_LANE:
            self.point_statements_total += 1
        else:
            self.bulk_statements_total += 1
        # ``rows`` deliberately last: the protocol's incremental encoder emits
        # large row lists at the end of the payload, so this order keeps the
        # frame bytes identical to a monolithic json.dumps of this dict.
        return {
            "ok": True,
            "rowcount": result.rowcount,
            "statement_type": result.statement_type,
            "rows": result.rows,
        }

    def _execute_many(self, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("executemany frame carries no 'sql' string")
        parameter_rows = request.get("param_rows") or []
        self.state = "queued"
        self.current_lane = BULK_LANE
        with self.server.admission.admit(BULK_LANE, timeout=self._admission_timeout(request)):
            self.state = "executing"
            total = self.connection._executemany(sql, parameter_rows)
        self.statements_total += 1
        self.server._count_statement()
        self.bulk_statements_total += 1
        return {"ok": True, "rowcount": total, "statement_type": "EXECUTEMANY"}

    # -- observability / teardown --------------------------------------------------------

    def row(self) -> dict[str, object]:
        """This connection's ``system.connections`` row."""
        return {
            "connection": self.name,
            "remote": self.remote,
            "state": self.state,
            "lane": self.current_lane,
            "statements_total": self.statements_total,
            "point_statements_total": self.point_statements_total,
            "bulk_statements_total": self.bulk_statements_total,
            "errors_total": self.errors_total,
            "connected_seconds": round(time.perf_counter() - self.connected_at, 3),
        }

    def shutdown(self) -> None:
        """Stop reading new requests; an in-flight response may still write."""
        try:
            self.sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass

    def teardown(self) -> None:
        """Release the server-side connection and the socket (idempotent)."""
        try:
            self.connection.close()
        except Exception:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SQLServer:
    """Serve an engine's SQL surface over TCP.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.HazyEngine` whose database and served
        views this server fronts.  The server never owns the engine's
        lifecycle — closing the server leaves serving intact.
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back from
        ``server.port`` after :meth:`start`).
    max_connections:
        Accepted-socket cap; excess dials are refused with a structured error.
    admission:
        A preconfigured :class:`AdmissionController`; default builds one from
        ``slots``/``queue_capacity``/``point_weight``/``bulk_weight``.
    admission_timeout_s:
        Default lane-wait deadline per statement (None = wait forever);
        clients can override per statement via the request's options.
    """

    # Shared-state contract, enforced by repro-lint's lock pass: handler
    # threads, the accept loop, and observability readers all touch these.
    _GUARDED_BY = {
        "_handlers": "_lock",
        "statements_total": "_lock",
        "errors_total": "_lock",
        "connections_total": "_lock",
        "reaped_total": "_lock",
        "refused_total": "_lock",
    }

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        admission: AdmissionController | None = None,
        slots: int = 4,
        queue_capacity: int = 128,
        point_weight: int = 4,
        bulk_weight: int = 1,
        bulk_slot_cap: int | None = None,
        admission_timeout_s: float | None = 30.0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = int(port)
        self.max_connections = int(max_connections)
        self.admission = admission if admission is not None else AdmissionController(
            slots=slots,
            queue_capacity=queue_capacity,
            point_weight=point_weight,
            bulk_weight=bulk_weight,
            bulk_slot_cap=bulk_slot_cap,
        )
        self.admission_timeout_s = admission_timeout_s
        self.name = f"sql-server-{next(_SERVER_IDS)}"
        self.statements_total = 0
        self.errors_total = 0
        self.connections_total = 0
        self.reaped_total = 0
        self.refused_total = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: dict[str, _Handler] = {}
        self._lock = threading.Lock()
        self._running = False

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> "SQLServer":
        """Bind, listen, register observability surfaces, begin accepting."""
        if self._running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        # Closing a listener does not reliably wake a blocked accept(); a
        # short timeout lets the accept loop notice shutdown promptly.
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._running = True
        database = self.engine.database
        registry = database.obs.registry
        registry.provider("net.admission", self.admission.stats)
        registry.provider("net.server", self.stats)
        database.catalog.register_system_table("system.connections", self.connection_rows)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"repro-net-accept-{self.name}", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return (self.host, self.port)

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting, drain handlers, unregister surfaces (idempotent).

        Handlers finish the statement they are executing (the response still
        writes), then see EOF and exit; the engine and its served views are
        untouched — the server is a front door, not the building.
        """
        if not self._running:
            return
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        with self._lock:
            handlers = list(self._handlers.values())
        for handler in handlers:
            handler.shutdown()
        deadline = time.perf_counter() + (timeout if timeout is not None else 0)
        for handler in handlers:
            remaining = None
            if timeout is not None:
                remaining = max(0.1, deadline - time.perf_counter())
            handler.thread.join(timeout=remaining)
        # Anything still alive gets its socket pulled out from under it.
        with self._lock:
            handlers = list(self._handlers.values())
        for handler in handlers:
            handler.teardown()
            self._reap(handler)
        database = self.engine.database
        database.obs.registry.remove_provider("net.admission")
        database.obs.registry.remove_provider("net.server")
        database.catalog.register_system_table("system.connections", list)

    def __enter__(self) -> "SQLServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accepting -----------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                sock, remote = self._listener.accept()
            except socket.timeout:
                continue  # periodic shutdown check
            except OSError:
                break  # listener closed: shutdown
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)  # handler reads block until the client speaks
            with self._lock:
                over_capacity = len(self._handlers) >= self.max_connections
                if over_capacity:
                    self.refused_total += 1
            if over_capacity:
                try:
                    write_frame(
                        sock,
                        {
                            "server": "repro-serve",
                            "protocol": PROTOCOL_VERSION,
                            "error": encode_error(
                                NetworkError(
                                    f"server is at its {self.max_connections}-connection limit"
                                )
                            ),
                        },
                    )
                except Exception:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            handler = _Handler(self, sock, remote)
            with self._lock:
                self._handlers[handler.name] = handler
                self.connections_total += 1
            handler.thread.start()

    def _reap(self, handler: _Handler) -> None:
        """Remove a finished/dead handler and release its resources.

        Every departing handler passes through here (the session registry and
        socket are always released); only an *ungraceful* exit — one that died
        mid-frame or mid-statement — counts toward ``reaped_total``.
        """
        with self._lock:
            removed = self._handlers.pop(handler.name, None)
        handler.teardown()
        if removed is not None and handler.parted == "error":
            with self._lock:
                self.reaped_total += 1

    # -- observability -------------------------------------------------------------------

    def connection_count(self) -> int:
        """Live wire connections right now."""
        with self._lock:
            return len(self._handlers)

    def connection_rows(self) -> list[dict[str, object]]:
        """``system.connections`` producer: one row per live wire connection."""
        with self._lock:
            handlers = list(self._handlers.values())
        return [handler.row() for handler in sorted(handlers, key=lambda h: h.name)]

    def _count_statement(self) -> None:
        """Handler threads report statement completions through here."""
        with self._lock:
            self.statements_total += 1

    def _count_error(self) -> None:
        """Handler threads report statement errors through here."""
        with self._lock:
            self.errors_total += 1

    def stats(self) -> dict[str, float]:
        """Server-level counters (the ``net.server`` pull provider)."""
        with self._lock:
            return {
                "connections_active": len(self._handlers),
                "connections_total": self.connections_total,
                "statements_total": self.statements_total,
                "errors_total": self.errors_total,
                "reaped_total": self.reaped_total,
                "refused_total": self.refused_total,
            }


# ---------------------------------------------------------------------------
# The repro-serve console entry point
# ---------------------------------------------------------------------------


def _split_sql(script: str) -> list[str]:
    """Split a SQL script on top-level semicolons.

    Respects single-quoted strings (with ``''`` escapes) and ``--`` line
    comments, which is all the dialect produces.
    """
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    index = 0
    while index < len(script):
        char = script[index]
        if not in_string and char == "-" and script.startswith("--", index):
            newline = script.find("\n", index)
            index = len(script) if newline == -1 else newline
            continue
        if in_string:
            current.append(char)
            if char == "'":
                if index + 1 < len(script) and script[index + 1] == "'":
                    current.append("'")
                    index += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == ";":
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(char)
        index += 1
    text = "".join(current).strip()
    if text:
        statements.append(text)
    return statements


def main(argv: list[str] | None = None) -> int:
    """``repro-serve``: stand up a fresh engine behind a TCP front door."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the Hazy reproduction's SQL dialect over a TCP socket.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default loopback)")
    parser.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--init",
        metavar="FILE",
        default=None,
        help="SQL script executed statement-by-statement before serving",
    )
    parser.add_argument("--slots", type=int, default=4, help="concurrent execution slots")
    parser.add_argument(
        "--queue-capacity", type=int, default=128, help="per-lane admission queue bound"
    )
    parser.add_argument("--point-weight", type=int, default=4, help="point-lane grant weight")
    parser.add_argument("--bulk-weight", type=int, default=1, help="bulk-lane grant weight")
    parser.add_argument(
        "--bulk-slot-cap",
        type=int,
        default=None,
        help="max concurrent bulk statements (default: slots - 1)",
    )
    parser.add_argument(
        "--max-connections", type=int, default=64, help="accepted-socket cap"
    )
    args = parser.parse_args(argv)

    from repro.connection import connect

    conn = connect()
    if args.init:
        with open(args.init, "r", encoding="utf-8") as handle:
            script = handle.read()
        for statement in _split_sql(script):
            conn.execute(statement)
    server = SQLServer(
        conn.engine,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        slots=args.slots,
        queue_capacity=args.queue_capacity,
        point_weight=args.point_weight,
        bulk_weight=args.bulk_weight,
        bulk_slot_cap=args.bulk_slot_cap,
    ).start()
    # The parent process (or operator) reads this line to learn the port.
    print(f"repro-serve listening on {server.host}:{server.port}", flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGINT, _request_stop)
    signal.signal(signal.SIGTERM, _request_stop)
    try:
        while not stop.wait(timeout=0.5):
            pass
    finally:
        server.close()
        conn.close()
        print("repro-serve stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
