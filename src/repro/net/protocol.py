"""The wire protocol: length-prefixed JSON frames plus the error codec.

Framing
-------

Every message — in either direction — is one **frame**::

    +----------------+----------------------------+
    | 4 bytes        | N bytes                    |
    | big-endian N   | UTF-8 JSON object          |
    +----------------+----------------------------+

The length prefix counts payload bytes only.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected before any allocation happens, so a
garbage prefix (or a client speaking a different protocol) fails fast instead
of stalling the server on a multi-gigabyte read.

JSON is the payload format because every value the SQL surface produces
(ints, floats, text, booleans, NULL) round-trips exactly through Python's
encoder — ``repr``-based float serialization means a served view's ``eps``
and ``margin`` values come back bit-identical, which the network benchmark
gates on.  ``NaN``/``Infinity`` use Python's JSON extension; both ends of
this protocol are this module.

Requests are objects with an ``op`` field:

``{"op": "query", "sql": ..., "params": [...], "options": {...}}``
    Execute one statement; ``options`` may carry ``admission_timeout_s``.
``{"op": "executemany", "sql": ..., "param_rows": [[...], ...]}``
    The prepared-statement loop; one parse/plan, N bindings.
``{"op": "ping"}``
    Health probe (used by the pool's checkout check).
``{"op": "goodbye"}``
    Clean disconnect; the server acknowledges then closes.

Responses are either ``{"ok": true, ...result fields...}`` or
``{"ok": false, "error": {...}}`` where the error object is produced by
:func:`encode_error` and reconstructed client-side by :func:`decode_error` —
the structured ``position``/``token`` diagnostics of
:class:`~repro.exceptions.SQLSyntaxError` / ``SQLPlanningError`` survive the
round trip intact.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Callable, cast

from repro import exceptions
from repro.exceptions import (
    ConnectionClosedError,
    HazyError,
    NetworkError,
    ProtocolError,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "read_frame",
    "write_frame",
    "encode_error",
    "decode_error",
]

#: Version stamped into the server's hello frame; clients refuse a mismatch.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload.  Large enough for any result set the
#: benchmark suite produces, small enough that a corrupt length prefix fails
#: immediately instead of "allocating" gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


#: Row count above which a response's ``rows`` list is serialized row by row.
_INCREMENTAL_ROWS = 256


def _encode_payload(message: dict[str, object]) -> bytes:
    """JSON-encode one frame's payload.

    A large result set is encoded **incrementally** — one ``json.dumps`` call
    per row instead of one for the whole message.  Each C-level dumps call
    holds the GIL for its full duration, so a monolithic encode of a several-
    thousand-row scan response stalls every other handler thread for
    milliseconds; per-row encoding yields between rows and keeps concurrent
    point reads' tail latency flat.  When ``rows`` is the message's final key
    — the server builds query responses that way — the bytes are identical to
    a monolithic dumps; otherwise only the key order differs, which JSON
    object semantics ignore.
    """
    rows = message.get("rows")
    if not (isinstance(rows, list) and len(rows) > _INCREMENTAL_ROWS):
        return json.dumps(message, separators=(",", ":")).encode("utf-8")
    head = {key: value for key, value in message.items() if key != "rows"}
    opener = json.dumps(head, separators=(",", ":"))[:-1] + ("," if head else "")
    parts = [opener, '"rows":[']
    parts.append(",".join(json.dumps(row, separators=(",", ":")) for row in rows))
    parts.append("]}")
    return "".join(parts).encode("utf-8")


def write_frame(sock: socket.socket, message: dict[str, object]) -> None:
    """Serialize ``message`` and send it as one frame."""
    payload = _encode_payload(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        sock.sendall(_LENGTH.pack(len(payload)) + payload)
    except (BrokenPipeError, ConnectionResetError, OSError) as error:
        raise ConnectionClosedError(f"peer closed the connection: {error}") from error


def _read_exactly(sock: socket.socket, count: int, *, eof_ok: bool) -> bytes | None:
    """Read exactly ``count`` bytes.

    Clean EOF before the first byte returns None when ``eof_ok`` (a peer
    hanging up between frames is a normal disconnect); EOF mid-read is always
    a :class:`ProtocolError` (a truncated frame).
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as error:
            raise exceptions.NetworkTimeoutError(
                f"timed out reading a frame ({remaining} of {count} bytes outstanding)"
            ) from error
        except (ConnectionResetError, OSError) as error:
            if not chunks and eof_ok:
                return None
            raise ConnectionClosedError(f"peer reset the connection: {error}") from error
        if not chunk:
            if not chunks and eof_ok:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({remaining} of {count} bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, *, eof_ok: bool = False) -> dict[str, object] | None:
    """Read one frame; None on clean EOF when ``eof_ok`` is set."""
    header = _read_exactly(sock, _LENGTH.size, eof_ok=eof_ok)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit "
            "(peer is not speaking this protocol?)"
        )
    body = _read_exactly(sock, length, eof_ok=False) if length else b""
    payload = body if body is not None else b""  # eof_ok=False never yields None
    try:
        message = json.loads(payload.decode("utf-8")) if length else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(f"frame payload must be a JSON object, got {type(message).__name__}")
    return cast("dict[str, object]", message)


# ---------------------------------------------------------------------------
# Structured error codec
# ---------------------------------------------------------------------------
#
# Server-side exceptions cross the wire as their class name + message +
# whatever machine-readable diagnostics they carry; the client rebuilds the
# *same* exception class by looking the name up in repro.exceptions.  Only
# HazyError subclasses participate — anything else is an internal server
# fault and surfaces client-side as a generic NetworkError so the server's
# stack never leaks semantics it did not promise.

#: Attributes beyond the message that survive the round trip.
_DIAGNOSTIC_FIELDS = ("position", "token")


def encode_error(error: BaseException) -> dict[str, object]:
    """The wire form of a server-side exception."""
    payload: dict[str, object] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    for field in _DIAGNOSTIC_FIELDS:
        value = getattr(error, field, None)
        if value is not None:
            payload[field] = value
    return payload


def decode_error(payload: dict[str, object]) -> HazyError:
    """Rebuild the exception a server-side error frame describes.

    Known :class:`~repro.exceptions.HazyError` subclasses come back as
    themselves — ``except SQLPlanningError`` works identically against a
    network connection and an in-process one, with ``position``/``token``
    intact.  Unknown types degrade to :class:`NetworkError` carrying the
    original type name in the message.
    """
    type_name = str(payload.get("type", "NetworkError"))
    message = str(payload.get("message", ""))
    cls = getattr(exceptions, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, HazyError)):
        return NetworkError(f"server error [{type_name}]: {message}")
    kwargs = {
        field: payload[field] for field in _DIAGNOSTIC_FIELDS if field in payload
    }
    # The subclass lookup erases the constructor signature; WIRE001 (the
    # repro-lint wire pass) is what statically guarantees cls(message) works.
    factory = cast("Callable[..., HazyError]", cls)
    try:
        return factory(message, **kwargs) if kwargs else factory(message)
    except TypeError:
        # The class does not accept the diagnostics keywords; attach them.
        error = factory(message)
        for field, value in kwargs.items():
            setattr(error, field, value)
        return error
