"""``repro.net`` — the wire front door: SQL over a socket.

The subsystem map (each module's docstring has the detail):

* :mod:`repro.net.protocol` — the length-prefixed JSON frame codec and the
  structured error codec (``position``/``token`` diagnostics survive the
  round trip);
* :mod:`repro.net.admission` — the two-lane (point reads / everything else)
  bounded admission queue with a weighted slot scheduler, sitting in front of
  the executor so scans cannot starve point reads;
* :mod:`repro.net.server` — :class:`SQLServer`, which maps every accepted
  socket onto a server-side :func:`repro.connect` connection (prepared
  statements, per-connection read-your-writes sessions), plus the
  ``repro-serve`` console entry point;
* :mod:`repro.net.client` — :func:`connect(host, port) <connect>` returning a
  :class:`NetworkConnection` with the in-process DB-API surface;
* :mod:`repro.net.pool` — :class:`ConnectionPool`, thread-safe with
  health-checked checkout/checkin and timeouts.

Observability: a running server mirrors its admission lanes as the
``net.admission`` pull provider, its own counters as ``net.server``, and
publishes the live roster through the virtual ``system.connections`` SQL
table — all visible in :func:`repro.obs.render_text` exposition.

Quickstart::

    import repro
    from repro.net import SQLServer, ConnectionPool

    conn = repro.connect()
    ...  # CREATE/INSERT/CREATE CLASSIFICATION VIEW/SERVE VIEW as usual
    with SQLServer(conn.engine) as server:
        pool = ConnectionPool(server.host, server.port, size=8)
        with pool.connection() as client:
            label = client.execute(
                "SELECT class FROM labeled_papers WHERE id = ?", (7,)
            ).scalar()
        pool.close()
"""

from repro.net.admission import AdmissionController, lane_for
from repro.net.client import NetworkConnection, connect
from repro.net.pool import ConnectionPool
from repro.net.server import SQLServer

__all__ = [
    "AdmissionController",
    "ConnectionPool",
    "NetworkConnection",
    "SQLServer",
    "connect",
    "lane_for",
]
