"""Priority-lane admission control in front of the executor.

The wire server accepts statements faster than the engine can execute them
under load, and the two statement populations have wildly different costs: a
batched point read touches one entity, an All-Members scatter/gather touches
every shard.  A single FIFO queue lets a burst of scans park every point read
behind seconds of scan work.  The :class:`AdmissionController` prevents that
with two **lanes**:

``point``
    SELECTs whose plan touches only point-access nodes (primary-key
    ``IndexRange``, batcher-routed ``ViewPointRead``/``ServedPointRead``) or
    zero-cost ``SystemTableScan`` dashboards.
``bulk``
    Everything else — scans, range reads, scatter/gather, joins over scans,
    DML, DDL, the serving lifecycle verbs, ``executemany``.

Each lane is a bounded FIFO; a full lane rejects immediately
(:class:`~repro.exceptions.AdmissionRejectedError` — backpressure the client
can retry) rather than queueing unboundedly.  A fixed pool of execution
*slots* caps concurrency; when a slot frees, the scheduler picks the next
lane by **weighted round-robin** (default 4:1 point:bulk), so bulk work
always progresses but can never monopolize grants.  Additionally the bulk
lane may occupy at most ``bulk_slot_cap`` slots (default ``slots - 1``):
point-read headroom is always reserved, bounding the time a point read can
wait behind in-flight scans to the remaining runtime of the capped scans.

The controller keeps its own plain counters under its lock and exposes them
via :meth:`stats`; the server mirrors that dict into the metrics registry as
a lazy ``net.admission`` pull provider — the grant/release hot path never
touches the registry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager

from repro.db.sql.plan import (
    IndexRange,
    SystemTableScan,
    ViewPointRead,
)
from repro.db.sql.ast import Select
from repro.exceptions import (
    AdmissionRejectedError,
    AdmissionTimeoutError,
    ConfigurationError,
)

__all__ = ["AdmissionController", "LANES", "POINT_LANE", "BULK_LANE", "lane_for"]

POINT_LANE = "point"
BULK_LANE = "bulk"
LANES = (POINT_LANE, BULK_LANE)

#: Plan nodes that are cheap per-statement point accesses.  ``ServedPointRead``
#: subclasses ``ViewPointRead``; ``SystemTableScan`` costs zero simulated
#: seconds by construction, so observability dashboards ride the fast lane.
_POINT_ACCESS_NODES = (IndexRange, ViewPointRead, SystemTableScan)

#: Structural nodes that never touch storage themselves.
_STRUCTURAL_LABELS = ("Filter", "Project", "Sort", "TopK", "Limit", "Aggregate", "HashJoin")


def lane_for(statement, plan) -> str:
    """Classify one prepared statement into its admission lane.

    A statement rides the point lane only when it is a SELECT whose plan's
    every *access* node is a point access; anything unplanned (DML, DDL,
    lifecycle verbs) or containing a scan-shaped node is bulk.
    """
    if not isinstance(statement, Select) or plan is None:
        return BULK_LANE
    for _, node in plan.root.walk():
        if type(node).__name__ in _STRUCTURAL_LABELS:
            continue
        if not isinstance(node, _POINT_ACCESS_NODES):
            return BULK_LANE
    return POINT_LANE


class _Ticket:
    """One waiting statement: FIFO position plus its grant flag."""

    __slots__ = ("granted", "enqueued_at")

    def __init__(self) -> None:
        self.granted = False
        self.enqueued_at = time.perf_counter()


class _Lane:
    """One lane's queue and counters (all mutated under the controller lock)."""

    __slots__ = (
        "name",
        "queue",
        "in_flight",
        "admitted_total",
        "rejected_total",
        "timeouts_total",
        "waits_total",
        "wait_seconds_total",
        "max_wait_seconds",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.queue: deque[_Ticket] = deque()
        self.in_flight = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.timeouts_total = 0
        self.waits_total = 0
        self.wait_seconds_total = 0.0
        self.max_wait_seconds = 0.0


class AdmissionController:
    """Bounded two-lane admission with weighted slot scheduling.

    Parameters
    ----------
    slots:
        Concurrent statement executions across both lanes.
    queue_capacity:
        Per-lane bound on *waiting* statements; a full lane rejects.
    point_weight / bulk_weight:
        The weighted round-robin grant ratio when both lanes have waiters.
    """

    # Shared-state contract, enforced by repro-lint's lock pass.  Lane
    # objects' fields ride under the same condition by convention; only the
    # controller's own attributes can be declared here.
    _GUARDED_BY = {"_cursor": "_condition"}

    def __init__(
        self,
        slots: int = 4,
        queue_capacity: int = 128,
        point_weight: int = 4,
        bulk_weight: int = 1,
        bulk_slot_cap: int | None = None,
    ) -> None:
        if slots < 1:
            raise ConfigurationError("admission needs at least one execution slot")
        if queue_capacity < 1:
            raise ConfigurationError("admission queue capacity must be positive")
        if point_weight < 1 or bulk_weight < 1:
            raise ConfigurationError("lane weights must be positive integers")
        self.slots = int(slots)
        self.queue_capacity = int(queue_capacity)
        self.point_weight = int(point_weight)
        self.bulk_weight = int(bulk_weight)
        #: Bulk may never fill every slot: the reserved headroom bounds how
        #: long a point read waits behind already-running scans.  Defaults to
        #: ``slots - 1``; operators protecting tail latency under heavy scan
        #: pressure can pin it lower (1 = one scan at a time).
        if bulk_slot_cap is None:
            bulk_slot_cap = max(1, self.slots - 1)
        if not 1 <= bulk_slot_cap <= self.slots:
            raise ConfigurationError("bulk_slot_cap must be between 1 and slots")
        self.bulk_slot_cap = int(bulk_slot_cap)
        self._condition = threading.Condition()
        self._lanes = {POINT_LANE: _Lane(POINT_LANE), BULK_LANE: _Lane(BULK_LANE)}
        # The grant cycle realizes the weights deterministically:
        # point,point,point,point,bulk for the 4:1 default.
        self._cycle = (POINT_LANE,) * int(point_weight) + (BULK_LANE,) * int(bulk_weight)
        self._cursor = 0

    # -- submission ----------------------------------------------------------------------

    @contextmanager
    def admit(self, lane: str, timeout: float | None = None):
        """``with controller.admit(lane):`` — hold one execution slot.

        Raises :class:`AdmissionRejectedError` when the lane's queue is full
        and :class:`AdmissionTimeoutError` when no slot frees within
        ``timeout`` seconds.
        """
        self._submit(lane, timeout)
        try:
            yield
        finally:
            self._release(lane)

    def _submit(self, lane_name: str, timeout: float | None) -> None:
        if lane_name not in self._lanes:
            raise ConfigurationError(f"unknown admission lane {lane_name!r}")
        with self._condition:
            lane = self._lanes[lane_name]
            if len(lane.queue) >= self.queue_capacity:
                lane.rejected_total += 1
                raise AdmissionRejectedError(
                    f"{lane_name} lane is at capacity "
                    f"({self.queue_capacity} queued statements); retry later"
                )
            ticket = _Ticket()
            lane.queue.append(ticket)
            self._dispatch()
            if not ticket.granted:
                granted = self._condition.wait_for(lambda: ticket.granted, timeout=timeout)
                if not granted:
                    # Still queued: withdraw.  (Grant cannot race past the
                    # predicate — both happen under this lock.)
                    try:
                        lane.queue.remove(ticket)
                    except ValueError:
                        pass
                    lane.timeouts_total += 1
                    raise AdmissionTimeoutError(
                        f"statement waited over {timeout}s in the {lane_name} lane"
                    )
            wait = time.perf_counter() - ticket.enqueued_at
            lane.admitted_total += 1
            lane.waits_total += 1
            lane.wait_seconds_total += wait
            if wait > lane.max_wait_seconds:
                lane.max_wait_seconds = wait

    def _release(self, lane_name: str) -> None:
        with self._condition:
            self._lanes[lane_name].in_flight -= 1
            self._dispatch()

    # -- scheduling ----------------------------------------------------------------------

    def _eligible(self, lane: _Lane) -> bool:
        if not lane.queue:
            return False
        if lane.name == BULK_LANE and lane.in_flight >= self.bulk_slot_cap:
            return False
        return True

    def _dispatch(self) -> None:  # repro: locked(_condition)
        """Grant free slots to waiting tickets (call under the lock)."""
        granted_any = False
        while True:
            free = self.slots - sum(lane.in_flight for lane in self._lanes.values())
            if free <= 0:
                break
            chosen: _Lane | None = None
            # Walk one full cycle from the cursor; the first eligible lane in
            # weighted order wins and the cursor advances past it, so over
            # time grants match the configured ratio whenever both lanes wait.
            for offset in range(len(self._cycle)):
                candidate = self._lanes[self._cycle[(self._cursor + offset) % len(self._cycle)]]
                if self._eligible(candidate):
                    chosen = candidate
                    self._cursor = (self._cursor + offset + 1) % len(self._cycle)
                    break
            if chosen is None:
                break
            ticket = chosen.queue.popleft()
            ticket.granted = True
            chosen.in_flight += 1
            granted_any = True
        if granted_any:
            self._condition.notify_all()

    # -- observability -------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Per-lane depth/in-flight/admission counters, mirror-ready.

        Keys follow the registry's ``snake_case`` + ``_total``/``_seconds``
        convention so the ``net.admission`` pull provider can expose the dict
        verbatim.
        """
        with self._condition:
            out: dict[str, float] = {
                "slots": self.slots,
                "queue_capacity": self.queue_capacity,
            }
            for lane in self._lanes.values():
                prefix = f"{lane.name}."
                out[prefix + "depth"] = len(lane.queue)
                out[prefix + "in_flight"] = lane.in_flight
                out[prefix + "admitted_total"] = lane.admitted_total
                out[prefix + "rejected_total"] = lane.rejected_total
                out[prefix + "timeouts_total"] = lane.timeouts_total
                out[prefix + "wait_seconds_total"] = lane.wait_seconds_total
                out[prefix + "max_wait_seconds"] = lane.max_wait_seconds
            return out
