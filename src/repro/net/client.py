"""Network client: the DB-API surface of :func:`repro.connect`, over a socket.

:func:`connect` dials a :class:`~repro.net.server.SQLServer` and returns a
:class:`NetworkConnection` exposing the same ``Connection``/``Cursor``
contract as the in-process facade — ``execute``/``executemany`` returning a
cursor with ``fetchone``/``fetchmany``/``fetchall``/``scalar``, iteration,
``description``/``rowcount``, and context-manager lifecycles.  The cursor
class is literally :class:`repro.connection.Cursor`: it drives any connection
object implementing ``_execute``/``_executemany``, and this one implements
them by exchanging protocol frames.

Server-side errors arrive as structured frames and re-raise **as their
original exception classes** — ``except SQLPlanningError`` catches a planning
error from across the wire, ``position``/``token`` included.

Timeout discipline: a request that exceeds ``timeout`` raises
:class:`~repro.exceptions.NetworkTimeoutError` and *poisons* the connection
(the response may still arrive and desynchronize framing), so every later
call raises until :meth:`NetworkConnection.close`.  The pool replaces
poisoned members on checkout.
"""

from __future__ import annotations

import socket
import threading
from collections.abc import Sequence

from repro.connection import Cursor
from repro.db.sql.executor import ResultSet
from repro.exceptions import (
    ConfigurationError,
    ConnectionClosedError,
    NetworkError,
    NetworkTimeoutError,
    ProtocolError,
)
from repro.net.protocol import PROTOCOL_VERSION, decode_error, read_frame, write_frame

__all__ = ["connect", "NetworkConnection"]

#: Default dial + per-request deadline, generous enough for CI scan statements.
DEFAULT_TIMEOUT_S = 30.0


def connect(
    host: str, port: int, *, timeout: float | None = DEFAULT_TIMEOUT_S
) -> "NetworkConnection":
    """Dial a running SQL server; returns the wire-backed connection.

    ``timeout`` bounds the dial, the protocol handshake and every subsequent
    request/response exchange (None waits forever — not recommended outside
    debugging).
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except socket.timeout as error:
        raise NetworkTimeoutError(f"dialing {host}:{port} timed out") from error
    except OSError as error:
        raise ConnectionClosedError(f"cannot reach {host}:{port}: {error}") from error
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        hello = read_frame(sock)
    except NetworkError:
        sock.close()
        raise
    if hello is None or "error" in hello:
        sock.close()
        if hello and "error" in hello:
            raise decode_error(hello["error"])
        raise ProtocolError(f"{host}:{port} closed the connection during the handshake")
    if hello.get("protocol") != PROTOCOL_VERSION:
        sock.close()
        raise ProtocolError(
            f"server speaks protocol {hello.get('protocol')!r}, "
            f"this client speaks {PROTOCOL_VERSION}"
        )
    return NetworkConnection(sock, host, port, hello, timeout)


class NetworkConnection:
    """One wire connection's client half.

    Thread-safe in the coarse sense: a lock serializes request/response
    exchanges, so sharing one connection between threads is *correct* but
    serialized — use a :class:`~repro.net.pool.ConnectionPool` for
    parallelism.
    """

    def __init__(
        self,
        sock: socket.socket,
        host: str,
        port: int,
        hello: dict,
        timeout: float | None,
    ) -> None:
        self._sock = sock
        self.host = host
        self.port = port
        self.timeout = timeout
        #: The server-side connection name this socket maps onto (the value
        #: ``system.connections`` reports in its ``connection`` column).
        self.server_connection = str(hello.get("connection", ""))
        self._lock = threading.Lock()
        self._closed = False
        self._poisoned = False

    # -- DB-API surface ------------------------------------------------------------------

    def cursor(self) -> Cursor:
        """A fresh cursor over this connection."""
        self._require_usable()
        return Cursor(self)

    def execute(self, sql: str, parameters: Sequence[object] | None = None) -> Cursor:
        """Run one SQL statement on the server; returns a cursor of the result."""
        return self.cursor().execute(sql, parameters)

    def executemany(self, sql: str, parameter_rows: Sequence[Sequence[object]]) -> Cursor:
        """Run a prepared statement once per parameter row, server-side."""
        return self.cursor().executemany(sql, parameter_rows)

    # -- the Cursor driver contract ------------------------------------------------------

    def _execute(self, sql: str, parameters: Sequence[object] | None) -> ResultSet:
        response = self._exchange(
            {"op": "query", "sql": sql, "params": list(parameters or [])}
        )
        return ResultSet(
            rows=response.get("rows", []),
            rowcount=int(response.get("rowcount", 0)),
            statement_type=str(response.get("statement_type", "")),
        )

    def _executemany(self, sql: str, parameter_rows: Sequence[Sequence[object]]) -> int:
        response = self._exchange(
            {
                "op": "executemany",
                "sql": sql,
                "param_rows": [list(row) for row in parameter_rows],
            }
        )
        return int(response.get("rowcount", 0))

    # -- health --------------------------------------------------------------------------

    def ping(self, timeout: float | None = None) -> bool:
        """True when the server answers a ping within ``timeout`` seconds."""
        if self._closed or self._poisoned:
            return False
        try:
            response = self._exchange({"op": "ping"}, timeout=timeout)
        except NetworkError:
            return False
        return bool(response.get("pong"))

    @property
    def usable(self) -> bool:
        """Open and not poisoned by a timeout/protocol fault."""
        return not (self._closed or self._poisoned)

    # -- plumbing ------------------------------------------------------------------------

    def _require_usable(self) -> None:
        if self._closed:
            raise ConfigurationError("connection is closed")
        if self._poisoned:
            raise ConnectionClosedError(
                "connection is poisoned by an earlier timeout/protocol fault; "
                "close it and dial again"
            )

    def _exchange(self, request: dict, timeout: float | None = None) -> dict:
        """One request/response round trip under the connection lock."""
        self._require_usable()
        effective = timeout if timeout is not None else self.timeout
        with self._lock:
            try:
                self._sock.settimeout(effective)
                write_frame(self._sock, request)
                response = read_frame(self._sock)
            except NetworkError:
                self._poisoned = True
                raise
            except OSError as error:
                # A socket already torn down (e.g. closed under the pool's
                # feet) faults before the frame layer can classify it.
                self._poisoned = True
                raise ConnectionClosedError(f"socket is unusable: {error}") from error
        if response is None:
            self._poisoned = True
            raise ConnectionClosedError("server closed the connection mid-exchange")
        if not response.get("ok"):
            raise decode_error(response.get("error") or {})
        return response

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Say goodbye (best effort) and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._poisoned:
            try:
                with self._lock:
                    self._sock.settimeout(1.0)
                    write_frame(self._sock, {"op": "goodbye"})
                    read_frame(self._sock, eof_ok=True)
            except Exception:
                pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NetworkConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
