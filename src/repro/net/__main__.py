"""``python -m repro.net``: the ``repro-serve`` entry point without install.

The console script in ``pyproject.toml`` points at
:func:`repro.net.server.main`; this module gives uninstalled checkouts the
same front door (``python -m repro.net.server`` works too, but trips the
runpy re-execution warning because the package imports its own submodule).
"""

from __future__ import annotations

import sys

from repro.net.server import main

if __name__ == "__main__":
    sys.exit(main())
