"""A thread-safe pool of network connections with health-checked checkout.

Dialing a socket and completing the protocol handshake is the expensive part
of talking to a :class:`~repro.net.server.SQLServer`; the pool amortizes it
across many client threads::

    pool = ConnectionPool("127.0.0.1", port, size=8)
    with pool.connection() as conn:
        rows = conn.execute("SELECT class FROM v WHERE id = ?", (3,)).fetchall()
    pool.close()

``size`` bounds *total* connections (checked out + idle); a thread asking for
a connection when all are busy blocks up to ``acquire_timeout_s`` and then
raises :class:`~repro.exceptions.PoolExhaustedError`.  Checkout health-checks
idle members — a connection poisoned by a timeout, closed by the server, or
failing its ping is discarded and replaced with a fresh dial, so a server
restart heals transparently.

Note the pool does **not** multiplex: each checked-out connection maps to one
server-side session, so read-your-writes holds *per checkout*.  A thread that
writes and then wants to observe its write must do both on the same
checked-out connection (the ``with pool.connection()`` block).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager

from repro.exceptions import ConfigurationError, PoolExhaustedError
from repro.net.client import DEFAULT_TIMEOUT_S, NetworkConnection, connect

__all__ = ["ConnectionPool"]


class ConnectionPool:
    """Bounded, health-checked pool of :class:`NetworkConnection` objects.

    Parameters
    ----------
    host / port:
        The server to dial.
    size:
        Maximum live connections (idle + checked out).
    timeout:
        Per-request deadline applied to every pooled connection.
    acquire_timeout_s:
        How long :meth:`acquire` waits for a free slot before raising.
    health_check:
        Ping idle members at checkout (a dead one is replaced); disable only
        in latency microbenchmarks where the extra round trip matters.
    """

    # Shared-state contract, enforced by repro-lint's lock pass: acquire()
    # runs concurrently from many application threads.
    _GUARDED_BY = {
        "_idle": "_condition",
        "_live": "_condition",
        "_closed": "_condition",
        "dials_total": "_condition",
        "checkouts_total": "_condition",
        "health_replacements_total": "_condition",
    }

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 4,
        *,
        timeout: float | None = DEFAULT_TIMEOUT_S,
        acquire_timeout_s: float = 30.0,
        health_check: bool = True,
    ) -> None:
        if size < 1:
            raise ConfigurationError("pool size must be at least 1")
        self.host = host
        self.port = int(port)
        self.size = int(size)
        self.timeout = timeout
        self.acquire_timeout_s = float(acquire_timeout_s)
        self.health_check = bool(health_check)
        self._condition = threading.Condition()
        self._idle: deque[NetworkConnection] = deque()
        self._live = 0  # idle + checked out
        self._closed = False
        self.dials_total = 0
        self.checkouts_total = 0
        self.health_replacements_total = 0

    # -- checkout / checkin --------------------------------------------------------------

    def acquire(self, timeout: float | None = None) -> NetworkConnection:
        """Check out a healthy connection; dial lazily up to ``size``."""
        deadline = time.perf_counter() + (
            timeout if timeout is not None else self.acquire_timeout_s
        )
        while True:
            with self._condition:
                if self._closed:
                    raise ConfigurationError("pool is closed")
                if self._idle:
                    candidate = self._idle.popleft()
                elif self._live < self.size:
                    self._live += 1
                    candidate = None  # dial outside the lock
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._condition.wait(timeout=remaining):
                        raise PoolExhaustedError(
                            f"no free connection among {self.size} within the timeout"
                        )
                    continue
            if candidate is None:
                try:
                    candidate = self._dial()
                except BaseException:
                    with self._condition:
                        self._live -= 1
                        self._condition.notify()
                    raise
            elif self.health_check and not self._healthy(candidate):
                # Replace the dead member; the slot is already ours.
                candidate.close()
                with self._condition:
                    self.health_replacements_total += 1
                try:
                    candidate = self._dial()
                except BaseException:
                    with self._condition:
                        self._live -= 1
                        self._condition.notify()
                    raise
            with self._condition:
                self.checkouts_total += 1
            return candidate

    def release(self, connection: NetworkConnection) -> None:
        """Return a checked-out connection (broken ones are discarded)."""
        with self._condition:
            if self._closed or not connection.usable:
                connection.close()
                self._live -= 1
            else:
                self._idle.append(connection)
            self._condition.notify()

    @contextmanager
    def connection(self, timeout: float | None = None):
        """``with pool.connection() as conn:`` — checkout scoped to the block."""
        connection = self.acquire(timeout=timeout)
        try:
            yield connection
        finally:
            self.release(connection)

    # -- internals -----------------------------------------------------------------------

    def _dial(self) -> NetworkConnection:
        with self._condition:
            self.dials_total += 1
        return connect(self.host, self.port, timeout=self.timeout)

    def _healthy(self, connection: NetworkConnection) -> bool:
        if not connection.usable:
            return False
        return connection.ping(timeout=min(self.timeout or 5.0, 5.0))

    # -- observability / lifecycle -------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Pool counters, mirror-ready for a metrics provider."""
        with self._condition:
            return {
                "size": self.size,
                "live": self._live,
                "idle": len(self._idle),
                "dials_total": self.dials_total,
                "checkouts_total": self.checkouts_total,
                "health_replacements_total": self.health_replacements_total,
            }

    def close(self) -> None:
        """Close every idle connection and refuse further checkouts.

        Checked-out connections are closed by :meth:`release` when they come
        back (the pool is marked closed, so they are not re-idled).
        """
        with self._condition:
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._live -= len(idle)
            self._condition.notify_all()
        for connection in idle:
            connection.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
