"""``repro.connect()``: the single declarative front door to the system.

The paper's thesis is that classification views are first-class *declarative*
objects inside the DBMS.  This module makes the whole reproduction usable that
way: one :func:`connect` call yields a :class:`Connection` whose
cursor-style ``execute``/``executemany`` speak the full SQL surface — DDL,
DML, ``CREATE CLASSIFICATION VIEW``, the serving lifecycle (``SERVE VIEW``,
``STOP SERVING``, ``CHECKPOINT VIEW ... TO``, ``RESTORE VIEW ... FROM``) and
``EXPLAIN`` — with no other objects to juggle.

Prepared statements
-------------------

``execute(sql, params)`` treats every SQL string as a prepared statement:
each connection keeps an LRU cache (``plan_cache_size`` entries, default 128)
keyed on the SQL text holding the parsed AST *and*, for SELECTs, the planned
:class:`~repro.db.sql.planner.SelectPlan`.  Re-executing the same text —
including through ``executemany`` — re-binds the ``?`` parameters without
re-parsing or re-planning.  Statements that change what a plan may assume
(DDL, ``CREATE CLASSIFICATION VIEW``, the serving lifecycle verbs) clear the
cache; plans are additionally serving-state tolerant at execution time, so a
plan cached by one connection stays correct when another connection serves or
stops serving a view.

Per-connection consistency
--------------------------

Each connection owns a :class:`~repro.serve.sync.SessionRegistry`: every
SELECT it issues against a *served* view runs on that connection's
:class:`~repro.serve.server.ClientSession`, and every INSERT/UPDATE/DELETE it
issues against a served view's base tables registers the write's visibility
ticket with the same session.  The result is monotonic read-your-writes
*through plain SQL*: a connection that inserts a training example and then
SELECTs the view observes the example applied; two different connections are
two independent timelines.

Lifecycle
---------

``close()`` quiesces: when the connection created its engine (the normal
``repro.connect()`` path) every served view is handed back consistent via
``server.close()`` before the connection refuses further statements.  A
connection wrapping a caller-supplied engine (``connect(engine=...)``) only
releases its sessions — serving lifecycle stays with the engine's owner, so
worker connections in a multi-threaded client can come and go freely.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from collections.abc import Iterator, Sequence

from repro.core.engine import HazyEngine
from repro.db.costmodel import CostModel
from repro.db.database import Database
from repro.db.sql.ast import (
    CheckpointView,
    CreateClassificationView,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Explain,
    Insert,
    RestoreView,
    Select,
    ServeView,
    Statement,
    StopServing,
    Update,
)
from repro.db.sql.executor import ResultSet
from repro.db.sql.parser import parse
from repro.exceptions import ConfigurationError
from repro.features import FeatureFunctionRegistry
from repro.obs import (
    Observability,
    current_trace,
    reset_current_trace,
    set_current_trace,
)
from repro.serve.sync import SessionRegistry

__all__ = ["connect", "Connection", "Cursor", "PreparedStatement"]

_CONNECTION_IDS = itertools.count(1)

#: Statements whose execution may invalidate cached plans (schema or serving
#: topology changes).  CheckpointView is included for symmetry with the other
#: lifecycle verbs even though it leaves plans valid — the cache refills in
#: one statement and correctness beats cleverness here.
_CACHE_INVALIDATING = (
    CreateTable,
    DropTable,
    CreateIndex,
    DropIndex,
    CreateClassificationView,
    ServeView,
    StopServing,
    CheckpointView,
    RestoreView,
)


class PreparedStatement:
    """One cached compilation: the parsed AST plus, for SELECTs, its plan.

    ``probe`` memoizes the plan's cost probe (``probe_plan`` records which
    plan it was built for, so a refreshed plan rebuilds it) — the traced
    execution path reads the probe on every statement.
    """

    __slots__ = ("sql", "statement", "plan", "probe", "probe_plan")

    def __init__(self, sql: str, statement: Statement, plan) -> None:
        self.sql = sql
        self.statement = statement
        self.plan = plan
        self.probe = None
        self.probe_plan = None


class Cursor:
    """A DB-API-flavoured cursor over one connection.

    ``execute`` returns the cursor itself (as in :mod:`sqlite3`), so the
    quickstart reads naturally::

        count = conn.execute("SELECT COUNT(*) FROM labeled_papers").scalar()
        for row in conn.execute("SELECT id, class FROM labeled_papers"):
            ...
    """

    def __init__(self, connection: "Connection") -> None:
        self.connection = connection
        self.rows: list[dict[str, object]] = []
        self.rowcount: int = -1
        self.statement_type: str = ""
        self._cursor_position = 0
        self._closed = False

    # -- execution ---------------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[object] | None = None) -> "Cursor":
        """Run one SQL statement; the cursor then holds its result rows."""
        if self._closed:
            raise ConfigurationError("cursor is closed")
        result = self.connection._execute(sql, parameters)
        self._load(result)
        return self

    def executemany(self, sql: str, parameter_rows: Sequence[Sequence[object]]) -> "Cursor":
        """Run a prepared statement once per parameter row."""
        if self._closed:
            raise ConfigurationError("cursor is closed")
        total = self.connection._executemany(sql, parameter_rows)
        self._load(ResultSet(rowcount=total, statement_type="EXECUTEMANY"))
        return self

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Release the result set; further ``execute`` calls raise (idempotent).

        The connection stays open — closing a cursor only invalidates this
        handle, as in DB-API.
        """
        self._closed = True
        self.rows = []
        self._cursor_position = 0

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _load(self, result: ResultSet) -> None:
        self.rows = result.rows
        self.rowcount = result.rowcount
        self.statement_type = result.statement_type
        self._cursor_position = 0

    # -- result access -----------------------------------------------------------------

    @property
    def description(self) -> list[str]:
        """Column names of the current result set (empty for DML/DDL)."""
        return list(self.rows[0].keys()) if self.rows else []

    def fetchone(self) -> dict[str, object] | None:
        """Next result row, or None when exhausted."""
        if self._cursor_position >= len(self.rows):
            return None
        row = self.rows[self._cursor_position]
        self._cursor_position += 1
        return row

    def fetchmany(self, size: int = 1) -> list[dict[str, object]]:
        """Up to ``size`` further result rows."""
        chunk = self.rows[self._cursor_position : self._cursor_position + size]
        self._cursor_position += len(chunk)
        return chunk

    def fetchall(self) -> list[dict[str, object]]:
        """Every remaining result row."""
        remaining = self.rows[self._cursor_position :]
        self._cursor_position = len(self.rows)
        return remaining

    def scalar(self) -> object:
        """First column of the first row (e.g. a COUNT(*) value)."""
        if not self.rows:
            raise ConfigurationError("result set is empty")
        return next(iter(self.rows[0].values()))

    def __iter__(self) -> Iterator[dict[str, object]]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row


class Connection:
    """One client's handle on the database + engine pair.

    Build it with :func:`connect`; use :meth:`execute` / :meth:`executemany`
    for everything.  The underlying :class:`~repro.db.database.Database` and
    :class:`~repro.core.engine.HazyEngine` remain reachable as ``.database``
    and ``.engine`` for tooling, but the quickstart never needs them.
    """

    def __init__(
        self,
        database: Database,
        engine: HazyEngine,
        owns_engine: bool,
        plan_cache_size: int = 128,
    ) -> None:
        self.database = database
        self.engine = engine
        self._owns_engine = owns_engine
        self._sessions = SessionRegistry()
        self._closed = False
        self._plan_cache_size = int(plan_cache_size)
        self._statements: OrderedDict[str, PreparedStatement] = OrderedDict()
        self.name = f"conn-{next(_CONNECTION_IDS)}"
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        self._plan_cache_invalidations = 0
        obs = database.obs
        obs.register_plan_cache(self.name, self.plan_cache_stats)
        obs.registry.provider(f"connection.{self.name}.plan_cache", self.plan_cache_stats)

    def plan_cache_stats(self) -> dict[str, float]:
        """Prepared-statement cache counters (``system.plan_cache`` row shape)."""
        return {
            "hits_total": self._plan_cache_hits,
            "misses_total": self._plan_cache_misses,
            "invalidations_total": self._plan_cache_invalidations,
            "entries": len(self._statements),
            "capacity": self._plan_cache_size,
        }

    # -- statement execution ------------------------------------------------------------

    def cursor(self) -> Cursor:
        """A fresh cursor over this connection."""
        self._require_open()
        return Cursor(self)

    def execute(self, sql: str, parameters: Sequence[object] | None = None) -> Cursor:
        """Parse and run one SQL statement; returns a cursor holding the result."""
        return self.cursor().execute(sql, parameters)

    def executemany(self, sql: str, parameter_rows: Sequence[Sequence[object]]) -> Cursor:
        """Run a prepared statement once per parameter row."""
        return self.cursor().executemany(sql, parameter_rows)

    def _plan_statement(self, statement: Statement):
        """The cacheable plan for a statement: SELECTs and ``EXPLAIN <select>``
        (the Explain handler honours it under the same catalog-version guard
        the SELECT path uses)."""
        if isinstance(statement, Select):
            return self.database.executor.plan_select(statement)
        if isinstance(statement, Explain) and isinstance(statement.statement, Select):
            return self.database.executor.plan_select(statement.statement)
        return None

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse (and for SELECTs, plan) once; cached by SQL text in LRU order.

        Spans record work actually performed: a plan-cache hit parses and
        plans nothing, so it records nothing — parse/plan spans appear on
        misses (and a ``plan`` span on a stale-plan refresh).
        """
        self._require_open()
        cached = self._statements.get(sql)
        if cached is not None:
            self._statements.move_to_end(sql)
            self._plan_cache_hits += 1
            if (
                cached.plan is not None
                and cached.plan.catalog_version != self.database.catalog.version
            ):
                # DDL on another connection sharing this engine moved the
                # catalog; refresh the plan once here so the hot path does
                # not re-plan on every execution forever.
                cached.plan = self._plan_statement(cached.statement)
                self._plan_cache_invalidations += 1
                trace = current_trace()
                if trace is not None:
                    trace.add_span(
                        "plan",
                        parent_id=trace.cross_thread_parent_id,
                        detail="stale plan refreshed",
                    )
            return cached
        self._plan_cache_misses += 1
        trace = current_trace()
        started = time.perf_counter()
        statement = parse(sql)
        if trace is not None:
            trace.add_span(
                "parse",
                parent_id=trace.cross_thread_parent_id,
                wall_seconds=time.perf_counter() - started,
            )
        started = time.perf_counter()
        plan = self._plan_statement(statement)
        if trace is not None:
            trace.add_span(
                "plan",
                parent_id=trace.cross_thread_parent_id,
                wall_seconds=time.perf_counter() - started,
                estimated_seconds=plan.root.estimated_seconds if plan is not None else None,
                detail="plan cache miss" if plan is not None else "not a planned statement",
            )
        prepared = PreparedStatement(sql, statement, plan)
        if self._plan_cache_size > 0:
            self._statements[sql] = prepared
            while len(self._statements) > self._plan_cache_size:
                self._statements.popitem(last=False)
        return prepared

    def _invalidate_plans(self, statement: Statement) -> None:
        """Drop cached plans after statements that change schema or serving state."""
        if isinstance(statement, _CACHE_INVALIDATING):
            self._plan_cache_invalidations += len(self._statements)
            self._statements.clear()

    def _statement_cost_probe(self, prepared: PreparedStatement):
        """Simulated-seconds probe covering every ledger this statement touches.

        Planned SELECTs reuse the plan's own probe (database + served-shard +
        view-store ledgers); everything else charges the database ledger only
        (DML's serving-side cost is applied asynchronously by the maintenance
        worker and attributed there).
        """
        plan = prepared.plan
        if plan is not None:
            if prepared.probe_plan is not plan:
                prepared.probe = plan.cost_probe(self.database)
                prepared.probe_plan = plan
            return prepared.probe
        return lambda: self.database.stats.simulated_seconds

    def _execute(self, sql: str, parameters: Sequence[object] | None) -> ResultSet:
        self._require_open()
        obs = self.database.obs
        trace = obs.begin_trace(sql)
        if trace is None:
            prepared = self.prepare(sql)
            result = self.database.executor.execute(
                prepared.statement, parameters, self._sessions, plan=prepared.plan
            )
            self._invalidate_plans(prepared.statement)
            self._harvest_write_tickets(prepared.statement)
            return result
        wall_started = time.perf_counter()
        root = trace.add_span("statement", detail=self.name)
        trace.cross_thread_parent_id = root.span_id
        token = set_current_trace(trace)
        try:
            prepared = self.prepare(sql)
            probe = self._statement_cost_probe(prepared)
            execute_span = trace.add_span(
                "execute",
                parent_id=root.span_id,
                estimated_seconds=(
                    prepared.plan.root.estimated_seconds
                    if prepared.plan is not None
                    else None
                ),
            )
            trace.cross_thread_parent_id = execute_span.span_id
            simulated_before = probe()
            execute_started = time.perf_counter()
            try:
                result = self.database.executor.execute(
                    prepared.statement, parameters, self._sessions, plan=prepared.plan
                )
            finally:
                trace.cross_thread_parent_id = None
            execute_span.wall_seconds = time.perf_counter() - execute_started
            execute_span.simulated_seconds = probe() - simulated_before
            execute_span.rows = result.rowcount
        finally:
            reset_current_trace(token)
        self._invalidate_plans(prepared.statement)
        self._harvest_write_tickets(prepared.statement)
        trace.finalize(execute_span.simulated_seconds, time.perf_counter() - wall_started)
        obs.record_trace(trace)
        return result

    def _executemany(self, sql: str, parameter_rows: Sequence[Sequence[object]]) -> int:
        self._require_open()
        prepared = self.prepare(sql)
        total = self.database.executor.execute_many(
            prepared.statement, parameter_rows, self._sessions, plan=prepared.plan
        )
        self._invalidate_plans(prepared.statement)
        self._harvest_write_tickets(prepared.statement)
        return total

    def _harvest_write_tickets(self, statement: Statement) -> None:
        """Bind diverted-write tickets to this connection's sessions.

        DML against a served view's base tables enqueues maintenance work; the
        server parks the resulting ticket in a thread-local.  Claiming it here
        (on the same thread that executed the statement) gives this
        connection's next read of that view read-your-writes semantics.
        """
        if not isinstance(statement, (Insert, Update, Delete)):
            return
        table = statement.table.lower()
        for view in self.engine.served_views():
            server = view.server
            if table not in server.source_table_names():
                continue
            ticket = server.take_session_ticket()
            if ticket is not None:
                self._sessions.note_write(view.name, server, ticket)

    # -- session access -----------------------------------------------------------------

    def session(self, view_name: str):
        """This connection's :class:`~repro.serve.server.ClientSession` for a served view."""
        self._require_open()
        view = self.engine.view(view_name)
        if view.server is None:
            raise ConfigurationError(f"view {view_name!r} is not being served")
        return self._sessions.session_for(view.name, view.server)

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("connection is closed")

    def close(self, timeout: float | None = None) -> None:
        """Quiesce and invalidate this connection (idempotent).

        A connection that owns its engine closes every served view — the
        pipeline drains and each view is handed back consistent — so
        ``connect() ... close()`` never leaks background threads.  Wrapping
        connections only release their sessions.
        """
        if self._closed:
            return
        self._closed = True
        self._statements.clear()
        self._sessions.clear()
        self.database.obs.unregister_plan_cache(self.name)
        self.database.obs.registry.remove_provider(f"connection.{self.name}.plan_cache")
        if self._owns_engine:
            for view in self.engine.served_views():
                view.server.close(timeout=timeout)

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    database: Database | None = None,
    engine: HazyEngine | None = None,
    *,
    cost_model: CostModel | None = None,
    buffer_pool_pages: int | None = None,
    observability: Observability | None = None,
    execution_mode: str | None = None,
    registry: FeatureFunctionRegistry | None = None,
    architecture: str | None = None,
    strategy: str | None = None,
    approach: str | None = None,
    plan_cache_size: int = 128,
    **engine_options,
) -> Connection:
    """Open a connection to a (new or existing) Hazy database.

    With no arguments this builds a fresh in-process stack — a
    :class:`~repro.db.database.Database` plus a
    :class:`~repro.core.engine.HazyEngine` — and the returned connection owns
    its lifecycle (``close()`` quiesces any served views).  Pass ``database=``
    to attach an engine to an existing database, or ``engine=`` to open an
    additional connection over an existing engine (e.g. one connection per
    client thread, each with its own session timeline).

    ``architecture`` / ``strategy`` / ``approach`` and any extra keyword
    arguments configure the engine exactly as :class:`HazyEngine` does; they
    are rejected when ``engine=`` is supplied.  ``plan_cache_size`` bounds the
    per-connection prepared-statement LRU (parsed AST + SELECT plan per SQL
    text; 0 disables caching).

    ``observability=`` supplies a preconfigured :class:`repro.obs.Observability`
    for the new database (e.g. ``Observability(enabled=False)`` for the no-op
    path, or a custom ``slow_query_seconds`` threshold); connections opened
    over an existing ``engine=``/``database=`` share that database's context,
    reachable as ``conn.database.obs``.  ``execution_mode=`` picks the new
    database's plan-execution protocol (``"batched"`` columnar chunks by
    default, ``"row"`` for the costed row-at-a-time path).

    Connections and cursors are context managers::

        with repro.connect() as conn:
            with conn.execute("SELECT COUNT(*) FROM papers") as cursor:
                total = cursor.scalar()
    """
    if engine is not None:
        if database is not None and engine.database is not database:
            raise ConfigurationError(
                "connect(database=..., engine=...) requires the engine to be "
                "attached to that same database"
            )
        if (
            cost_model is not None
            or buffer_pool_pages is not None
            or observability is not None
            or execution_mode is not None
        ):
            raise ConfigurationError(
                "cost_model/buffer_pool_pages/observability/execution_mode "
                "configure a new database; they cannot be combined with engine="
            )
        if (
            registry is not None
            or architecture is not None
            or strategy is not None
            or approach is not None
            or engine_options
        ):
            raise ConfigurationError(
                "engine options cannot be combined with an existing engine="
            )
        return Connection(
            engine.database, engine, owns_engine=False, plan_cache_size=plan_cache_size
        )
    if database is None:
        database = Database(
            cost_model=cost_model,
            buffer_pool_pages=buffer_pool_pages,
            observability=observability,
            execution_mode=execution_mode if execution_mode is not None else "batched",
        )
    elif (
        cost_model is not None
        or buffer_pool_pages is not None
        or observability is not None
        or execution_mode is not None
    ):
        raise ConfigurationError(
            "cost_model/buffer_pool_pages/observability/execution_mode "
            "configure a new database; they cannot be combined with database="
        )
    engine = HazyEngine(
        database,
        registry=registry,
        architecture=architecture if architecture is not None else "mainmemory",
        strategy=strategy if strategy is not None else "hazy",
        approach=approach if approach is not None else "eager",
        **engine_options,
    )
    return Connection(database, engine, owns_engine=True, plan_cache_size=plan_cache_size)
