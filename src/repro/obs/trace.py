"""Per-statement tracing: span trees across threads, carried by a contextvar.

A :class:`TraceContext` is born in ``Connection.execute`` and describes one
statement as a tree of :class:`Span` records: the statement root, then
parse → plan → execute children, then one span per plan node (mirroring
``EXPLAIN ANALYZE`` — the per-node *actual* simulated seconds are read from the
same ``PlanRuntime.node_stats`` the EXPLAIN renderer uses, so the two always
agree to the last digit), and finally spans recorded by *other* threads the
statement's work crossed into: batcher rounds and per-shard scatter/gather
calls.

The cross-thread hand-off is a :mod:`contextvars` variable.  The client thread
activates its trace with :func:`use_trace`; anything running on that thread
(the executor, the serving façade) can reach it via :func:`current_trace`.
When work hops threads — a read enters the batcher queue — the submitting side
captures ``current_trace()`` into the queue item, and the collector thread
records its round span directly into the captured context.  Span ids come from
an atomic counter and the span list only ever grows by ``list.append``, so
concurrent recorders never tear the tree.

Every span carries simulated seconds (the paper's cost-model currency),
estimated simulated seconds where a plan estimate exists, and wall-clock
seconds — kept separate end to end, as in the metrics registry.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "Span",
    "TraceContext",
    "TraceRing",
    "current_trace",
    "reset_current_trace",
    "set_current_trace",
    "use_trace",
]

_TRACE_IDS = itertools.count(1)

_CURRENT: ContextVar[TraceContext | None] = ContextVar("repro_obs_trace", default=None)


def current_trace() -> TraceContext | None:
    """The trace active on this thread/context, or None when not tracing."""
    return _CURRENT.get()


@contextmanager
def use_trace(trace: TraceContext | None):
    """Make ``trace`` the active trace for the duration of the block."""
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


def set_current_trace(trace: TraceContext | None):
    """Activate ``trace``; returns the token for :func:`reset_current_trace`.

    The raw pair behind :func:`use_trace`, for per-statement hot paths where
    the contextmanager's generator overhead matters.  Always reset in a
    ``finally``.
    """
    return _CURRENT.set(trace)


def reset_current_trace(token) -> None:
    """Undo a :func:`set_current_trace`."""
    _CURRENT.reset(token)


class Span:
    """One timed region of a statement's execution.

    ``estimated_seconds`` is None where no plan-time estimate exists (parse,
    batcher rounds); ``rows`` is None for spans that don't produce rows.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "simulated_seconds",
        "estimated_seconds",
        "wall_seconds",
        "rows",
        "detail",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        simulated_seconds: float = 0.0,
        estimated_seconds: float | None = None,
        wall_seconds: float = 0.0,
        rows: int | None = None,
        detail: str | None = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.simulated_seconds = simulated_seconds
        self.estimated_seconds = estimated_seconds
        self.wall_seconds = wall_seconds
        self.rows = rows
        self.detail = detail

    def __repr__(self) -> str:
        return (
            f"Span(#{self.span_id} parent={self.parent_id} {self.name!r} "
            f"sim={self.simulated_seconds:.6f}s)"
        )


class TraceContext:
    """The span tree for one statement.

    Spans are appended in creation order; ``span_id`` 1 is always the
    statement root.  ``cross_thread_parent_id`` names the span under which
    recorders on *other* threads (batcher rounds, shard calls) should hang
    their work — the owning thread points it at the execute span before the
    plan runs and clears it after.
    """

    def __init__(self, sql: str):
        self.trace_id = next(_TRACE_IDS)
        self.sql = sql
        self.simulated_seconds = 0.0
        self.wall_seconds = 0.0
        self.cross_thread_parent_id: int | None = None
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._spans: list[Span] = []
        self._pending_plans: list[tuple] = []

    # -- recording -----------------------------------------------------------------------

    def add_span(
        self,
        name: str,
        parent_id: int | None = None,
        simulated_seconds: float = 0.0,
        estimated_seconds: float | None = None,
        wall_seconds: float = 0.0,
        rows: int | None = None,
        detail: str | None = None,
    ) -> Span:
        """Append one span (thread-safe); returns it for in-place updates.

        Lock-free: the id counter and ``list.append`` are each atomic under
        the GIL, so concurrent recorders never tear the list.  Only the
        creating thread may mutate the returned span's fields.
        """
        span = Span(
            next(self._ids),
            parent_id,
            name,
            simulated_seconds,
            estimated_seconds,
            wall_seconds,
            rows,
            detail,
        )
        self._spans.append(span)
        return span

    def add_plan_tree(self, plan, runtime, parent_id: int | None) -> None:
        """Mirror an executed plan's node actuals as spans under ``parent_id``.

        Deferred: the ``(plan, runtime)`` pair is parked here and only
        flattened into spans when the trace is first *read*.  ``runtime`` is
        created fresh by every ``plan.run`` and never mutated after it
        returns, so reading it later yields exactly the per-node actuals
        ``EXPLAIN ANALYZE`` would report — and the statement hot path pays a
        single list append instead of one span per plan node.
        """
        self._pending_plans.append((plan, runtime, parent_id))

    def _flush_pending_locked(self) -> None:
        """Flatten parked plan trees into node spans (caller holds the lock)."""
        pending, self._pending_plans = self._pending_plans, []
        for plan, runtime, parent_id in pending:
            parents_by_depth: dict[int, int | None] = {-1: parent_id}
            for depth, node in plan.root.walk():
                stats = runtime.stats_of(node)
                span = Span(
                    next(self._ids),
                    parents_by_depth.get(depth - 1, parent_id),
                    f"node:{node.label()}",
                    simulated_seconds=stats.seconds,
                    estimated_seconds=node.estimated_seconds,
                    rows=stats.rows,
                    detail=node.detail or None,
                )
                self._spans.append(span)
                parents_by_depth[depth] = span.span_id

    def finalize(self, simulated_seconds: float, wall_seconds: float) -> None:
        """Record statement totals (also mirrored onto the root span)."""
        self.simulated_seconds = simulated_seconds
        self.wall_seconds = wall_seconds
        spans = self._spans
        if spans:
            root = spans[0]
            root.simulated_seconds = simulated_seconds
            root.wall_seconds = wall_seconds

    # -- reading -------------------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Snapshot of the span list in creation order.

        Plan-node spans deferred by :meth:`add_plan_tree` are flattened on the
        first read; they were recorded after every live span (the plan tree is
        mirrored once execution finishes), so creation order is preserved.
        """
        with self._lock:
            if self._pending_plans:
                self._flush_pending_locked()
            return list(self._spans)

    def to_rows(self) -> list[dict[str, object]]:
        """One dict per span, shaped for the ``system.traces`` table."""
        return [
            {
                "trace_id": self.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "simulated_seconds": span.simulated_seconds,
                "estimated_seconds": span.estimated_seconds,
                "wall_seconds": span.wall_seconds,
                "rows": span.rows,
                "detail": span.detail,
                "sql": self.sql,
            }
            for span in self.spans()
        ]

    def render(self) -> str:
        """Indented text rendering of the span tree (debugging aid)."""
        spans = self.spans()
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        lines: list[str] = [f"trace #{self.trace_id}: {self.sql}"]

        def emit(span: Span, depth: int) -> None:
            estimate = (
                f" est={span.estimated_seconds:.6f}s"
                if span.estimated_seconds is not None
                else ""
            )
            rows = f" rows={span.rows}" if span.rows is not None else ""
            lines.append(
                f"{'  ' * depth}{span.name}  sim={span.simulated_seconds:.6f}s{estimate}{rows}"
            )
            for child in children.get(span.span_id, ()):
                emit(child, depth + 1)

        for root in children.get(None, ()):
            emit(root, 0)
        return "\n".join(lines)


class TraceRing:
    """Bounded, thread-safe ring of finished traces (most recent last).

    Backed by a ``deque(maxlen=capacity)`` so the full-ring steady state —
    every statement appends — evicts in O(1); ``deque.append`` is atomic
    under the GIL, so the hot path needs no lock (snapshots still take one
    to get a consistent copy).
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self._lock = threading.Lock()
        self._capacity = int(capacity)
        self._traces: deque[TraceContext] = deque(maxlen=self._capacity)

    def append(self, trace: TraceContext) -> None:
        self._traces.append(trace)

    def snapshot(self) -> list[TraceContext]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        return len(self._traces)
