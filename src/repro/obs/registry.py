"""Thread-safe metrics registry: counters, gauges, histograms, pull providers.

The registry is the single sink the scattered per-component statistics are
mirrored into (buffer pool, cost ledger, batcher, result caches, maintenance
workers, plan caches).  Two acquisition styles coexist deliberately:

* **push instruments** — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
  objects handed to the component that owns the event.  Each instrument
  carries its own lock, so concurrent increments never lose updates (the
  concurrency reconciliation tests pin this exactly).
* **pull providers** — callables registered with :meth:`MetricsRegistry.provider`
  that are sampled only when somebody *reads* the registry
  (:meth:`MetricsRegistry.collect`, ``SELECT * FROM system.metrics``, text
  exposition).  Mirroring an existing stats dict this way costs nothing on the
  hot path, which is what keeps the serving-throughput gate green.

A registry constructed with ``enabled=False`` hands out shared no-op
instruments and samples nothing: the disabled path is a handful of attribute
lookups per event, giving benchmarks a true zero-overhead baseline to compare
against.

Metric names are plain dotted strings (``serve.papers.epochs_published_total``)
following the house convention: ``snake_case`` with a ``_total`` suffix for
monotonic counts and a ``_seconds`` suffix for durations.  Simulated-time and
wall-clock measurements are separate metrics (``..._simulated_seconds`` /
``..._wall_seconds``) — the paper's cost model and the host machine tick at
unrelated rates, so folding them together would make both unreadable.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Callable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "NULL_REGISTRY",
]

#: Default histogram buckets, in seconds: spans sub-millisecond statement
#: overheads up to multi-second scans, with a catch-all +Inf bucket implied.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Quantiles reported by :meth:`Histogram.quantile` consumers (system.metrics).
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class MetricSample:
    """One collected data point: ``(name, kind, value)``.

    ``kind`` is ``"counter"``, ``"gauge"`` or ``"histogram"``; provider-mirrored
    values report as gauges (they are snapshots of someone else's counter).
    """

    __slots__ = ("name", "kind", "value")

    def __init__(self, name: str, kind: str, value: float) -> None:
        self.name = name
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:
        return f"MetricSample({self.name!r}, {self.kind!r}, {self.value!r})"


class Counter:
    """A monotonically increasing, lock-protected count.

    The lock makes ``inc`` linearizable: N threads adding M each always totals
    exactly ``N * M`` (bare ``float +=`` is not atomic under the GIL once the
    read and the store are separate bytecodes).
    """

    __slots__ = ("_lock", "_value")

    # Shared-state contract, enforced by repro-lint's lock pass.
    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("_lock", "_value")

    # Shared-state contract, enforced by repro-lint's lock pass.
    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates.

    Buckets are cumulative upper bounds (Prometheus style) plus an implicit
    +Inf bucket; ``observe`` is O(log buckets) via bisect under one lock.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_count", "_sum")

    # Shared-state contract, enforced by repro-lint's lock pass.  The bisect
    # in observe() reads only the immutable bucket bounds, so it runs outside
    # the lock on purpose.
    _GUARDED_BY = {"_counts": "_lock", "_count": "_lock", "_sum": "_lock"}

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        cumulative = 0
        out: list[tuple[float, int]] = []
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, interpolated within the landing bucket.

        Returns 0.0 with no observations; observations beyond the last finite
        bound clamp to that bound (the +Inf bucket has no width to split).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                return lower + (upper - lower) * ((rank - previous) / count)
        return self.buckets[-1]


class _NullCounter(Counter):
    """Shared no-op counter for disabled registries.

    Subclassing keeps the instrument getters honestly typed (``counter()``
    really returns a :class:`Counter`); the parent's slots are never assigned
    because ``__init__`` is a no-op, and every touching method is overridden.
    """

    __slots__ = ()

    def __init__(self) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullHistogram(Histogram):
    __slots__ = ()
    buckets = DEFAULT_BUCKETS

    def __init__(self) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Process-wide named metrics with lazy pull providers.

    Instrument getters are idempotent: asking twice for the same name returns
    the same object, so independent components can share a counter by name.
    Asking for a name registered as a different kind is an error — silent
    type confusion is how metrics rot.
    """

    # Shared-state contract, enforced by repro-lint's lock pass.
    _GUARDED_BY = {
        "_counters": "_lock",
        "_gauges": "_lock",
        "_gauge_fns": "_lock",
        "_histograms": "_lock",
        "_providers": "_lock",
    }

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._gauge_fns: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: dict[str, Callable[[], Mapping[str, float]]] = {}

    # -- instrument acquisition ----------------------------------------------------------

    def _check_free(self, name: str, kind: str) -> None:
        registrations: tuple[tuple[str, Mapping[str, object]], ...] = (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("gauge", self._gauge_fns),
            ("histogram", self._histograms),
        )
        for registered_kind, names in registrations:
            if registered_kind != kind and name in names:
                raise ValueError(f"metric {name!r} already registered as a {registered_kind}")

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        if not self.enabled:
            return _NULL_COUNTER
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, "counter")
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The settable gauge called ``name``, created on first use."""
        if not self.enabled:
            return _NULL_GAUGE
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, "gauge")
                instrument = self._gauges[name] = Gauge()
            return instrument

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register a callback gauge sampled at collect time (replaces prior)."""
        if not self.enabled:
            return
        with self._lock:
            self._check_free(name, "gauge")
            self._gauge_fns[name] = fn

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name``, created on first use."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, "histogram")
                instrument = self._histograms[name] = Histogram(buckets)
            return instrument

    # -- pull providers ------------------------------------------------------------------

    def provider(self, prefix: str, fn: Callable[[], Mapping[str, float]]) -> None:
        """Register a stats source sampled lazily at collect time.

        ``fn`` returns ``{metric_suffix: value}``; each key is exposed as
        ``{prefix}.{metric_suffix}``.  Re-registering a prefix replaces the
        previous provider (a re-served view supersedes its old incarnation).
        """
        if not self.enabled:
            return
        with self._lock:
            self._providers[prefix] = fn

    def remove_provider(self, prefix: str) -> None:
        """Drop a provider (component shut down); unknown prefixes are a no-op."""
        with self._lock:
            self._providers.pop(prefix, None)

    # -- collection ----------------------------------------------------------------------

    def collect(self) -> list[MetricSample]:
        """Sample every instrument and provider, sorted by metric name.

        Providers that raise are skipped (a view mid-shutdown must not take
        the whole metrics endpoint down with it).
        """
        if not self.enabled:
            return []
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            gauge_fns = list(self._gauge_fns.items())
            histograms = list(self._histograms.items())
            providers = list(self._providers.items())
        samples: list[MetricSample] = []
        for name, counter in counters:
            samples.append(MetricSample(name, "counter", counter.value))
        for name, gauge in gauges:
            samples.append(MetricSample(name, "gauge", gauge.value))
        for name, fn in gauge_fns:
            try:
                samples.append(MetricSample(name, "gauge", float(fn())))
            except Exception:
                continue
        for name, histogram in histograms:
            samples.append(MetricSample(f"{name}_count", "histogram", histogram.count))
            samples.append(MetricSample(f"{name}_sum", "histogram", histogram.sum))
            for q in DEFAULT_QUANTILES:
                samples.append(
                    MetricSample(f"{name}_p{int(q * 100)}", "histogram", histogram.quantile(q))
                )
        for prefix, fn in providers:
            try:
                mirrored = fn()
            except Exception:
                continue
            for suffix, value in mirrored.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    samples.append(MetricSample(f"{prefix}.{suffix}", "gauge", float(value)))
        samples.sort(key=lambda sample: sample.name)
        return samples

    def value(self, name: str) -> float | None:
        """The current value of one collected metric, or None when absent."""
        for sample in self.collect():
            if sample.name == name:
                return sample.value
        return None


#: Shared disabled registry: the default sink for components built without an
#: observability context (standalone unit-test servers, ad-hoc Databases).
NULL_REGISTRY = MetricsRegistry(enabled=False)
