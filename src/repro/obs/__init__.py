"""``repro.obs`` — the unified observability layer.

One process-wide :class:`Observability` object (owned by the
:class:`~repro.db.database.Database`, shared by every connection, engine and
served view built on it) bundles the three concerns the subsystem provides:

* a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges and
  histograms into which every layer's statistics are pushed or mirrored;
* per-statement :class:`~repro.obs.trace.TraceContext` span trees, retained in
  a bounded :class:`~repro.obs.trace.TraceRing`;
* a **slow-query log**: any statement whose *simulated* cost meets
  ``slow_query_seconds`` is kept (with its full span tree) in a second ring.

Everything is queryable through the SQL front door as virtual ``system.*``
tables — see :mod:`repro.db.sql` for the table list — and exportable as
Prometheus-style text via :func:`render_text` for the future HTTP tier.

Construct with ``enabled=False`` for a true no-op path: instruments become
shared null objects, traces are not recorded, and the serving hot path pays
only a few attribute lookups.
"""

from __future__ import annotations

import threading

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    TraceRing,
    current_trace,
    reset_current_trace,
    set_current_trace,
    use_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Observability",
    "Span",
    "TraceContext",
    "TraceRing",
    "current_trace",
    "render_text",
    "reset_current_trace",
    "set_current_trace",
    "use_trace",
]

#: Default slow-query threshold in *simulated* seconds.  Two random page reads
#: under the on-disk cost model already cost 0.01; a tenth of a simulated
#: second means "touched thousands of tuples or hundreds of pages".
DEFAULT_SLOW_QUERY_SECONDS = 0.1


class Observability:
    """Registry + trace ring + slow-query log, as one shareable object.

    Parameters
    ----------
    enabled:
        False gives the zero-overhead null path (benchmark baseline).
    trace_capacity / slow_query_capacity:
        Ring sizes for recent traces and slow statements.
    slow_query_seconds:
        Simulated-seconds threshold at which a statement enters the slow log.
        Mutable at runtime (``db.obs.slow_query_seconds = 0.0`` traps every
        statement — handy in tests).
    """

    def __init__(
        self,
        enabled: bool = True,
        trace_capacity: int = 128,
        slow_query_capacity: int = 64,
        slow_query_seconds: float = DEFAULT_SLOW_QUERY_SECONDS,
    ):
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry(enabled=enabled)
        self.traces = TraceRing(trace_capacity)
        self.slow_queries = TraceRing(slow_query_capacity)
        self.slow_query_seconds = float(slow_query_seconds)
        self._lock = threading.Lock()
        self._plan_caches: dict[str, object] = {}
        # Statement-level instruments, resolved once: record_trace runs on
        # every statement and must not pay the registry's name lookup each
        # time.  (On a disabled registry these are the shared null objects.)
        self._statements_total = self.registry.counter("sql.statements_total")
        self._slow_queries_total = self.registry.counter("sql.slow_queries_total")
        self._simulated_histogram = self.registry.histogram(
            "sql.statement_simulated_seconds"
        )
        self._wall_histogram = self.registry.histogram("sql.statement_wall_seconds")

    # -- statement lifecycle -------------------------------------------------------------

    def begin_trace(self, sql: str) -> TraceContext | None:
        """A fresh trace for one statement, or None when disabled."""
        if not self.enabled:
            return None
        return TraceContext(sql)

    def record_trace(self, trace: TraceContext) -> None:
        """File a finalized trace into the ring(s) and statement metrics."""
        if not self.enabled:
            return
        self.traces.append(trace)
        self._statements_total.inc()
        self._simulated_histogram.observe(trace.simulated_seconds)
        self._wall_histogram.observe(trace.wall_seconds)
        if trace.simulated_seconds >= self.slow_query_seconds:
            self.slow_queries.append(trace)
            self._slow_queries_total.inc()

    # -- plan-cache roster ---------------------------------------------------------------
    #
    # Connections come and go; each registers a stats callable here so
    # ``system.plan_cache`` can enumerate the live ones.

    def register_plan_cache(self, name: str, stats_fn) -> None:
        with self._lock:
            self._plan_caches[name] = stats_fn

    def unregister_plan_cache(self, name: str) -> None:
        with self._lock:
            self._plan_caches.pop(name, None)

    def plan_cache_rows(self) -> list[dict[str, object]]:
        """One row per live connection's plan cache (``system.plan_cache``)."""
        with self._lock:
            entries = list(self._plan_caches.items())
        rows = []
        for name, stats_fn in sorted(entries):
            try:
                stats = dict(stats_fn())
            except Exception:
                continue
            stats["connection"] = name
            rows.append(stats)
        return rows


def render_text(registry: MetricsRegistry) -> str:
    """Prometheus-style text exposition of every collected metric.

    Dots in metric names become underscores (Prometheus identifiers); the
    ``# TYPE`` comment precedes each sample.  Ends with a newline, as the
    exposition format requires.
    """
    lines: list[str] = []
    for sample in registry.collect():
        flat = sample.name.replace(".", "_").replace("-", "_")
        lines.append(f"# TYPE {flat} {sample.kind}")
        value = sample.value
        rendered = repr(value) if isinstance(value, float) else str(value)
        lines.append(f"{flat} {rendered}")
    return "\n".join(lines) + "\n" if lines else ""
