"""Exception hierarchy shared by all of the Hazy reproduction packages.

Every error raised by this library derives from :class:`HazyError`, so callers
can catch one base class when they want to treat "anything Hazy did wrong" as a
single failure mode while still being able to distinguish the database
substrate, the learning substrate, and the view-maintenance core.
"""

from __future__ import annotations


class HazyError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(HazyError):
    """An invalid option or parameter was supplied to a public API."""


# ---------------------------------------------------------------------------
# Database substrate
# ---------------------------------------------------------------------------


class DatabaseError(HazyError):
    """Base class for errors raised by the relational substrate ``repro.db``."""


class SchemaError(DatabaseError):
    """A table/column definition is invalid or a value violates the schema."""


class CatalogError(DatabaseError):
    """A named object (table, view, index, trigger) is missing or duplicated."""


class DuplicateKeyError(DatabaseError):
    """An insert or index update violated a primary-key/unique constraint."""


class KeyNotFoundError(DatabaseError):
    """A lookup by primary key found no matching tuple."""


class PageError(DatabaseError):
    """Low-level page/heap file corruption or capacity violation."""


class SQLError(DatabaseError):
    """Base class for SQL front-end problems."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed.

    Carries machine-readable diagnostics alongside the message: ``position``
    is the 0-based character offset of the offending token in the input and
    ``token`` is its text (both None when the error is not anchored to one
    token, e.g. an unterminated string reported at its opening quote).
    """

    def __init__(
        self, message: str, position: int | None = None, token: str | None = None
    ) -> None:
        super().__init__(message)
        self.position = position
        self.token = token


class SQLExecutionError(SQLError):
    """The SQL statement parsed but could not be executed."""


class SQLPlanningError(SQLExecutionError):
    """The statement parsed but the planner rejected it (unknown column,
    ambiguous reference, unsupported read shape).

    Like :class:`SQLSyntaxError` it carries machine-readable diagnostics:
    ``position`` is the character offset of the offending token in the input
    and ``token`` its text (both None when the error is not anchored to one
    token).
    """

    def __init__(
        self, message: str, position: int | None = None, token: str | None = None
    ) -> None:
        super().__init__(message)
        self.position = position
        self.token = token


# ---------------------------------------------------------------------------
# Learning substrate
# ---------------------------------------------------------------------------


class LearningError(HazyError):
    """Base class for errors raised by ``repro.learn``."""


class NotFittedError(LearningError):
    """A model was used for prediction before it was trained."""


class FeatureError(HazyError):
    """A feature function was misused (e.g. stats not computed first)."""


# ---------------------------------------------------------------------------
# View maintenance core
# ---------------------------------------------------------------------------


class ViewError(HazyError):
    """Base class for errors raised by the classification-view core."""


class ViewDefinitionError(ViewError):
    """A ``CREATE CLASSIFICATION VIEW`` definition is invalid."""


class MaintenanceError(ViewError):
    """The incremental maintenance machinery reached an inconsistent state."""


# ---------------------------------------------------------------------------
# Network serving tier
# ---------------------------------------------------------------------------


class NetworkError(HazyError):
    """Base class for errors raised by the wire front door ``repro.net``."""


class ProtocolError(NetworkError):
    """A wire frame was malformed (bad length prefix, truncated payload,
    not valid JSON, or an unknown operation)."""


class ConnectionClosedError(NetworkError):
    """The peer went away: the socket reported EOF or reset mid-exchange."""


class NetworkTimeoutError(NetworkError):
    """A socket operation exceeded its deadline.

    The connection that raised this is *poisoned* — the response may still
    arrive later and desynchronize the framing — so callers must close it
    (the pool's health check replaces poisoned members automatically).
    """


class PoolExhaustedError(NetworkError):
    """``ConnectionPool.acquire`` found no free connection within its timeout."""


class AdmissionError(NetworkError):
    """Base class for admission-control refusals (server-side backpressure)."""


class AdmissionRejectedError(AdmissionError):
    """The statement's admission lane was at capacity; retry later."""


class AdmissionTimeoutError(AdmissionError):
    """The statement waited in its admission lane past its deadline."""


# ---------------------------------------------------------------------------
# Checkpoint / recovery subsystem
# ---------------------------------------------------------------------------


class SnapshotError(HazyError):
    """Base class for errors raised by the checkpoint/recovery subsystem."""


class SnapshotCorruptionError(SnapshotError):
    """A snapshot file is truncated, has a bad magic, or fails its CRC check."""


class SnapshotVersionError(SnapshotError):
    """A snapshot was written by an incompatible format version."""


class SnapshotMismatchError(SnapshotError):
    """A snapshot does not match the view/server it is being restored into."""
