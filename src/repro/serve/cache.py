"""Water-band-aware result cache (paper Figure 8, lifted to the serving layer).

The key observation behind the hybrid architecture's ε-map is that an entity
whose stored margin lies *outside* the low/high-water band has a label that is
certain under the current model — no store access, no dot product.  The
serving subsystem applies the same trick above the store: every record a read
fetches deposits its stored ``eps`` here, and as long as the entity stays
outside the band, repeat reads are answered straight from this map without
touching the maintainer at all.

Two events bound the cache's validity:

* **model movement** widens the band, so an entry silently stops answering
  (the band check fails) — no invalidation needed, correctness is per-lookup;
* **reorganization** recomputes every stored ``eps`` under a new stored model,
  so all cached margins become meaningless — the cache watches the
  maintainer's reorganization counter and drops everything when it moves.

Entries are evicted FIFO beyond ``capacity``.  The cache is manipulated only
by its shard's worker thread, so it needs no internal locking.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

from repro.core.bounds import WaterBand
from repro.core.stores.base import EntityRecord

__all__ = ["WaterBandResultCache"]


class WaterBandResultCache:
    """Serve repeat Single Entity reads from cached ε values.

    Parameters
    ----------
    band_supplier:
        Returns the shard's current cumulative water band, or None when the
        strategy has no band (naive maintainers) — the cache then never hits.
    reorg_supplier:
        Returns the shard's reorganization count; any change invalidates.
    capacity:
        Maximum number of cached ε entries (FIFO eviction).
    """

    def __init__(
        self,
        band_supplier: Callable[[], WaterBand | None],
        reorg_supplier: Callable[[], int],
        capacity: int = 100_000,
    ):
        self._band_supplier = band_supplier
        self._reorg_supplier = reorg_supplier
        self._capacity = int(capacity)
        self._eps: OrderedDict[object, float] = OrderedDict()
        self._seen_reorgs = reorg_supplier()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _check_epoch(self) -> None:
        reorgs = self._reorg_supplier()
        if reorgs != self._seen_reorgs:
            self._seen_reorgs = reorgs
            if self._eps:
                self._eps.clear()
                self.invalidations += 1

    def lookup(self, entity_id: object) -> int | None:
        """The cached label when the entity is certain under the current band."""
        self._check_epoch()
        eps = self._eps.get(entity_id)
        if eps is not None:
            band = self._band_supplier()
            if band is not None:
                if band.certain_positive(eps):
                    self.hits += 1
                    return 1
                if band.certain_negative(eps):
                    self.hits += 1
                    return -1
        self.misses += 1
        return None

    def observe(self, record: EntityRecord) -> None:
        """Deposit the stored ε of a record some read just fetched."""
        self._check_epoch()
        if record.entity_id not in self._eps and len(self._eps) >= self._capacity:
            self._eps.popitem(last=False)
        self._eps[record.entity_id] = record.eps

    def evict(self, entity_id: object) -> None:
        """Drop one entity (entity update/delete)."""
        self._eps.pop(entity_id, None)

    def clear(self) -> None:
        """Drop everything."""
        self._eps.clear()

    def __len__(self) -> int:
        return len(self._eps)

    def stats(self) -> dict[str, int]:
        """Hit/miss/invalidation counters plus current size (canonical
        ``_total``-suffixed keys only)."""
        return {
            "hits_total": self.hits,
            "misses_total": self.misses,
            "invalidations_total": self.invalidations,
            "entries": len(self._eps),
        }
