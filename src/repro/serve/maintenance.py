"""The background maintenance pipeline.

A single worker thread drains a **bounded** queue of
:class:`~repro.serve.requests.WriteOp` values and applies them to the sharded
view in batches.  The batch lifecycle is built around one invariant: *reads
never block behind model retraining*.

Each drained batch goes through two phases:

1. **Prepare (no locks held).**  New entities are featurized, training
   examples are resolved against entity features, and the global trainer
   absorbs them — one gradient step per example, collecting the intermediate
   model snapshots.  Deletions/updates of examples trigger the paper's
   footnote-2 semantics (full retrain from the retained example set), also
   outside any lock.  Readers keep streaming through the shards the whole
   time.
2. **Apply (writers' side of the server lock).**  Entity removals and
   insertions land on their owning shards, then the collected model run is
   handed to every shard's
   :meth:`~repro.core.maintainers.base.ViewMaintainer.apply_model_batch` —
   the eager Hazy maintainer reclassifies only the cumulative water band,
   once, under the final model.  The epoch clock then advances, the new model
   snapshot is published, and every ticket in the batch resolves to the new
   epoch.

Backpressure is the queue bound: when maintenance falls behind, producers
(SQL triggers, ``insert_example`` callers) block in ``enqueue`` instead of
growing an unbounded backlog.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Sequence

from repro.learn.model import LinearModel
from repro.learn.sgd import TrainingExample
from repro.serve.requests import WriteKind, WriteOp, WriteTicket
from repro.serve.sharding import shard_index

__all__ = ["MaintenanceWorker"]

_STOP = object()


class MaintenanceWorker:
    """Drains the write queue and applies batches to the sharded view.

    ``host`` is the owning :class:`~repro.serve.server.ViewServer`; the worker
    drives it through a small protocol: ``featurize_entity(row)``,
    ``entity_key(row)``, ``build_example(row, pending_features)``,
    ``retain_example(example)``, ``forget_example(old_row)``,
    ``retained_examples()``, ``charge_model_update()``,
    ``record_mutations(entity_ops)``,
    ``publish_epoch(final_model, dirty_shards, wal_seq)`` and
    ``rotate_wal()`` plus the ``trainer``, ``shards``, ``rw_lock`` and
    ``epoch_clock`` attributes.
    """

    def __init__(
        self,
        host,
        queue_capacity: int = 4096,
        max_batch: int = 64,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._host = host
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._max_batch = int(max_batch)
        self.batches_applied = 0
        self.ops_applied = 0
        self.backpressure_waits = 0
        self.last_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="hazy-maintenance", daemon=True
        )
        self._started = False

    # -- producer side -----------------------------------------------------------------------

    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        if not self._started:
            self._started = True
            self._thread.start()

    def enqueue(self, op: WriteOp, timeout: float | None = None) -> WriteTicket:
        """Admit one write; blocks when the queue is full (backpressure)."""
        try:
            self._queue.put_nowait(op)
        except queue.Full:
            # The bound is doing its job: count the stall, then block as before.
            self.backpressure_waits += 1
            self._queue.put(op, timeout=timeout)
        return op.ticket

    def flush(self, timeout: float | None = None) -> int:
        """Barrier: returns once everything enqueued before it is visible."""
        ticket = self.enqueue(WriteOp(kind=WriteKind.BARRIER))
        return ticket.wait(timeout=timeout)

    def backlog(self) -> int:
        """Approximate number of queued, not-yet-applied writes."""
        return self._queue.qsize()

    def close(self, timeout: float | None = None) -> None:
        """Drain outstanding work, then stop the worker thread."""
        if not self._started:
            return
        self._queue.put(_STOP)
        self._thread.join(timeout=timeout)

    # -- worker side --------------------------------------------------------------------------

    def _drain(self) -> tuple[list[WriteOp], bool]:
        """Block for the first op, then greedily take up to ``max_batch``."""
        first = self._queue.get()
        if first is _STOP:
            return [], True
        ops = [first]
        stop = False
        while len(ops) < self._max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                stop = True
                break
            ops.append(item)
        return ops, stop

    def _run(self) -> None:
        while True:
            ops, stop = self._drain()
            if ops:
                try:
                    self._apply_batch(ops)
                except BaseException as error:  # keep serving; surface via tickets
                    self.last_error = error
                    for op in ops:
                        if not op.ticket.done:
                            op.ticket.fail(error)
            if stop:
                break

    def _apply_batch(self, ops: Sequence[WriteOp]) -> None:
        host = self._host

        # ---- Phase 1: prepare, train — no locks, readers unaffected ----------------
        # Entity churn is kept as one *ordered* op list: an insert+delete (or
        # insert+update) of the same entity within a single drained batch must
        # replay in arrival order or it corrupts the shards.
        entity_ops: list[tuple[str, object]] = []  # ("add", (id, features)) | ("remove", id)
        pending_features: dict[object, object] = {}
        new_examples: list[TrainingExample] = []
        needs_retrain = False

        for op in ops:
            if op.kind is WriteKind.BARRIER:
                continue
            if op.kind is WriteKind.ENTITY_INSERT:
                entity_id, features = host.featurize_entity(op.row)
                entity_ops.append(("add", (entity_id, features)))
                pending_features[entity_id] = features
            elif op.kind is WriteKind.ENTITY_DELETE:
                entity_id = host.entity_key(op.old_row)
                entity_ops.append(("remove", entity_id))
                pending_features.pop(entity_id, None)
            elif op.kind is WriteKind.ENTITY_UPDATE:
                entity_ops.append(("remove", host.entity_key(op.old_row)))
                entity_id, features = host.featurize_entity(op.row)
                entity_ops.append(("add", (entity_id, features)))
                pending_features[entity_id] = features
            elif op.kind is WriteKind.EXAMPLE_INSERT:
                example = host.build_example(op.row, pending_features)
                host.retain_example(example)
                new_examples.append(example)
            elif op.kind is WriteKind.EXAMPLE_DELETE:
                if host.forget_example(op.old_row):
                    needs_retrain = True
            elif op.kind is WriteKind.EXAMPLE_UPDATE:
                if host.forget_example(op.old_row):
                    needs_retrain = True
                example = host.build_example(op.row, pending_features)
                host.retain_example(example)
                new_examples.append(example)

        models: list[LinearModel] = []
        if needs_retrain:
            # Footnote 2: deletion invalidates the incremental trajectory —
            # retrain from scratch over the retained examples, still unlocked.
            host.trainer.reset()
            for example in host.retained_examples():
                host.charge_model_update()
                host.trainer.absorb(example)
            models = [host.trainer.model.copy()]
        elif new_examples:
            for example in new_examples:
                host.charge_model_update()
                models.append(host.trainer.absorb(example))

        # ---- Phase 2: apply — exclusive, but short (no training in here) -------------
        mutated = bool(entity_ops or models)
        if mutated:
            # Which shards this batch touches (the basis for incremental
            # checkpoints): a model run reclassifies *every* shard, entity
            # churn only the owning ones.  Also the highest WAL sequence
            # number the batch carries — publish records it so checkpoints
            # know where recovery's replay must start.
            num_shards = len(host.shards)
            if models:
                dirty_shards = frozenset(range(num_shards))
            else:
                dirty_shards = frozenset(
                    shard_index(
                        payload if action == "remove" else payload[0], num_shards
                    )
                    for action, payload in entity_ops
                )
            applied_seq = max(
                (op.wal_seq for op in ops if op.wal_seq is not None), default=None
            )
            with host.rw_lock.write_locked():
                for action, payload in entity_ops:
                    if action == "remove":
                        host.shards.remove_entity(payload)
                    else:
                        entity_id, features = payload
                        host.shards.add_entity(entity_id, features)
                if models:
                    host.shards.apply_model_batch(models)
                host.record_mutations(entity_ops)
                epoch = host.publish_epoch(
                    models[-1] if models else None,
                    dirty_shards=dirty_shards,
                    wal_seq=applied_seq,
                )
            host.rotate_wal()
        else:
            epoch = host.epoch_clock.epoch

        self.batches_applied += 1
        self.ops_applied += sum(1 for op in ops if op.kind is not WriteKind.BARRIER)
        for op in ops:
            op.ticket.resolve(epoch)

    def stats(self) -> dict[str, float]:
        """Worker counters for dashboards and benchmarks (canonical
        ``_total``-suffixed keys only)."""
        return {
            "batches_applied_total": self.batches_applied,
            "ops_applied_total": self.ops_applied,
            "backpressure_waits_total": self.backpressure_waits,
            "avg_ops_per_batch": (
                self.ops_applied / self.batches_applied if self.batches_applied else 0.0
            ),
            "backlog": self.backlog(),
        }
