"""Synchronization primitives for the serving subsystem.

Two small pieces:

* :class:`ReadWriteLock` — a writer-preferring readers/writer lock.  Many
  client threads may hold it shared (scatter/gather reads, batched read
  rounds); the background maintenance worker takes it exclusively only for the
  short *apply* phase of each batch.  Model retraining happens entirely
  outside the lock, which is what gives the subsystem its "reads never block
  behind retraining" property.
* :class:`EpochClock` — a monotonically increasing epoch counter published by
  the maintenance worker after each fully applied batch.  Readers tag results
  with the epoch they observed, write tickets resolve to the epoch at which
  the write became visible, and ``wait_for`` implements read-your-writes.
* :class:`SessionRegistry` — one client-side session per served view,
  lazily created and re-created when a view is re-served.  This is the
  "context" object :func:`repro.connect` threads through the SQL executor so
  that every SELECT a connection issues against a served view observes that
  connection's monotonic read-your-writes timeline.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock", "EpochClock", "SessionRegistry"]


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Readers proceed concurrently; a waiting writer blocks *new* readers so the
    maintenance worker cannot starve under a heavy read load.
    """

    # Shared-state contract, enforced by repro-lint's lock pass.
    _GUARDED_BY = {
        "_active_readers": "_condition",
        "_writer_active": "_condition",
        "_writers_waiting": "_condition",
    }

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- reader side ----------------------------------------------------------------------

    def acquire_read(self) -> None:
        """Take the lock shared; blocks while a writer is active or waiting."""
        with self._condition:
            while self._writer_active or self._writers_waiting > 0:
                self._condition.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        """Release one shared hold."""
        with self._condition:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._condition.notify_all()

    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` — shared critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- writer side ----------------------------------------------------------------------

    def acquire_write(self) -> None:
        """Take the lock exclusively; waits for in-flight readers to drain."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers > 0:
                    self._condition.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` — exclusive critical section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class EpochClock:
    """A monotonic epoch counter with blocking waits.

    Epoch 0 is the state the server was built from (the bulk-loaded view);
    each maintenance batch that becomes visible advances the clock by one.
    """

    # The epoch is published under the condition; the lock-free property read
    # is safe (int loads are atomic) and reads are not what the pass checks.
    _GUARDED_BY = {"_epoch": "_condition"}

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("epoch clock cannot start below 0")
        self._condition = threading.Condition()
        self._epoch = int(start)

    @property
    def epoch(self) -> int:
        """The latest published epoch."""
        return self._epoch

    def advance(self) -> int:
        """Publish the next epoch and wake any waiters; returns the new epoch."""
        with self._condition:
            self._epoch += 1
            self._condition.notify_all()
            return self._epoch

    def wait_for(self, epoch: int, timeout: float | None = None) -> bool:
        """Block until the clock reaches ``epoch``; False on timeout."""
        with self._condition:
            return self._condition.wait_for(lambda: self._epoch >= epoch, timeout=timeout)


class SessionRegistry:
    """Per-connection map from served view name to its live ``ClientSession``.

    A session belongs to one ``ViewServer`` incarnation: when a view is
    stopped and served again (or restored from a checkpoint), the stale
    session is silently replaced — the new server's epoch clock may have
    restarted, so carrying the old session's watermark across would raise
    spurious monotonicity violations.
    """

    def __init__(self) -> None:
        self._sessions: dict[str, object] = {}

    def session_for(self, name: str, server):
        """The session bound to ``name``, creating/replacing it as needed."""
        key = name.lower()
        session = self._sessions.get(key)
        if session is None or session._server is not server:
            session = server.session()
            self._sessions[key] = session
        return session

    def note_write(self, name: str, server, ticket) -> None:
        """Record a write ticket so the view's next session read waits for it."""
        self.session_for(name, server).note_write(ticket)

    def clear(self) -> None:
        """Drop every session (connection close)."""
        self._sessions.clear()
