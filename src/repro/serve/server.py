"""The ``ViewServer`` front-end: concurrent access to one classification view.

The server owns four moving parts and wires them together:

* a :class:`~repro.serve.sharding.ShardSet` — the entity space hash-partitioned
  across N worker threads, each with its own store, maintainer, and
  water-band result cache;
* a :class:`~repro.serve.batcher.ReadBatcher` — concurrent ``label_of`` calls
  coalesce into batched, per-shard ``read_many`` rounds;
* a :class:`~repro.serve.maintenance.MaintenanceWorker` — writes are queued
  (bounded, backpressuring) and applied in batches, with training kept outside
  the lock readers take;
* the :class:`~repro.serve.sync.ReadWriteLock` + :class:`~repro.serve.sync.EpochClock`
  pair giving **snapshot consistency**: every read executes under the shared
  side of the lock, so it observes a fully applied epoch, and is tagged with
  that epoch; writes resolve to the epoch at which they became visible; a
  :class:`ClientSession` threads the two together into monotonic
  read-your-writes semantics.

The server can be built standalone (benchmarks drive it straight from a
bulk-loaded maintainer) or attached to a live
:class:`~repro.core.engine.ClassificationView` via
:meth:`ViewServer.attach_view` / ``HazyEngine.serve`` — in attached mode the
view's SQL triggers are diverted into the maintenance queue, so ordinary
``INSERT``/``UPDATE``/``DELETE`` statements feed the pipeline instead of
retraining inline.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from pathlib import Path

from repro.core.maintainers.base import ViewMaintainer
from repro.core.stores.base import EntityStore
from repro.core.stores.hybrid import HybridEntityStore
from repro.core.stores.mainmemory import InMemoryEntityStore
from repro.core.stores.ondisk import OnDiskEntityStore
from repro.db.buffer_pool import IOStatistics
from repro.db.triggers import Trigger, TriggerEvent
from repro.exceptions import ConfigurationError, KeyNotFoundError, MaintenanceError
from repro.learn.model import LinearModel, sign
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector
from repro.obs import Counter, current_trace
from repro.persist.checkpoint import (
    MANIFEST_NAME,
    shard_file_name,
    shard_file_sha,
    write_feature_function,
    write_manifest,
    write_shard_state,
)
from repro.persist.format import read_json_frame
from repro.persist.snapshot import (
    CheckpointManifest,
    LoadedCheckpoint,
    ShardState,
    row_content_hash,
)
from repro.persist.wal import WriteAheadLog
from repro.serve.batcher import ReadBatcher
from repro.serve.maintenance import MaintenanceWorker
from repro.serve.requests import WriteKind, WriteOp, WriteTicket
from repro.serve.sharding import ShardSet
from repro.serve.sync import EpochClock, ReadWriteLock

__all__ = ["ViewServer", "ClientSession"]


class ClientSession:
    """Per-client monotonic view of the server.

    Tracks the last epoch this client observed and the ticket of its last
    write; every read first waits for the pending write to become visible
    (read-your-writes) and then verifies the returned epoch never moves
    backwards (monotonic reads).
    """

    def __init__(self, server: "ViewServer"):
        self._server = server
        self.last_epoch = 0
        self._pending: WriteTicket | None = None

    def _before_read(self) -> None:
        if self._pending is not None:
            # Clear the ticket before waiting: if the write failed, its error
            # surfaces on this read (read-your-writes of the failure) and the
            # session then recovers instead of re-raising forever.
            ticket, self._pending = self._pending, None
            self.last_epoch = max(self.last_epoch, ticket.wait())

    def _observe(self, epoch: int) -> None:
        if epoch < self.last_epoch:
            raise MaintenanceError(
                f"monotonic-read violation: session at epoch {self.last_epoch}, "
                f"server answered from epoch {epoch}"
            )
        self.last_epoch = epoch

    def label_of(self, entity_id: object) -> int:
        """Single Entity read with session consistency."""
        self._before_read()
        label, epoch = self._server.label_of_tagged(entity_id)
        self._observe(epoch)
        return label

    def all_members(self, label: int = 1) -> list[object]:
        """All Members read with session consistency."""
        self._before_read()
        members, epoch = self._server.all_members_tagged(label)
        self._observe(epoch)
        return members

    def top_k(self, k: int, label: int = 1) -> list[tuple[object, float]]:
        """Ranked read with session consistency."""
        self._before_read()
        ranked, epoch = self._server.top_k_tagged(k, label)
        self._observe(epoch)
        return ranked

    def range_scan(
        self,
        label: int = 1,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[object]:
        """Pushed-down key-range read with session consistency."""
        self._before_read()
        members, epoch = self._server.range_scan_tagged(
            label, low, high, include_low=include_low, include_high=include_high
        )
        self._observe(epoch)
        return members

    def labels_of(self, entity_ids) -> dict[object, int]:
        """Batched point reads with session consistency (join probe path).

        Unknown ids are simply absent from the result (inner-join semantics);
        the epoch observed is the newest any coalesced round answered from,
        which keeps the session watermark monotonic.
        """
        self._before_read()
        labels, epoch = self._server.labels_of_tagged(entity_ids)
        if labels:
            self._observe(epoch)
        return labels

    def contents(self) -> dict[object, int]:
        """Full-view read (one coherent epoch) that waits for this session's writes."""
        self._before_read()
        return self._server.contents()

    def insert_example(self, entity_id: object, label_value: object) -> WriteTicket:
        """Queue a training example; subsequent session reads see it applied."""
        ticket = self._server.insert_example(entity_id, label_value)
        self._pending = ticket
        return ticket

    def insert_entity(self, row) -> WriteTicket:
        """Queue a new entity; subsequent session reads see it applied."""
        ticket = self._server.insert_entity(row)
        self._pending = ticket
        return ticket

    def note_write(self, ticket: WriteTicket) -> None:
        """Register a write issued outside this session (e.g. a SQL INSERT
        executed on this session's connection) for read-your-writes."""
        self._pending = ticket


class ViewServer:
    """Concurrent serving front-end over one sharded classification view.

    Parameters
    ----------
    entities:
        ``(entity_id, features)`` pairs to bulk-load the shards from.
    model:
        The model the view currently reflects (epoch 0).
    trainer:
        The *global* incremental trainer; owned by the maintenance worker
        from here on.
    store_factory / maintainer_factory:
        Build one private store / maintainer per shard.
    feature_function:
        Needed for ``classify`` and for featurizing entity-row inserts; may be
        None when entities are only ever inserted pre-featurized.
    label_to_binary:
        Maps user-facing label values to {-1, +1} (defaults to requiring
        ±1 / bool).
    """

    def __init__(
        self,
        entities: Iterable[tuple[object, SparseVector]],
        model: LinearModel,
        trainer: SGDTrainer,
        store_factory: Callable[[], EntityStore],
        maintainer_factory: Callable[[EntityStore], ViewMaintainer],
        feature_function=None,
        label_to_binary: Callable[[object], int] | None = None,
        entities_key: str = "id",
        examples_key: str = "id",
        examples_label: str = "label",
        initial_examples: Sequence[TrainingExample] = (),
        num_shards: int = 4,
        max_read_batch: int = 64,
        read_batch_wait_s: float | str = 0.0,
        queue_capacity: int = 4096,
        max_write_batch: int = 64,
        cache_capacity: int = 100_000,
        epoch_history: int = 256,
        restored_shards: ShardSet | None = None,
        initial_epoch: int = 0,
        wal_dir: str | Path | None = None,
        initial_wal_seq: int = 0,
        initial_shard_epochs: Sequence[int] | None = None,
    ):
        if restored_shards is not None:
            # Warm restart (see :meth:`restore`): the shards were rebuilt from
            # a checkpoint; skip the bulk load and resume the epoch clock.
            self.shards = restored_shards
        else:
            self.shards = ShardSet.build(
                entities,
                model,
                store_factory=store_factory,
                maintainer_factory=maintainer_factory,
                num_shards=num_shards,
                cache_capacity=cache_capacity,
            )
        self.trainer = trainer
        self.feature_function = feature_function
        self.rw_lock = ReadWriteLock()
        self.epoch_clock = EpochClock(start=initial_epoch)
        self._label_to_binary = label_to_binary if label_to_binary is not None else _default_binary
        self._entities_key = entities_key
        self._examples_key = examples_key
        self._examples_label = examples_label
        self._examples: list[TrainingExample] = list(initial_examples)
        #: The retained examples as of the last *published* epoch.  Phase 1 of
        #: a maintenance batch appends to ``_examples`` before the batch is
        #: visible; checkpoints must only capture the published prefix, so this
        #: tuple is refreshed under the write lock at each epoch publish.
        self._published_examples: tuple[TrainingExample, ...] = tuple(self._examples)
        self._model_snapshot = model.copy()
        self._epoch_history = int(epoch_history)
        self._epoch_models: OrderedDict[int, LinearModel] = OrderedDict(
            {initial_epoch: model.copy()}
        )
        self._feature_lock = threading.RLock()
        self._train_stats = IOStatistics()
        self._cost_model = self.shards.shards[0].maintainer.store.cost_model
        #: Ordered entity churn ("add"/"remove" ops) applied while serving,
        #: replayed in order against the source view on close.
        self._entity_ops: list[tuple[str, object]] = []
        self._accepting = True
        self._closed = False
        self._view = None
        self._dispatched_tables: list = []
        self._trigger_kinds: dict[str, WriteKind] = {}
        self._ticket_local = threading.local()
        #: Observability counters (thread-safe; mirrored into the metrics
        #: registry by the engine's per-view provider and by ``stats()``).
        self.epochs_published = Counter()
        self.trigger_diverts = Counter()
        #: Per-shard epoch of last change — the basis for incremental
        #: checkpoints.  Written only under the write lock (publish_epoch),
        #: read under the read lock (checkpoint).
        num = len(self.shards)
        if initial_shard_epochs is not None and len(initial_shard_epochs) == num:
            self._shard_epochs = [int(value) for value in initial_shard_epochs]
        else:
            self._shard_epochs = [initial_epoch] * num
        #: Write-ahead log of diverted ops (optional).  A fresh serve wipes
        #: any stale segments — the base tables are authoritative for
        #: pre-serve state — while a warm restart continues the survivor.
        self._wal = (
            WriteAheadLog(wal_dir, fresh=restored_shards is None)
            if wal_dir is not None
            else None
        )
        #: Highest WAL sequence number whose op has been published (recorded
        #: in checkpoint manifests so recovery knows where replay starts).
        self._wal_applied_seq = int(initial_wal_seq)
        #: Where the last successful checkpoint landed — the default parent
        #: for ``checkpoint(..., incremental=True)``.
        self._last_checkpoint_path: Path | None = None
        if read_batch_wait_s == "adaptive":
            self.batcher = ReadBatcher(
                self._execute_read_batch,
                max_batch=max_read_batch,
                adaptive=True,
                cost_probe=self.shards.simulated_seconds,
            )
        else:
            self.batcher = ReadBatcher(
                self._execute_read_batch,
                max_batch=max_read_batch,
                max_wait_s=float(read_batch_wait_s),
                cost_probe=self.shards.simulated_seconds,
            )
        self.worker = MaintenanceWorker(
            self, queue_capacity=queue_capacity, max_batch=max_write_batch
        )
        self.worker.start()

    # ------------------------------------------------------------------ reads

    def _execute_read_batch(self, keys: Sequence[object]) -> dict[object, object]:
        """Batcher callback: one coherent, epoch-tagged round across the shards.

        Unknown ids stay as their exception instance so the batcher fails only
        that key's waiters, not the whole round.
        """
        with self.rw_lock.read_locked():
            epoch = self.epoch_clock.epoch
            labels = self.shards.read_batch(keys)
        return {
            key: value if isinstance(value, BaseException) else (value, epoch)
            for key, value in labels.items()
        }

    @contextmanager
    def _shard_span(self, operation: str):
        """Record a scatter/gather read as spans on the active trace.

        One parent span for the whole gather plus one child per shard, each
        carrying that shard's simulated-seconds delta (read off the shard
        store ledgers from the calling thread — benign races, the shard
        workers only ever grow them).  No-op when nothing is tracing.
        """
        trace = current_trace()
        if trace is None:
            yield
            return
        shards = self.shards.shards
        before = [shard.maintainer.store.stats.simulated_seconds for shard in shards]
        parent = trace.add_span(
            f"serve.{operation}",
            parent_id=trace.cross_thread_parent_id,
            detail=f"scatter/gather across {len(shards)} shards",
        )
        started = time.perf_counter()
        try:
            yield
        finally:
            parent.wall_seconds = time.perf_counter() - started
            after = [shard.maintainer.store.stats.simulated_seconds for shard in shards]
            parent.simulated_seconds = sum(after) - sum(before)
            for index, (earlier, later) in enumerate(zip(before, after)):
                trace.add_span(
                    f"shard[{index}]",
                    parent_id=parent.span_id,
                    simulated_seconds=later - earlier,
                )

    def label_of_tagged(self, entity_id: object) -> tuple[int, int]:
        """Single Entity read through the batcher: ``(label, epoch)``."""
        return self.batcher.read(entity_id)

    def label_of(self, entity_id: object) -> int:
        """Single Entity read: the entity's label in {-1, +1}."""
        return self.label_of_tagged(entity_id)[0]

    def all_members_tagged(self, label: int = 1) -> tuple[list[object], int]:
        """Scatter/gather All Members read: ``(ids, epoch)``."""
        with self._shard_span("all_members"), self.rw_lock.read_locked():
            epoch = self.epoch_clock.epoch
            members = self.shards.all_members(label)
        return members, epoch

    def all_members(self, label: int = 1) -> list[object]:
        """All Members read across every shard."""
        return self.all_members_tagged(label)[0]

    def count_members(self, label: int = 1) -> int:
        """Number of entities in the class."""
        return len(self.all_members(label))

    def top_k_tagged(self, k: int, label: int = 1) -> tuple[list[tuple[object, float]], int]:
        """Scatter/gather ranked read: ``([(id, margin)], epoch)``."""
        with self._shard_span("top_k"), self.rw_lock.read_locked():
            epoch = self.epoch_clock.epoch
            ranked = self.shards.top_k(k, label)
        return ranked, epoch

    def range_scan_tagged(
        self,
        label: int = 1,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> tuple[list[object], int]:
        """Pushed-down ``class = label AND key in range`` read: ``(ids, epoch)``.

        The range operator runs as a real shard operation — every shard scans
        its own eps-clustered store with the key filter applied before any
        classification work — under one coherent epoch.
        """
        with self._shard_span("range_scan"), self.rw_lock.read_locked():
            epoch = self.epoch_clock.epoch
            members = self.shards.range_scan(
                label, low, high, include_low=include_low, include_high=include_high
            )
        return members, epoch

    def range_scan(
        self,
        label: int = 1,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[object]:
        """Pushed-down key-range read across every shard."""
        return self.range_scan_tagged(
            label, low, high, include_low=include_low, include_high=include_high
        )[0]

    def labels_of_tagged(self, entity_ids) -> tuple[dict[object, int], int]:
        """Batched Single Entity reads through the batcher: ``({id: label}, epoch)``.

        Every key is submitted to the request batcher in one burst, so the
        whole batch coalesces into as few ``read_many`` rounds as the batch
        window allows.  Unknown ids are dropped from the result; the returned
        epoch is the newest any round answered from (0 when nothing matched).
        """
        futures = [
            (entity_id, self.batcher.submit(entity_id))
            for entity_id in dict.fromkeys(entity_ids)
        ]
        labels: dict[object, int] = {}
        epoch = 0
        for entity_id, future in futures:
            try:
                label, tag = future.result()
            except KeyNotFoundError:
                continue
            labels[entity_id] = label
            epoch = max(epoch, tag)
        return labels, epoch

    def labels_of(self, entity_ids) -> dict[object, int]:
        """Batched point reads; unknown ids are absent from the result."""
        return self.labels_of_tagged(entity_ids)[0]

    def top_k(self, k: int, label: int = 1) -> list[tuple[object, float]]:
        """The ``k`` entities deepest inside class ``label`` under the current model."""
        return self.top_k_tagged(k, label)[0]

    def classify(self, row) -> int:
        """Classify an ad-hoc entity row (or feature vector) without storing it."""
        if isinstance(row, SparseVector):
            features = row
        else:
            if self.feature_function is None:
                raise MaintenanceError("server has no feature function; pass a SparseVector")
            with self._feature_lock:
                # Stateful featurizers exist to be serialized by exactly this
                # lock; the work belongs under it.
                features = self.feature_function.compute_feature(row)  # repro: noqa(LOCK002)
        return sign(self._model_snapshot.margin(features))

    def contents(self) -> dict[object, int]:
        """The full view ``{id: label}`` under one coherent epoch."""
        with self._shard_span("contents"), self.rw_lock.read_locked():
            return self.shards.contents()

    def session(self) -> ClientSession:
        """A new per-client session with monotonic read-your-writes semantics."""
        return ClientSession(self)

    def model_for_epoch(self, epoch: int) -> LinearModel | None:
        """The model published at ``epoch`` (None once evicted from history)."""
        model = self._epoch_models.get(epoch)
        return model.copy() if model is not None else None

    @property
    def epoch(self) -> int:
        """The latest published epoch."""
        return self.epoch_clock.epoch

    # ------------------------------------------------------------------ writes

    def _require_accepting(self) -> None:
        if not self._accepting:
            raise MaintenanceError("server is closed to writes")

    def insert_example(self, entity_id: object, label_value: object) -> WriteTicket:
        """Queue one training example; returns its visibility ticket.

        In attached mode the row is inserted into the real examples table (so
        SQL state stays authoritative) and the diverted trigger carries it
        into the queue; standalone, the op is enqueued directly.
        """
        self._require_accepting()
        row = {self._examples_key: entity_id, self._examples_label: label_value}
        if self._view is not None:
            return self._insert_via_table(self._view.definition.examples_table, row)
        return self._enqueue_logged(WriteKind.EXAMPLE_INSERT, row, None)

    def insert_entity(self, row) -> WriteTicket:
        """Queue one new entity: a table row (attached/featurized) or ``(id, features)``."""
        self._require_accepting()
        if self._view is not None and not isinstance(row, tuple):
            return self._insert_via_table(self._view.definition.entities_table, dict(row))
        return self._enqueue_logged(WriteKind.ENTITY_INSERT, row, None)

    def _enqueue_logged(
        self,
        kind: WriteKind,
        row: dict[str, object] | None,
        old_row: dict[str, object] | None,
    ) -> WriteTicket:
        """The single choke point every diverted op passes through:
        **log-before-enqueue**.  The WAL append flushes before the op enters
        the queue, so an op a client saw acknowledged is either published
        (epoch advanced) or replayable from the log — never silently lost to
        a crash of the in-memory pipeline."""
        wal_seq = None
        if self._wal is not None:
            wal_seq = self._wal.append(kind.value, row, old_row)
        return self.worker.enqueue(
            WriteOp(kind=kind, row=row, old_row=old_row, wal_seq=wal_seq)
        )

    def _insert_via_table(self, table_name: str, row: dict[str, object]) -> WriteTicket:
        self._ticket_local.ticket = None
        self._view.database.table(table_name).insert(row)
        ticket = self._ticket_local.ticket
        self._ticket_local.ticket = None
        if ticket is None:  # dispatcher missed it — should not happen while attached
            raise MaintenanceError("insert did not reach the maintenance queue")
        return ticket

    def flush(self, timeout: float | None = None) -> int:
        """Barrier: block until every previously queued write is visible."""
        return self.worker.flush(timeout=timeout)

    def take_session_ticket(self) -> WriteTicket | None:
        """Claim the ticket of the last diverted write issued on this thread.

        SQL DML against the view's base tables reaches the maintenance queue
        through the trigger dispatcher, which parks the resulting ticket in a
        thread-local; the connection layer claims it here (exactly once) to
        give its per-connection session read-your-writes over plain SQL.
        """
        ticket = getattr(self._ticket_local, "ticket", None)
        self._ticket_local.ticket = None
        return ticket

    def source_table_names(self) -> tuple[str, ...]:
        """Lower-cased base-table names feeding this server (attached mode)."""
        if self._view is None:
            return ()
        return (
            self._view.definition.entities_table.lower(),
            self._view.definition.examples_table.lower(),
        )

    # ------------------------------------------- host protocol (maintenance worker)

    def featurize_entity(self, row) -> tuple[object, SparseVector]:
        """Worker hook: turn an entity row into ``(id, features)``."""
        if isinstance(row, tuple):
            return row
        if self.feature_function is None:
            raise MaintenanceError("server has no feature function; insert (id, features)")
        with self._feature_lock:
            self.feature_function.compute_stats_incremental(row)
            # Stats update + featurize must be atomic with respect to other
            # featurizing threads — this lock IS the serialization point.
            features = self.feature_function.compute_feature(row)  # repro: noqa(LOCK002)
        self._train_stats.charge(self._cost_model.featurize_cost(features.nnz()), "featurize")
        return row[self._entities_key], features

    def entity_key(self, row) -> object:
        """Worker hook: the entity key of a (possibly pre-featurized) row."""
        if isinstance(row, tuple):
            return row[0]
        return row[self._entities_key]

    def build_example(self, row, pending_features: dict) -> TrainingExample:
        """Worker hook: resolve an example row against entity features."""
        if isinstance(row, TrainingExample):
            return row
        entity_id = row[self._examples_key]
        label = self._label_to_binary(row[self._examples_label])
        features = pending_features.get(entity_id)
        if features is None:
            shard = self.shards.shard_for(entity_id)
            try:
                features = shard.call(
                    lambda: shard.maintainer.store.get(entity_id).features
                )
            except KeyNotFoundError:
                raise MaintenanceError(
                    f"training example references unknown entity {entity_id!r}"
                ) from None
        return TrainingExample(entity_id=entity_id, features=features, label=label)

    def retain_example(self, example: TrainingExample) -> None:
        """Worker hook: remember an absorbed example (for retrains and close)."""
        self._examples.append(example)

    def forget_example(self, old_row) -> bool:
        """Worker hook: drop the retained example matching a deleted row."""
        if isinstance(old_row, TrainingExample):
            entity_id, label = old_row.entity_id, old_row.label
        else:
            entity_id = old_row[self._examples_key]
            label = self._label_to_binary(old_row[self._examples_label])
        for index, example in enumerate(self._examples):
            if example.entity_id == entity_id and example.label == label:
                del self._examples[index]
                return True
        return False

    def retained_examples(self) -> list[TrainingExample]:
        """Worker hook: the full retained example set (retrain input)."""
        return list(self._examples)

    def charge_model_update(self) -> None:
        """Worker hook: account one incremental training step."""
        self._train_stats.charge(self._cost_model.model_update, "model_update")

    def publish_epoch(
        self,
        final_model: LinearModel | None,
        dirty_shards: Iterable[int] = (),
        wal_seq: int | None = None,
    ) -> int:
        """Worker hook (under the write lock): advance the clock, snapshot the model.

        ``dirty_shards`` are the shards the batch touched (their last-change
        epoch moves to the new epoch — the bookkeeping incremental
        checkpoints diff against) and ``wal_seq`` is the highest WAL
        sequence number the batch carried, now durable in published state.
        """
        if final_model is not None:
            self._model_snapshot = final_model.copy()
        self._published_examples = tuple(self._examples)
        epoch = self.epoch_clock.advance()
        self.epochs_published.inc()
        for index in dirty_shards:
            self._shard_epochs[index] = epoch
        if wal_seq is not None and wal_seq > self._wal_applied_seq:
            self._wal_applied_seq = wal_seq
        self._epoch_models[epoch] = self._model_snapshot.copy()
        while len(self._epoch_models) > self._epoch_history:
            self._epoch_models.popitem(last=False)
        return epoch

    def rotate_wal(self) -> None:
        """Worker hook (after publish, outside the lock): close the WAL
        segment so it aligns with the epoch boundary and pruning at the next
        checkpoint is whole-file unlink."""
        if self._wal is not None:
            self._wal.rotate()

    @property
    def wal(self) -> WriteAheadLog | None:
        """The server's write-ahead log, when one was configured."""
        return self._wal

    def record_mutations(self, entity_ops: Sequence[tuple[str, object]]) -> None:
        """Worker hook: log ordered entity churn so ``close`` can resync the view."""
        self._entity_ops.extend(entity_ops)

    # ------------------------------------------------------------ checkpoint / recovery

    def _resolve_parent(
        self, directory: Path, parent: str | Path | None
    ) -> tuple[Path, CheckpointManifest]:
        """Locate and sanity-check the parent of an incremental checkpoint."""
        parent_dir = Path(parent) if parent is not None else self._last_checkpoint_path
        if parent_dir is None:
            raise ConfigurationError(
                "incremental checkpoint needs a parent: no full checkpoint was "
                "written by this server and no parent path was given"
            )
        parent_dir = parent_dir.resolve()
        if parent_dir == directory.resolve():
            raise ConfigurationError(
                f"incremental checkpoint cannot use itself ({directory}) as parent"
            )
        manifest = CheckpointManifest.from_document(
            read_json_frame(parent_dir / MANIFEST_NAME)
        )
        if manifest.num_shards != len(self.shards):
            raise ConfigurationError(
                f"parent checkpoint {parent_dir} holds {manifest.num_shards} shards, "
                f"this server runs {len(self.shards)}"
            )
        if manifest.shard_epochs is None:
            raise ConfigurationError(
                f"parent checkpoint {parent_dir} predates per-shard epoch tracking "
                "and cannot anchor an incremental checkpoint; write a full one first"
            )
        return parent_dir, manifest

    def _base_row_hashes(self) -> dict[object, str] | None:
        """Content hashes of the current base-table entity rows (attached only).

        Stored per shard in the snapshot so warm-restart replay can detect
        content-only UPDATEs — churn an insert/delete diff cannot see."""
        if self._view is None:
            return None
        table = self._view.database.table(self._view.definition.entities_table)
        key = self._view.definition.entities_key
        return {row[key]: row_content_hash(row) for row in table.scan()}

    def checkpoint(
        self,
        path: str | Path,
        incremental: bool = False,
        parent: str | Path | None = None,
    ) -> dict[str, object]:
        """Write a consistent snapshot of the whole serving state to ``path``.

        The cut is **quiesce-free**: state is gathered while holding only the
        *shared* side of the readers/writer lock, so concurrent reads keep
        flowing — the maintenance worker's short apply phase is the only thing
        excluded, which is exactly what makes the cut consistent (every shard,
        the model, the epoch clock, and the retained examples all reflect the
        same published epoch).  Per-shard serialization and file writes happen
        on the shard worker threads, concurrently, after the lock is released;
        the manifest is written last, atomically, as the commit point.

        With ``incremental=True`` only shards whose epoch moved since
        ``parent`` (default: this server's last checkpoint) are rewritten;
        unchanged shards are referenced by absolute path plus a content
        digest of the parent file, so a later restore can prove the
        reference was not rewritten underneath.  The manifest, retained
        examples, and feature function are always written fresh.

        Returns a small info dict (``path``, ``epoch``, ``entities``,
        ``bytes``, ``shards_written``, ``shard_bytes``).
        """
        if self._closed:
            raise MaintenanceError("cannot checkpoint a closed server")
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        parent_dir: Path | None = None
        parent_manifest: CheckpointManifest | None = None
        if incremental:
            parent_dir, parent_manifest = self._resolve_parent(directory, parent)

        num_shards = len(self.shards)
        with self.rw_lock.read_locked():
            epoch = self.epoch_clock.epoch
            model = self._model_snapshot.copy()
            examples = list(self._published_examples)
            shard_epochs = list(self._shard_epochs)
            wal_applied_seq = self._wal_applied_seq
            if parent_manifest is None:
                rewrite = list(range(num_shards))
            else:
                rewrite = [
                    index
                    for index in range(num_shards)
                    if shard_epochs[index] != parent_manifest.shard_epochs[index]
                ]
            exports = {
                index: self.shards.shards[index].submit(
                    self.shards.shards[index].export_state_local
                )
                for index in rewrite
            }
            # Deliberate: the read lock pins a consistent cut across shards
            # while their state exports drain.
            states = {index: future.result() for index, future in exports.items()}  # repro: noqa(LOCK002)

        row_hashes = self._base_row_hashes()
        shard_states: dict[int, ShardState] = {}
        for index, state in states.items():
            hashes = None
            if row_hashes is not None:
                hashes = [
                    [entity_id, row_hashes[entity_id]]
                    for entity_id, _, _, _ in state["records"]
                    if entity_id in row_hashes
                ]
            shard_states[index] = ShardState(
                index=index,
                strategy=state["strategy"],
                approach=state["approach"],
                records=state["records"],
                current_model=state["current_model"],
                max_feature_norm=state.get("max_feature_norm", 0.0),
                stored_model=state.get("stored_model"),
                band_low=state.get("band_low", 0.0),
                band_high=state.get("band_high", 0.0),
                skiing=state.get("skiing"),
                row_hashes=hashes,
            )
        writes = {
            index: self.shards.shards[index].submit(
                write_shard_state, directory, shard_state
            )
            for index, shard_state in shard_states.items()
        }
        shard_bytes = sum(future.result() for future in writes.values())
        total_bytes = shard_bytes

        shard_shas: list[str] = []
        shard_sources: list[str | None] = []
        shard_entities: list[int] = []
        for index in range(num_shards):
            if index in shard_states:
                shard_shas.append(shard_file_sha(directory / shard_file_name(index)))
                shard_sources.append(None)
                shard_entities.append(len(shard_states[index].records))
            else:
                # Unchanged since the parent cut: reference the parent's file
                # (flattening chains — a source never points at another
                # reference) and carry its digest and record count forward.
                source = None
                if parent_manifest.shard_sources is not None:
                    source = parent_manifest.shard_sources[index]
                resolved = (
                    Path(source)
                    if source
                    else parent_dir / parent_manifest.shard_files[index]
                )
                if parent_manifest.shard_shas is not None:
                    sha = parent_manifest.shard_shas[index]
                else:
                    sha = shard_file_sha(resolved)
                shard_shas.append(sha)
                shard_sources.append(str(resolved))
                if parent_manifest.shard_entities is not None:
                    shard_entities.append(parent_manifest.shard_entities[index])
                else:
                    shard_entities.append(0)

        has_features = self.feature_function is not None
        if has_features:
            with self._feature_lock:
                total_bytes += write_feature_function(directory, self.feature_function)

        definition = None
        positive_label = None
        if self._view is not None:
            definition = dataclasses.asdict(self._view.definition)
            definition["options"] = dict(definition.get("options") or {})
            positive_label = self._view.positive_label
        reference = self.shards.shards[0].maintainer
        manifest = CheckpointManifest(
            view_name=self._view.definition.view_name if self._view is not None else None,
            epoch=epoch,
            model=model,
            trainer_steps=model.version,
            num_shards=num_shards,
            shard_files=[shard_file_name(index) for index in range(num_shards)],
            examples=examples,
            architecture=_architecture_name(reference.store),
            strategy=reference.strategy_name,
            approach=reference.approach,
            definition=definition,
            positive_label=positive_label,
            has_feature_function=has_features,
            wal_applied_seq=wal_applied_seq,
            shard_epochs=shard_epochs,
            shard_shas=shard_shas,
            shard_sources=shard_sources if incremental else None,
            shard_entities=shard_entities,
            parent=str(parent_dir) if parent_dir is not None else None,
        )
        total_bytes += write_manifest(directory, manifest)
        if self._wal is not None and wal_applied_seq:
            # Everything at or below the manifest's applied seq is durable in
            # the snapshot; replay will never need those segments again.
            self._wal.prune(wal_applied_seq)
        self._last_checkpoint_path = directory
        return {
            "path": str(directory),
            "epoch": epoch,
            "entities": sum(shard_entities),
            "bytes": total_bytes,
            "shards_written": len(shard_states),
            "shard_bytes": shard_bytes,
        }

    @classmethod
    def restore(
        cls,
        checkpoint: LoadedCheckpoint,
        trainer: SGDTrainer,
        store_factory: Callable[[], EntityStore],
        maintainer_factory: Callable[[EntityStore], ViewMaintainer],
        feature_function=None,
        label_to_binary: Callable[[object], int] | None = None,
        entities_key: str = "id",
        examples_key: str = "id",
        examples_label: str = "label",
        cache_capacity: int = 100_000,
        **server_options,
    ) -> "ViewServer":
        """Warm-start a server from a loaded checkpoint.

        Shard stores are rebuilt via ``import_state`` — no featurization, no
        dot products, no re-sort — the epoch clock resumes at the snapshot
        epoch, and the trainer is rewound to the published model.  The shard
        count always comes from the snapshot (eps values are only meaningful
        on the shard that stored them); asking for a different ``num_shards``
        is a :class:`~repro.exceptions.ConfigurationError`, not a silent
        override.
        """
        manifest = checkpoint.manifest
        requested_shards = server_options.pop("num_shards", None)
        if requested_shards is not None and int(requested_shards) != manifest.num_shards:
            raise ConfigurationError(
                f"checkpoint was written with {manifest.num_shards} shards; "
                f"cannot restore with shards={requested_shards} — per-entity eps "
                "values are only meaningful on the shard that stored them, so "
                "restore always preserves the snapshot's shard assignment"
            )
        shard_set = ShardSet.restore(
            [_maintainer_state(state) for state in checkpoint.shard_states],
            store_factory=store_factory,
            maintainer_factory=maintainer_factory,
            cache_capacity=cache_capacity,
        )
        trainer.load_state(manifest.model, manifest.trainer_steps)
        if feature_function is None:
            feature_function = checkpoint.feature_function
        return cls(
            entities=(),
            model=manifest.model.copy(),
            trainer=trainer,
            store_factory=store_factory,
            maintainer_factory=maintainer_factory,
            feature_function=feature_function,
            label_to_binary=label_to_binary,
            entities_key=entities_key,
            examples_key=examples_key,
            examples_label=examples_label,
            initial_examples=manifest.examples,
            restored_shards=shard_set,
            initial_epoch=manifest.epoch,
            initial_wal_seq=manifest.wal_applied_seq,
            initial_shard_epochs=manifest.shard_epochs,
            **server_options,
        )

    def replay_wal(self, flush: bool = True) -> int:
        """Re-enqueue every WAL record not yet reflected in this server's state.

        The standalone recovery path (attached servers are replayed by
        ``HazyEngine._serve_restored``, which also reconciles the base
        tables): records above the restored ``wal_applied_seq`` re-enter the
        queue in arrival order, carrying their original sequence numbers so
        the next publish and checkpoint account for them.  Individual ops
        that no longer apply (e.g. an example referencing an entity deleted
        by later history) fail their ticket without poisoning the rest.
        Returns the number of records re-enqueued.
        """
        if self._wal is None:
            return 0
        records = self._wal.records_after(self._wal_applied_seq)
        tickets = []
        for record in records:
            op = WriteOp(
                kind=WriteKind(record.kind),
                row=record.row,
                old_row=record.old_row,
                wal_seq=record.seq,
            )
            tickets.append(self.worker.enqueue(op))
        if flush and records:
            self.worker.flush()
        return len(records)

    # ------------------------------------------------------------ view attachment

    def attach_view(self, view) -> None:
        """Take over maintenance of a live ``ClassificationView``.

        The view's entity/example triggers are diverted into the maintenance
        queue (``INSERT``/``UPDATE``/``DELETE`` statements enqueue instead of
        retraining inline) and the view's read methods delegate here until
        :meth:`close`.
        """
        if self._view is not None:
            raise MaintenanceError("server is already attached to a view")
        self._view = view
        prefix = f"hazy_{view.definition.view_name}"
        entities_table = view.database.table(view.definition.entities_table)
        examples_table = view.database.table(view.definition.examples_table)
        self._trigger_kinds = {
            f"{prefix}_entities": WriteKind.ENTITY_INSERT,
            f"{prefix}_entities_update": WriteKind.ENTITY_UPDATE,
            f"{prefix}_entities_delete": WriteKind.ENTITY_DELETE,
            f"{prefix}_examples": WriteKind.EXAMPLE_INSERT,
            f"{prefix}_examples_update": WriteKind.EXAMPLE_UPDATE,
            f"{prefix}_examples_delete": WriteKind.EXAMPLE_DELETE,
        }
        for table in (entities_table, examples_table):
            table.triggers.set_dispatcher(self._dispatch_trigger)
            self._dispatched_tables.append(table)
        view._server = self

    def _dispatch_trigger(
        self,
        trigger: Trigger,
        event: TriggerEvent,
        table_name: str,
        new_row: dict[str, object] | None,
        old_row: dict[str, object] | None,
    ) -> bool:
        """Trigger dispatcher: divert this view's maintenance triggers to the queue."""
        kind = self._trigger_kinds.get(trigger.name)
        if kind is None or not self._accepting:
            return False  # not ours (or closing): run inline
        ticket = self._enqueue_logged(kind, new_row, old_row)
        self.trigger_diverts.inc()
        self._ticket_local.ticket = ticket
        return True

    # ------------------------------------------------------------------ lifecycle

    def close(self, timeout: float | None = None) -> None:
        """Quiesce the pipeline and (if attached) hand the view back, consistent.

        Drains the write queue, stops the worker and batcher, then resyncs the
        source view's direct maintainer: entity churn is replayed and the final
        model applied once — sound because the cumulative band since the
        maintainer's last reorganization covers every model movement in
        between (Lemma 3.1).  Not safe to call concurrently with new writes.
        """
        if self._closed:
            return
        self._accepting = False
        self.worker.flush(timeout=timeout)
        self.worker.close(timeout=timeout)
        self.batcher.close()
        try:
            if self._view is not None:
                view = self._view
                if not view.maintainer._loaded:
                    # Warm-restored view: its direct maintainer was never
                    # bulk-loaded (that is the whole point of the warm start).
                    # Hand back a fresh load from the served shards' current
                    # contents under the final model.
                    entities = [
                        (entity_id, features, eps, label)
                        for state in (
                            shard.call(shard.export_state_local)
                            for shard in self.shards.shards
                        )
                        for entity_id, features, eps, label in state["records"]
                    ]
                    view.maintainer.bulk_load(
                        ((entity_id, features) for entity_id, features, _, _ in entities),
                        self.trainer.model.copy(),
                    )
                    view._examples[:] = self._examples
                else:
                    # Replay entity churn in arrival order: an entity inserted
                    # and later deleted while serving must end up absent, not
                    # resurrected.
                    for action, payload in self._entity_ops:
                        if action == "remove":
                            try:
                                view.maintainer.remove_entity(payload)
                            except KeyNotFoundError:
                                pass
                        else:
                            entity_id, features = payload
                            view.maintainer.add_entity(entity_id, features)
                    view._examples[:] = self._examples
                    view.maintainer.apply_model(self.trainer.model.copy())
        finally:
            # Even if resync fails, never leave the view wired to a dead server.
            for table in self._dispatched_tables:
                table.triggers.clear_dispatcher()
            self._dispatched_tables.clear()
            if self._view is not None:
                self._view._server = None
                self._view = None
            if self._wal is not None:
                self._wal.close()
            self.shards.shutdown()
            self._closed = True

    def __enter__(self) -> "ViewServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ accounting

    def simulated_seconds(self) -> float:
        """Total simulated seconds across shard ledgers and training."""
        return self.shards.simulated_seconds() + self._train_stats.simulated_seconds

    def simulated_read_seconds(self) -> float:
        """Simulated seconds spent serving reads."""
        return self.shards.simulated_read_seconds()

    def stats(self) -> dict[str, object]:
        """One dashboard dict: epoch, batcher, worker, cache, shard counters.

        Assembled under the shared side of the readers/writer lock so the
        snapshot is consistent: a maintenance batch mid-apply can never leak
        a new epoch paired with the old queue/cache numbers (or vice versa).
        Counter keys — nested component dicts included — follow the house
        convention (``snake_case`` with ``_total`` / ``_seconds`` suffixes).
        """
        with self.rw_lock.read_locked():
            snapshot = {
                "epoch": self.epoch,
                "entities": self.shards.count(),
                "num_shards": len(self.shards),
                "epochs_published_total": self.epochs_published.value,
                "trigger_diverts_total": self.trigger_diverts.value,
                "batcher": self.batcher.stats(),
                "maintenance": self.worker.stats(),
                "cache": self.shards.cache_stats(),
                "simulated_seconds": self.simulated_seconds(),
                "simulated_read_seconds": self.simulated_read_seconds(),
            }
            if self._wal is not None:
                snapshot["wal"] = self._wal.stats()
            return snapshot

    def metrics(self) -> dict[str, float]:
        """Flat canonical-key metrics for the registry's per-view provider.

        Same consistent snapshot as :meth:`stats`, flattened to dotted
        ``snake_case`` names with no legacy aliases (the registry must not
        report the same counter twice).
        """
        stats = self.stats()
        flat: dict[str, float] = {
            "epoch": stats["epoch"],
            "entities": stats["entities"],
            "num_shards": stats["num_shards"],
            "epochs_published_total": stats["epochs_published_total"],
            "trigger_diverts_total": stats["trigger_diverts_total"],
            "simulated_seconds_total": stats["simulated_seconds"],
            "simulated_read_seconds_total": stats["simulated_read_seconds"],
        }
        for component in ("batcher", "maintenance", "cache"):
            for key, value in stats[component].items():
                if key.endswith(("_total", "_seconds")) or key in (
                    "largest_batch",
                    "avg_batch",
                    "avg_ops_per_batch",
                    "backlog",
                    "entries",
                ):
                    flat[f"{component}.{key}"] = value
        for key, value in stats.get("wal", {}).items():
            if key.endswith(("_total", "_bytes")) or key == "segments":
                flat[f"wal.{key}"] = value
        for index, shard_stats in enumerate(self.shards.per_shard_stats()):
            for key, value in shard_stats.items():
                flat[f"shard{index}.{key}"] = value
        return flat


def _architecture_name(store: EntityStore) -> str:
    """The engine-facing architecture name of a store instance."""
    if isinstance(store, HybridEntityStore):
        return "hybrid"
    if isinstance(store, OnDiskEntityStore):
        return "ondisk"
    if isinstance(store, InMemoryEntityStore):
        return "mainmemory"
    return type(store).__name__


def _maintainer_state(state: ShardState) -> dict[str, object]:
    """Map a decoded :class:`ShardState` onto ``ViewMaintainer.import_state`` input."""
    document: dict[str, object] = {
        "strategy": state.strategy,
        "approach": state.approach,
        "records": state.records,
        "current_model": state.current_model,
        "max_feature_norm": state.max_feature_norm,
        "payload_bytes": state.payload_bytes,
    }
    if state.stored_model is not None:
        document["stored_model"] = state.stored_model
        document["band_low"] = state.band_low
        document["band_high"] = state.band_high
        document["skiing"] = state.skiing
    return document


def _default_binary(label_value: object) -> int:
    """Fallback label conversion: accepts bools and ±1."""
    if isinstance(label_value, bool):
        return 1 if label_value else -1
    if isinstance(label_value, (int, float)) and label_value in (-1, 1):
        return int(label_value)
    raise MaintenanceError(
        f"cannot interpret label {label_value!r}: provide label_to_binary"
    )
