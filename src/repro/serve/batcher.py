"""Request batcher: coalesce concurrent Single Entity reads.

Figure 5's lesson is that per-statement overhead, not classification work,
caps Single Entity read throughput.  The batcher exploits it: client threads
submit individual reads and get a future back; a collector thread drains the
submission queue and executes whole batches at once through the maintainers'
:meth:`~repro.core.maintainers.base.ViewMaintainer.read_many` path, which
charges the statement dispatch once per *batch* instead of once per read.

Batching is load-adaptive.  With ``max_wait_s=0`` (the default) the collector
never sleeps: a lone client sees batches of one and zero added latency, while
under concurrency requests pile up behind the executing batch and the next
round drains them together — throughput rises exactly when it matters.  A
positive ``max_wait_s`` additionally holds the first request of a round open
for stragglers, trading a bounded latency hit for fuller batches.

With ``adaptive=True`` the window is not configured at all: an
:class:`AdaptiveBatchWindow` tracks an EWMA of observed inter-arrival times
and sizes the wait to what would plausibly fill a batch — near zero when
requests are sparse (a lone client never waits for stragglers that are not
coming), approaching ``max_wait_cap_s`` only when arrivals are dense enough
that a short hold genuinely coalesces work.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future

from repro.obs import TraceContext, current_trace

__all__ = ["ReadBatcher", "AdaptiveBatchWindow"]

_SHUTDOWN = object()


class AdaptiveBatchWindow:
    """Derives a batching window from an EWMA of request inter-arrival times.

    The policy, with ``a`` the smoothed inter-arrival time:

    * no arrivals observed yet → window 0 (never penalize the first client);
    * ``a >= max_wait_cap_s`` → window 0 — at that rate even a full cap-length
      hold would coalesce at most one extra request, so waiting is pure
      latency;
    * otherwise → ``min(a * (max_batch - 1), max_wait_cap_s)`` — long enough
      to plausibly fill a batch at the observed rate, never above the cap.

    The window is therefore always inside ``[0, max_wait_cap_s]`` (the bound
    the unit tests pin), and observation is O(1) per request under one lock.
    """

    # Shared-state contract, enforced by repro-lint's lock pass: every
    # request thread calls observe() concurrently.
    _GUARDED_BY = {"_last_arrival": "_lock", "_interarrival_s": "_lock"}

    def __init__(
        self, max_batch: int, max_wait_cap_s: float = 0.002, alpha: float = 0.2
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_cap_s < 0:
            raise ValueError("max_wait_cap_s must be >= 0")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._max_batch = int(max_batch)
        self.max_wait_cap_s = float(max_wait_cap_s)
        self._alpha = float(alpha)
        self._lock = threading.Lock()
        self._last_arrival: float | None = None
        self._interarrival_s: float | None = None

    def observe(self, now: float) -> None:
        """Fold one request arrival (monotonic timestamp) into the EWMA."""
        with self._lock:
            if self._last_arrival is not None:
                delta = max(0.0, now - self._last_arrival)
                if self._interarrival_s is None:
                    self._interarrival_s = delta
                else:
                    self._interarrival_s = (
                        self._alpha * delta + (1.0 - self._alpha) * self._interarrival_s
                    )
            self._last_arrival = now

    @property
    def interarrival_s(self) -> float | None:
        """The smoothed inter-arrival estimate (None until two arrivals)."""
        with self._lock:
            return self._interarrival_s

    def window_s(self) -> float:
        """The wait the collector should use for the next round."""
        with self._lock:
            interarrival = self._interarrival_s
        if interarrival is None or interarrival >= self.max_wait_cap_s:
            return 0.0
        return min(interarrival * (self._max_batch - 1), self.max_wait_cap_s)


class ReadBatcher:
    """Coalesces submitted keys into batched calls of ``execute_batch``.

    Parameters
    ----------
    execute_batch:
        Called with a list of unique keys; returns ``{key: result}``.  Runs on
        the collector thread.  A ``BaseException`` instance as a *value* fails
        only that key's waiters (per-key error isolation — one bad key must
        not poison the rest of the round); raising fails the whole round.
    max_batch:
        Hard cap on keys per round.
    max_wait_s:
        How long the collector holds a round open for more arrivals once it
        has at least one request.  0 = drain-only (no added latency).
        Ignored when ``adaptive`` is set.
    adaptive:
        Derive the wait from an :class:`AdaptiveBatchWindow` over observed
        arrival rates instead of the fixed ``max_wait_s``.
    max_wait_cap_s / ewma_alpha:
        Bound and smoothing factor for the adaptive window.
    cost_probe:
        Zero-arg callable returning the cumulative simulated seconds the
        batched reads draw against (the shard ledgers).  When set, each round
        records a ``batcher.round`` span — with the round's simulated-cost
        delta — into every distinct trace whose statement contributed a
        request, so per-query traces stay complete across the thread hop.
    """

    def __init__(
        self,
        execute_batch: Callable[[Sequence[object]], dict[object, object]],
        max_batch: int = 64,
        max_wait_s: float = 0.0,
        adaptive: bool = False,
        max_wait_cap_s: float = 0.002,
        ewma_alpha: float = 0.2,
        cost_probe: Callable[[], float] | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._execute_batch = execute_batch
        self._max_batch = int(max_batch)
        self._max_wait_s = float(max_wait_s)
        self._cost_probe = cost_probe
        self.window = (
            AdaptiveBatchWindow(max_batch, max_wait_cap_s, ewma_alpha) if adaptive else None
        )
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self.rounds = 0
        self.requests = 0
        self.largest_batch = 0
        self._thread = threading.Thread(
            target=self._run, name="hazy-read-batcher", daemon=True
        )
        self._thread.start()

    # -- client side ------------------------------------------------------------------------

    def submit(self, key: object) -> Future:
        """Enqueue one read; the future resolves to ``execute_batch``'s value for it."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        if self.window is not None:
            self.window.observe(time.monotonic())
        future: Future = Future()
        # Capture the submitting statement's trace here, on the client thread:
        # the collector thread has no context of its own, so the trace must
        # ride along with the request.
        self._queue.put((key, future, current_trace()))
        return future

    def read(self, key: object, timeout: float | None = None):
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(key).result(timeout=timeout)

    # -- collector thread -------------------------------------------------------------------

    def _collect(self) -> list[tuple[object, Future, TraceContext | None]] | None:
        """Block for the first request, then opportunistically fill the round."""
        item = self._queue.get()
        if item is _SHUTDOWN:
            return None
        batch = [item]
        wait_s = self.window.window_s() if self.window is not None else self._max_wait_s
        deadline = time.monotonic() + wait_s
        while len(batch) < self._max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Re-post so the outer loop terminates after this round.
                self._queue.put(_SHUTDOWN)
                break
            batch.append(item)
        return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                break
            keys: list[object] = []
            seen: set[object] = set()
            for key, _, _ in batch:
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
            self.rounds += 1
            self.requests += len(batch)
            self.largest_batch = max(self.largest_batch, len(batch))
            cost_before = self._cost_probe() if self._cost_probe is not None else 0.0
            wall_started = time.perf_counter()
            try:
                results = self._execute_batch(keys)
            except BaseException as error:  # propagate to every waiter
                self._record_round(batch, keys, cost_before, wall_started)
                for _, future, _ in batch:
                    future.set_exception(error)
                continue
            # Record spans before resolving futures: a waiter may finalize its
            # trace the instant its future resolves, and the round's span must
            # already be in the tree by then.
            self._record_round(batch, keys, cost_before, wall_started)
            for key, future, _ in batch:
                value = results[key]
                if isinstance(value, BaseException):
                    future.set_exception(value)
                else:
                    future.set_result(value)

    def _record_round(
        self,
        batch: list[tuple[object, Future, TraceContext | None]],
        keys: list[object],
        cost_before: float,
        wall_started: float,
    ) -> None:
        """Hang one ``batcher.round`` span under every distinct submitting trace."""
        traces: list[TraceContext] = []
        trace_ids: set[int] = set()
        for _, _, trace in batch:
            if trace is not None and trace.trace_id not in trace_ids:
                trace_ids.add(trace.trace_id)
                traces.append(trace)
        if not traces:
            return
        wall = time.perf_counter() - wall_started
        simulated = (
            self._cost_probe() - cost_before if self._cost_probe is not None else 0.0
        )
        detail = f"coalesced {len(batch)} requests into {len(keys)} keys"
        for trace in traces:
            trace.add_span(
                "batcher.round",
                parent_id=trace.cross_thread_parent_id,
                simulated_seconds=simulated,
                wall_seconds=wall,
                rows=len(keys),
                detail=detail,
            )

    # -- lifecycle ---------------------------------------------------------------------------

    def close(self) -> None:
        """Stop the collector; in-flight rounds finish, late submits fail fast."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)
        self._thread.join()
        # Fail anything that slipped in after the sentinel.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                _, future, _ = item
                future.set_exception(RuntimeError("batcher is closed"))

    def stats(self) -> dict[str, float]:
        """Coalescing counters (average batch size is the interesting one).

        Keys are canonical ``snake_case`` with ``_total`` / ``_seconds``
        suffixes.
        """
        stats: dict[str, float] = {
            "rounds_total": self.rounds,
            "requests_total": self.requests,
            "largest_batch": self.largest_batch,
            "avg_batch": self.requests / self.rounds if self.rounds else 0.0,
        }
        if self.window is not None:
            stats["adaptive_window_seconds"] = self.window.window_s()
        return stats
