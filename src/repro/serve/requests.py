"""Request and ticket types exchanged between the front-end and the pipeline.

Writes accepted by the :class:`~repro.serve.server.ViewServer` — directly or
via SQL triggers on the entity/example tables — are normalized into
:class:`WriteOp` values and pushed onto the maintenance worker's bounded
queue.  Each enqueue hands back a :class:`WriteTicket`; when the worker makes
the batch containing the op visible, the ticket resolves to that epoch, which
is how client sessions implement read-your-writes.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

__all__ = ["WriteKind", "WriteOp", "WriteTicket"]


class WriteKind(enum.Enum):
    """The kinds of maintenance work the pipeline understands."""

    ENTITY_INSERT = "entity_insert"
    ENTITY_UPDATE = "entity_update"
    ENTITY_DELETE = "entity_delete"
    EXAMPLE_INSERT = "example_insert"
    EXAMPLE_UPDATE = "example_update"
    EXAMPLE_DELETE = "example_delete"
    #: A no-op used by ``flush``: its ticket resolves once everything enqueued
    #: before it has been applied.
    BARRIER = "barrier"


class WriteTicket:
    """A handle resolving to the epoch at which a write became visible."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._epoch: int | None = None
        self._error: BaseException | None = None

    def resolve(self, epoch: int) -> None:
        """Mark the write visible as of ``epoch`` (called by the worker)."""
        self._epoch = epoch
        self._event.set()

    def fail(self, error: BaseException) -> None:
        """Mark the write failed; ``wait`` re-raises ``error``."""
        self._error = error
        self._event.set()

    def wait(self, timeout: float | None = None) -> int:
        """Block until applied; returns the visibility epoch."""
        if not self._event.wait(timeout):
            raise TimeoutError("write not applied within timeout")
        if self._error is not None:
            raise self._error
        assert self._epoch is not None
        return self._epoch

    @property
    def done(self) -> bool:
        """Whether the write has been applied (or failed)."""
        return self._event.is_set()


@dataclass
class WriteOp:
    """One normalized write: its kind, the row(s) involved, and its ticket."""

    kind: WriteKind
    row: dict[str, object] | None = None
    old_row: dict[str, object] | None = None
    ticket: WriteTicket = field(default_factory=WriteTicket)
    #: Sequence number assigned by the server's write-ahead log before the op
    #: was enqueued (None when the server runs without a WAL).  Publishing an
    #: epoch records the highest applied seq so checkpoints know where
    #: recovery's replay must start.
    wal_seq: int | None = None
